"""Epoch plans and the greedy one-swap pair-cover generator.

A *partition replacement policy* answers two questions for each epoch
(Section 3): the sequence ``S = {S_1, S_2, ...}`` of partition sets to hold
in memory, and the sequence ``X = {X_1, X_2, ...}`` of training examples
(edge buckets) to process while each ``S_i`` is resident. Both BETA and
COMET build ``S`` with the same greedy *one-swap* generator — proven in the
Marius paper to achieve near-minimal IO — and differ in what they swap
(physical vs. logical partitions) and how they assign ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class EpochStep:
    """One partition set ``S_i`` with its training-example buckets ``X_i``."""

    partitions: List[int]                 # physical partitions in memory
    buckets: List[Tuple[int, int]]        # ordered edge buckets trained now
    admitted: List[int] = field(default_factory=list)  # physical partitions newly read


@dataclass
class EpochPlan:
    """A full epoch: the sequences S and X plus IO accounting."""

    steps: List[EpochStep]
    num_partitions: int
    buffer_capacity: int
    policy: str

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def total_partition_loads(self) -> int:
        """Physical partitions read from disk over the epoch (incl. initial fill)."""
        return sum(len(s.admitted) for s in self.steps)

    @property
    def bucket_counts(self) -> List[int]:
        return [len(s.buckets) for s in self.steps]

    def all_buckets(self) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        for step in self.steps:
            out.extend(step.buckets)
        return out

    def validate(self) -> None:
        """Every ordered bucket appears exactly once, within its resident set."""
        p = self.num_partitions
        seen: Set[Tuple[int, int]] = set()
        for step in self.steps:
            resident = set(step.partitions)
            if len(resident) > self.buffer_capacity:
                raise AssertionError(
                    f"step holds {len(resident)} partitions > capacity {self.buffer_capacity}"
                )
            for (i, j) in step.buckets:
                if i not in resident or j not in resident:
                    raise AssertionError(f"bucket {(i, j)} trained while not resident")
                if (i, j) in seen:
                    raise AssertionError(f"bucket {(i, j)} assigned twice")
                seen.add((i, j))
        expected = {(i, j) for i in range(p) for j in range(p)}
        missing = expected - seen
        if missing:
            raise AssertionError(f"{len(missing)} buckets never trained, e.g. {sorted(missing)[:4]}")


def greedy_one_swap_cover(num_units: int, capacity: int,
                          rng: Optional[np.random.Generator] = None,
                          randomize_start: bool = False) -> List[List[int]]:
    """Generate partition sets covering all unordered unit pairs, one swap at a time.

    This is the greedy ordering from Marius (BETA): start with units
    ``{0..capacity-1}``, then repeatedly swap a single unit so that the newly
    admitted unit covers as many not-yet-covered pairs as possible, until
    every pair of units has been co-resident at least once. Near-minimal
    total IO among single-swap schedules.

    Returns the list of unit sets (each of size ``capacity``).
    """
    if capacity < 2:
        raise ValueError("capacity must be at least 2 to cover pairs")
    if capacity > num_units:
        raise ValueError(f"capacity {capacity} exceeds unit count {num_units}")
    rng = rng or np.random.default_rng()

    covered = np.zeros((num_units, num_units), dtype=bool)

    if randomize_start:
        current = list(rng.permutation(num_units)[:capacity])
    else:
        current = list(range(capacity))
    for a in current:
        for b in current:
            covered[a, b] = True
        covered[a, a] = True

    sets = [sorted(current)]
    while not covered.all():
        best_gain = -1
        best_pair = None
        in_mem = list(current)
        for admit in range(num_units):
            if admit in current:
                continue
            # Pairs the admitted unit would cover against each possible survivor
            # set; gain depends on which unit gets evicted.
            gains_vs = ~covered[admit, in_mem]
            base_gain = int(gains_vs.sum()) + (0 if covered[admit, admit] else 1)
            for evict_idx, evict in enumerate(in_mem):
                gain = base_gain - int(gains_vs[evict_idx])
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (evict, admit)
        if best_pair is None or best_gain <= 0:
            # Nothing uncovered is reachable with one swap that helps;
            # force-admit any unit participating in an uncovered pair.
            rem = np.argwhere(~covered)
            evict = current[0]
            admit = int(rem[0][0]) if int(rem[0][0]) not in current else int(rem[0][1])
            best_pair = (evict, admit)
        evict, admit = best_pair
        current[current.index(evict)] = admit
        for x in current:
            covered[admit, x] = True
            covered[x, admit] = True
        sets.append(sorted(current))
    return sets


def in_memory_plan(num_partitions: int) -> EpochPlan:
    """Degenerate plan for full in-memory training: one step, everything."""
    parts = list(range(num_partitions))
    buckets = [(i, j) for i in range(num_partitions) for j in range(num_partitions)]
    step = EpochStep(partitions=parts, buckets=buckets, admitted=parts)
    return EpochPlan(steps=[step], num_partitions=num_partitions,
                     buffer_capacity=num_partitions, policy="in-memory")


class PartitionPolicy:
    """Interface: one :class:`EpochPlan` per training epoch."""

    name = "base"

    def plan_epoch(self, epoch: int, rng: Optional[np.random.Generator] = None) -> EpochPlan:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Snapshot support. Policies are epoch-seeded (plans re-derive from a
    # per-epoch rng), so most carry no cross-epoch state — the default
    # export is empty. Stateful policies override both methods with
    # JSON-able payloads so a resumed trainer sees the same policy view.
    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(
                f"policy {self.name!r} keeps no state but the snapshot "
                f"carries {sorted(state)}")
