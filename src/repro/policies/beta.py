"""BETA — the Buffer-aware Edge Traversal Algorithm from Marius (OSDI '21).

The state-of-the-art *greedy* replacement policy the paper uses as its
baseline (Section 5.1): swap one physical partition at a time so each newly
admitted partition covers as many new edge buckets as possible, and **train
on the new buckets immediately** — all training examples in ``X_{i+1}`` have
one endpoint in the just-admitted partition ``p*``. That immediacy is what
minimizes IO yet correlates consecutive mini batches (paper Figure 4) and
costs GNN accuracy (Table 8).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import EpochPlan, EpochStep, PartitionPolicy, greedy_one_swap_cover


class BetaPolicy(PartitionPolicy):
    """Greedy single-swap policy over physical partitions.

    Parameters
    ----------
    num_partitions:
        Physical partition count ``p``.
    buffer_capacity:
        Buffer capacity ``c`` in physical partitions.
    randomize_start:
        Randomize the initial buffer contents each epoch (still greedy after
        that). Marius randomizes the partition order per epoch; the
        correlation structure — which is what matters — is unchanged.
    """

    name = "beta"

    def __init__(self, num_partitions: int, buffer_capacity: int,
                 randomize_start: bool = True) -> None:
        if buffer_capacity < 2:
            raise ValueError("BETA needs a buffer of at least 2 partitions")
        self.num_partitions = num_partitions
        self.buffer_capacity = buffer_capacity
        self.randomize_start = randomize_start

    def plan_epoch(self, epoch: int,
                   rng: Optional[np.random.Generator] = None) -> EpochPlan:
        rng = rng or np.random.default_rng(epoch)
        sets = greedy_one_swap_cover(self.num_partitions, self.buffer_capacity,
                                     rng=rng, randomize_start=self.randomize_start)
        steps: List[EpochStep] = []
        done = set()
        prev: set = set()
        for parts in sets:
            resident = set(parts)
            admitted = sorted(resident - prev)
            # Greedy/immediate X: train on every not-yet-processed bucket the
            # moment both partitions are resident.
            new_buckets: List[Tuple[int, int]] = []
            for i in parts:
                for j in parts:
                    if (i, j) not in done:
                        new_buckets.append((i, j))
                        done.add((i, j))
            steps.append(EpochStep(partitions=sorted(resident),
                                   buckets=new_buckets, admitted=admitted))
            prev = resident
        plan = EpochPlan(steps=steps, num_partitions=self.num_partitions,
                         buffer_capacity=self.buffer_capacity, policy=self.name)
        return plan
