"""COMET — COrrelation Minimizing Edge Traversal (paper Section 5.1).

COMET keeps the near-minimal IO of one-swap greedy orderings but breaks the
training-example correlation that hurts GNN accuracy, via two mechanisms:

1. **Two-level partitioning** — physical partitions on disk are randomly
   grouped into logical partitions at the start of every epoch (no data
   movement); the greedy one-swap schedule runs over *logical* partitions, so
   small physical partitions (less node co-location across epochs) coexist
   with large transfer units (high turnover per swap).
2. **Randomized deferred processing** — each edge bucket (i, j) is assigned
   to one partition set chosen *uniformly at random* among all sets where
   both partitions are resident, instead of the first one. This shuffles the
   example order and balances ``|X_i|`` across steps (in expectation equal),
   which keeps the prefetch pipeline busy end-to-end (Section 7.5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.partition import LogicalGrouping
from .base import EpochPlan, EpochStep, PartitionPolicy, greedy_one_swap_cover


class CometPolicy(PartitionPolicy):
    """Two-level randomized replacement policy for link prediction.

    Parameters
    ----------
    num_physical:
        Physical partition count ``p``.
    num_logical:
        Logical partition count ``l`` (must divide ``p``).
    buffer_capacity:
        Buffer capacity ``c`` in *physical* partitions. COMET requires
        ``p / c == l / c_l`` with ``c_l = c * l / p >= 2`` logical partitions
        in the buffer (Section 6).
    """

    name = "comet"

    def __init__(self, num_physical: int, num_logical: int, buffer_capacity: int) -> None:
        if num_physical % num_logical != 0:
            raise ValueError(f"l must divide p (p={num_physical}, l={num_logical})")
        group_size = num_physical // num_logical
        if buffer_capacity % group_size != 0:
            raise ValueError(
                f"buffer capacity {buffer_capacity} must be a multiple of the "
                f"logical group size {group_size}"
            )
        logical_capacity = buffer_capacity // group_size
        if logical_capacity < 2:
            raise ValueError(
                f"COMET requires at least 2 logical partitions in the buffer, "
                f"got c_l={logical_capacity} (c={buffer_capacity}, p/l={group_size})"
            )
        self.num_physical = num_physical
        self.num_logical = num_logical
        self.buffer_capacity = buffer_capacity
        self.logical_capacity = logical_capacity
        self.group_size = group_size
        self.last_grouping: Optional[LogicalGrouping] = None

    # ------------------------------------------------------------------
    def plan_epoch(self, epoch: int,
                   rng: Optional[np.random.Generator] = None) -> EpochPlan:
        rng = rng or np.random.default_rng(epoch)
        # Mechanism 1: fresh random logical grouping, greedy schedule over it.
        grouping = LogicalGrouping.random(self.num_physical, self.num_logical, rng=rng)
        self.last_grouping = grouping
        logical_sets = greedy_one_swap_cover(self.num_logical, self.logical_capacity,
                                             rng=rng, randomize_start=True)

        # Which steps hold each physical pair (for deferred assignment).
        phys_sets: List[List[int]] = [sorted(grouping.physical_of(s)) for s in logical_sets]
        pair_steps: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for step_idx, parts in enumerate(phys_sets):
            for i in parts:
                for j in parts:
                    pair_steps[(i, j)].append(step_idx)

        # Mechanism 2: each ordered bucket goes to one uniformly random
        # eligible step (deferred processing).
        step_buckets: List[List[Tuple[int, int]]] = [[] for _ in phys_sets]
        for i in range(self.num_physical):
            for j in range(self.num_physical):
                eligible = pair_steps[(i, j)]
                if not eligible:
                    raise AssertionError(
                        f"bucket {(i, j)} never co-resident; schedule is incomplete"
                    )
                chosen = eligible[int(rng.integers(len(eligible)))]
                step_buckets[chosen].append((i, j))

        return self._assemble_steps(phys_sets, step_buckets, rng)

    def state_dict(self) -> dict:
        """Export the current epoch's logical grouping (diagnostic state).

        Plans re-derive deterministically from the per-epoch rng, but a
        resumed trainer should report the same grouping it was using when
        snapshotted (autotune dashboards read ``last_grouping``).
        """
        if self.last_grouping is None:
            return {}
        return {"last_grouping": [m.tolist() for m in self.last_grouping.members]}

    def load_state_dict(self, state: dict) -> None:
        if not state:
            self.last_grouping = None
            return
        members = [np.asarray(m, dtype=np.int64) for m in state["last_grouping"]]
        self.last_grouping = LogicalGrouping(members=members)

    # ------------------------------------------------------------------
    def _assemble_steps(self, phys_sets, step_buckets, rng):
        steps: List[EpochStep] = []
        prev: set = set()
        for parts, buckets in zip(phys_sets, step_buckets):
            resident = set(parts)
            admitted = sorted(resident - prev)
            rng.shuffle(buckets)
            steps.append(EpochStep(partitions=parts, buckets=buckets, admitted=admitted))
            prev = resident
        return EpochPlan(steps=steps, num_partitions=self.num_physical,
                         buffer_capacity=self.buffer_capacity, policy=self.name)
