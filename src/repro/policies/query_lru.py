"""Query-driven partition replacement for inference serving.

Training knows its whole epoch plan up front, so COMET/BETA can precompute
near-minimal swap schedules. A serving buffer only sees the live query
stream — the online-caching setting — where the work-function-algorithm
literature shows a bounded history of recent accesses is enough for a
competitive replacement decision. :class:`QueryLRU` keeps exactly that
bounded history per partition: the last-touch tick (recency) and an
exponentially decayed hit counter (frequency), evicting the
least-recently-used candidate and breaking recency ties by the colder
frequency. Under a skewed (Zipf) query mix the hot partitions therefore
pin themselves in the buffer without any offline analysis.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class QueryLRU:
    """Recency/frequency replacement driven by the live query stream.

    Parameters
    ----------
    num_partitions:
        Physical partition count of the served node store.
    decay:
        Per-touch multiplier applied to every partition's frequency score
        before the touched ones gain ``+1`` — the bounded history: a
        partition untouched for ``~1/(1-decay)`` batches decays to noise.
    """

    name = "query-lru"

    def __init__(self, num_partitions: int, decay: float = 0.95) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.num_partitions = int(num_partitions)
        self.decay = float(decay)
        self._tick = 0
        self.last_used = np.full(self.num_partitions, -1, dtype=np.int64)
        self.frequency = np.zeros(self.num_partitions, dtype=np.float64)
        self.touches = 0

    # ------------------------------------------------------------------
    def touch(self, parts: Iterable[int]) -> None:
        """Record one query batch referencing ``parts`` (resident or not)."""
        parts = np.asarray(list(parts), dtype=np.int64)
        if len(parts) == 0:
            return
        self._tick += 1
        self.touches += 1
        self.frequency *= self.decay
        self.last_used[parts] = self._tick
        self.frequency[parts] += 1.0

    def choose_victims(self, candidates: Sequence[int], count: int) -> List[int]:
        """Pick ``count`` partitions to evict, coldest first.

        Primary key: least-recently-touched. Tie-break (same tick — e.g.
        co-touched by one batch, or both never touched): lower decayed
        frequency goes first.
        """
        cand = np.asarray(sorted(set(int(x) for x in candidates)), dtype=np.int64)
        if count >= len(cand):
            return [int(x) for x in cand]
        order = np.lexsort((self.frequency[cand], self.last_used[cand]))
        return [int(cand[i]) for i in order[:count]]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"tick": self._tick,
                "last_used": self.last_used.tolist(),
                "frequency": self.frequency.tolist()}

    def load_state_dict(self, state: dict) -> None:
        if not state:
            return
        self._tick = int(state["tick"])
        self.last_used = np.asarray(state["last_used"], dtype=np.int64)
        self.frequency = np.asarray(state["frequency"], dtype=np.float64)
