"""The Edge Permutation Bias metric B (paper Section 6).

B captures how *correlated* the training-example order produced by a
replacement policy is: as the sequence X = {X_1 ... X_n} is consumed, each
node v keeps a cumulative tally t_v of how many of its edges have been seen,
normalized so t_v(n) = 1. After each X_i the spread
``d_i = max_v t_v - min_v t_v`` is taken, and ``B = max_i d_i`` in [0, 1].

A biased ordering (e.g. BETA's) processes most edges of some nodes before
*any* edges of others, pushing B toward 1; Figure 6a shows model accuracy
falling as B rises. The paper evaluates B under a uniform-degree assumption;
:func:`edge_permutation_bias` offers both that analytic mode (bucket sizes
from partition cardinalities) and an exact mode using the real edges.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..graph.partition import EdgeBuckets
from .base import EpochPlan


def edge_permutation_bias(plan: EpochPlan, buckets: EdgeBuckets,
                          exact: bool = False) -> float:
    """Compute B for one epoch plan over a partitioned graph.

    Parameters
    ----------
    plan:
        The epoch plan (sequence of X_i bucket lists).
    buckets:
        The partitioned edges.
    exact:
        ``False`` (default, the paper's setting) uses the uniform-degree
        assumption with per-partition tallies — every node in a partition
        shares its partition's tally. ``True`` tallies real per-node edge
        counts; on heavy-tailed graphs this saturates near 1 for any policy
        (a single low-degree node processed entirely in X_1 pins the max),
        so it is only meaningful on near-regular graphs.
    """
    if exact:
        return _bias_exact(plan, buckets)
    return _bias_uniform(plan, buckets)


def _bias_exact(plan: EpochPlan, buckets: EdgeBuckets) -> float:
    num_nodes = buckets.scheme.num_nodes
    totals = np.zeros(num_nodes, dtype=np.int64)
    for step in plan.steps:
        for (i, j) in step.buckets:
            edges = buckets.bucket_edges(i, j)
            np.add.at(totals, edges[:, 0], 1)
            np.add.at(totals, edges[:, -1], 1)
    active = totals > 0
    if not active.any():
        return 0.0
    tally = np.zeros(num_nodes, dtype=np.int64)
    best = 0.0
    steps = plan.steps[:-1] if len(plan.steps) > 1 else plan.steps
    for step in steps:
        for (i, j) in step.buckets:
            edges = buckets.bucket_edges(i, j)
            np.add.at(tally, edges[:, 0], 1)
            np.add.at(tally, edges[:, -1], 1)
        frac = tally[active] / totals[active]
        best = max(best, float(frac.max() - frac.min()))
    return best


def _bias_uniform(plan: EpochPlan, buckets: EdgeBuckets) -> float:
    """Uniform-degree approximation: track tallies per partition.

    Under a uniform degree distribution every node of partition q accrues
    ``(edges touching q in X_i) / |q|`` tally per step; the node-level max/min
    spread equals the partition-level spread.
    """
    p = plan.num_partitions
    sizes = buckets.scheme.sizes().astype(np.float64)
    totals = np.zeros(p, dtype=np.float64)
    per_step: List[np.ndarray] = []
    for step in plan.steps:
        inc = np.zeros(p, dtype=np.float64)
        for (i, j) in step.buckets:
            size = buckets.bucket_size(i, j)
            inc[i] += size
            inc[j] += size
        per_step.append(inc)
        totals += inc
    covered = totals > 0
    if not covered.any():
        return 0.0
    tally = np.zeros(p, dtype=np.float64)
    best = 0.0
    steps = per_step[:-1] if len(per_step) > 1 else per_step
    for inc in steps:
        tally += inc
        frac = tally[covered] / totals[covered]
        best = max(best, float(frac.max() - frac.min()))
    return best


def workload_balance(plan: EpochPlan, buckets: EdgeBuckets) -> Tuple[float, np.ndarray]:
    """Coefficient of variation of per-step training-example counts.

    COMET's deferred assignment balances |X_i| (each step gets the same count
    in expectation), while BETA's immediate assignment is front-loaded —
    Section 7.5 links this to prefetch effectiveness. Returns (cv, counts).
    """
    counts = np.array([
        sum(buckets.bucket_size(i, j) for (i, j) in step.buckets)
        for step in plan.steps
    ], dtype=np.float64)
    if counts.sum() == 0:
        return 0.0, counts
    mean = counts.mean()
    cv = float(counts.std() / mean) if mean > 0 else 0.0
    return cv, counts
