"""Disk-based node classification policy (paper Section 5.2).

Training nodes are only 1-10% of large graphs, so MariusGNN assigns them
sequentially to the first ``k`` physical partitions, pins those partitions in
CPU memory for the whole epoch, and fills the remaining buffer slots with
random partitions re-drawn at the start of every epoch. Zero partition swaps
occur *within* an epoch; IO happens only between epochs.

When the training nodes do not fit (``k >= c``), the fallback replaces a
random resident partition with a random unseen one until all partitions have
appeared (the paper's fallback; exercised in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.partition import PartitionScheme
from .base import EpochPlan, EpochStep, PartitionPolicy


@dataclass
class NodeClassificationStep:
    """One partition set plus the training nodes to process while resident."""

    partitions: List[int]
    train_nodes: np.ndarray
    admitted: List[int]


@dataclass
class NodeClassificationPlan:
    """Epoch plan for disk-based node classification."""

    steps: List[NodeClassificationStep]
    num_partitions: int
    buffer_capacity: int
    policy: str

    @property
    def total_partition_loads(self) -> int:
        return sum(len(s.admitted) for s in self.steps)


class TrainingNodeCachePolicy(PartitionPolicy):
    """Static caching of training-node partitions (Section 5.2).

    Parameters
    ----------
    num_partitions, buffer_capacity:
        Physical partition count ``p`` and buffer capacity ``c``.
    train_partitions:
        The first ``k`` partitions that hold every training node (dataset
        preprocessing places them there).
    train_nodes:
        Global IDs of the labeled training nodes.
    scheme:
        The partition scheme (needed by the fallback to locate each training
        node's partition).
    """

    name = "node-cache"

    def __init__(self, num_partitions: int, buffer_capacity: int,
                 train_partitions: List[int], train_nodes: np.ndarray,
                 scheme: Optional[PartitionScheme] = None) -> None:
        self.num_partitions = num_partitions
        self.buffer_capacity = buffer_capacity
        self.train_partitions = sorted(train_partitions)
        self.train_nodes = np.asarray(train_nodes, dtype=np.int64)
        self.scheme = scheme
        self.fits = len(self.train_partitions) < buffer_capacity

    def plan_epoch(self, epoch: int,
                   rng: Optional[np.random.Generator] = None) -> NodeClassificationPlan:
        rng = rng or np.random.default_rng(epoch)
        if self.fits:
            return self._cached_plan(rng)
        return self._fallback_plan(rng)

    # ------------------------------------------------------------------
    def _cached_plan(self, rng: np.random.Generator) -> NodeClassificationPlan:
        """S = {S_0}: training partitions + c-k random others; zero intra-epoch IO."""
        k = len(self.train_partitions)
        others = [q for q in range(self.num_partitions) if q not in self.train_partitions]
        fill = list(rng.permutation(others)[: self.buffer_capacity - k])
        parts = sorted(self.train_partitions + [int(x) for x in fill])
        step = NodeClassificationStep(partitions=parts,
                                      train_nodes=self.train_nodes.copy(),
                                      admitted=parts)
        return NodeClassificationPlan(steps=[step], num_partitions=self.num_partitions,
                                      buffer_capacity=self.buffer_capacity,
                                      policy=self.name)

    def _fallback_plan(self, rng: np.random.Generator) -> NodeClassificationPlan:
        """k >= c fallback: random replacement until every partition has appeared.

        Training nodes are processed at the first step where their partition
        is resident.
        """
        if self.scheme is None:
            raise ValueError("fallback plan requires the partition scheme")
        train_parts = self.scheme.partition_of(self.train_nodes)
        parts = list(int(x) for x in rng.permutation(self.num_partitions))
        current = sorted(parts[: self.buffer_capacity])
        pending = parts[self.buffer_capacity:]
        steps: List[NodeClassificationStep] = []
        processed: set = set()

        def nodes_for(resident: List[int]) -> np.ndarray:
            ready = [q for q in resident
                     if q in self.train_partitions and q not in processed]
            processed.update(ready)
            if not ready:
                return np.empty(0, dtype=np.int64)
            return self.train_nodes[np.isin(train_parts, ready)]

        steps.append(NodeClassificationStep(partitions=list(current),
                                            train_nodes=nodes_for(current),
                                            admitted=list(current)))
        while pending:
            evict = current[int(rng.integers(len(current)))]
            admit = pending.pop()
            current[current.index(evict)] = admit
            resident = sorted(current)
            steps.append(NodeClassificationStep(
                partitions=resident,
                train_nodes=nodes_for(resident),
                admitted=[admit],
            ))
        return NodeClassificationPlan(steps=steps, num_partitions=self.num_partitions,
                                      buffer_capacity=self.buffer_capacity,
                                      policy=f"{self.name}-fallback")
