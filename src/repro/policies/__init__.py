"""Partition replacement policies: BETA, COMET, node caching, bias, tuning."""

from .autotune import (AutotuneResult, GraphSpec, HardwareSpec, autotune,
                       autotune_from_dataset)
from .base import (EpochPlan, EpochStep, PartitionPolicy,
                   greedy_one_swap_cover, in_memory_plan)
from .beta import BetaPolicy
from .bias import edge_permutation_bias, workload_balance
from .comet import CometPolicy
from .hilbert import HilbertOrderingPolicy, hilbert_bucket_order
from .node_cache import (NodeClassificationPlan, NodeClassificationStep,
                         TrainingNodeCachePolicy)
from .query_lru import QueryLRU

__all__ = [
    "EpochPlan", "EpochStep", "PartitionPolicy", "greedy_one_swap_cover",
    "in_memory_plan", "BetaPolicy", "CometPolicy", "HilbertOrderingPolicy",
    "hilbert_bucket_order",
    "TrainingNodeCachePolicy", "NodeClassificationPlan", "NodeClassificationStep",
    "QueryLRU",
    "edge_permutation_bias", "workload_balance",
    "autotune", "autotune_from_dataset", "GraphSpec", "HardwareSpec", "AutotuneResult",
]
