"""Hilbert-curve edge-bucket ordering — the PyTorch-BigGraph-style baseline.

Before BETA, disk-based graph embedding systems (PBG; compared against in the
Marius paper) iterated edge buckets along a space-filling curve over the
(source-partition, destination-partition) grid: consecutive buckets share
partitions, so swaps are cheap, but the traversal is *deterministic* and even
more correlated than BETA's greedy order. Included as a third policy baseline
for the ablation benches.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .base import EpochPlan, EpochStep, PartitionPolicy


def hilbert_d2xy(order: int, d: int) -> Tuple[int, int]:
    """Map a distance ``d`` along a Hilbert curve of size ``2^order`` to (x, y)."""
    rx = ry = 0
    x = y = 0
    t = d
    s = 1
    n = 1 << order
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_bucket_order(num_partitions: int) -> List[Tuple[int, int]]:
    """All ordered buckets of a p x p grid in Hilbert-curve order.

    ``p`` is rounded up to a power of two internally; out-of-range cells are
    skipped, so any ``p`` works.
    """
    order = max(1, int(np.ceil(np.log2(max(num_partitions, 2)))))
    side = 1 << order
    out: List[Tuple[int, int]] = []
    for d in range(side * side):
        x, y = hilbert_d2xy(order, d)
        if x < num_partitions and y < num_partitions:
            out.append((x, y))
    return out


class HilbertOrderingPolicy(PartitionPolicy):
    """PBG-style epoch plan: buckets in Hilbert order, lazy partition swaps.

    Walks the Hilbert bucket sequence; whenever the next bucket's partitions
    are not resident, evicts the least-recently-needed partitions to make
    room (a new step). Covers every ordered bucket exactly once.
    """

    name = "hilbert"

    def __init__(self, num_partitions: int, buffer_capacity: int) -> None:
        if buffer_capacity < 2:
            raise ValueError("need a buffer of at least 2 partitions")
        self.num_partitions = num_partitions
        self.buffer_capacity = buffer_capacity

    def plan_epoch(self, epoch: int,
                   rng: Optional[np.random.Generator] = None) -> EpochPlan:
        order = hilbert_bucket_order(self.num_partitions)
        steps: List[EpochStep] = []
        resident: List[int] = []
        last_used = {}
        current_buckets: List[Tuple[int, int]] = []
        tick = 0

        def flush(newly: List[int]) -> None:
            nonlocal current_buckets
            if current_buckets:
                steps.append(EpochStep(partitions=sorted(resident),
                                       buckets=current_buckets,
                                       admitted=sorted(newly)))
                current_buckets = []

        pending_admits: List[int] = []
        for (i, j) in order:
            tick += 1
            needed = {i, j}
            missing = [q for q in needed if q not in resident]
            if missing:
                # Close the current step, swap, and start a new one.
                flush(pending_admits)
                pending_admits = []
                for q in missing:
                    if len(resident) >= self.buffer_capacity:
                        evict = min(resident, key=lambda r: last_used.get(r, -1))
                        resident.remove(evict)
                    resident.append(q)
                    pending_admits.append(q)
            last_used[i] = tick
            last_used[j] = tick
            current_buckets.append((i, j))
        flush(pending_admits)
        return EpochPlan(steps=steps, num_partitions=self.num_partitions,
                         buffer_capacity=self.buffer_capacity, policy=self.name)
