"""Auto-tuning rules for COMET hyperparameters (paper Section 6).

Given graph statistics and hardware constants, MariusGNN sets:

* ``p`` (physical partitions) — as large as possible without shrinking the
  smallest disk read below the device block size:
  ``p = alpha_4 = min(NO / D, sqrt(EO / D))``, where NO/EO are the node and
  edge storage overheads and D the block size. More physical partitions
  monotonically lower the Edge Permutation Bias (B = O(p^-alpha1)).
* ``c`` (buffer capacity) — maximized subject to CPU memory:
  ``c * PO + 2 * c^2 * EBO + F < CPU`` (two sorted edge-list copies, fudge F).
* ``l`` (logical partitions) — minimized subject to COMET's constraints
  ``c_l = c * l / p >= 2``, hence ``l = 2p / c``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class HardwareSpec:
    """CPU memory and disk characteristics used by the tuning rules."""

    cpu_memory_bytes: int
    disk_block_bytes: int = 1 << 17          # 128 KiB, EBS-style block
    fudge_bytes: int = 2 << 30               # working-memory reserve F

    @staticmethod
    def aws_p3_2xlarge() -> "HardwareSpec":
        return HardwareSpec(cpu_memory_bytes=61 << 30)


@dataclass(frozen=True)
class GraphSpec:
    """Storage-relevant graph statistics."""

    num_nodes: int
    num_edges: int
    embedding_dim: int
    bytes_per_edge: int = 24  # (src, rel, dst) int64 triple
    state_factor: float = 2.0  # learnable reprs carry per-row Adagrad state

    @property
    def node_overhead(self) -> int:
        """NO: bytes of base representations (float32) plus optimizer state.

        Marius-style storage pages Adagrad state with its partition, doubling
        the per-node footprint — this is how the paper's Table 1 reaches 69GB
        for Freebase86M's 86M x 100-float embeddings.
        """
        return int(self.num_nodes * self.embedding_dim * 4 * self.state_factor)

    @property
    def edge_overhead(self) -> int:
        """EO: total bytes of the edge list."""
        return self.num_edges * self.bytes_per_edge


@dataclass(frozen=True)
class AutotuneResult:
    """Chosen hyperparameters plus the intermediate quantities."""

    num_physical: int      # p
    num_logical: int       # l
    buffer_capacity: int   # c (physical partitions)
    logical_capacity: int  # c_l (logical partitions in buffer; == 2 by rule)
    alpha4: float
    partition_bytes: float     # PO
    edge_bucket_bytes: float   # EBO

    @property
    def buffer_fraction(self) -> float:
        return self.buffer_capacity / self.num_physical


def autotune(graph: GraphSpec, hardware: HardwareSpec,
             max_physical: Optional[int] = None) -> AutotuneResult:
    """Apply the Section 6 rules; returns a consistent (p, l, c) triple.

    The raw rules are continuous; this resolves them to integers satisfying
    COMET's divisibility constraints: ``l | p``, ``(p/l) | c``, ``c_l = 2``.
    """
    no = graph.node_overhead
    eo = graph.edge_overhead
    d = hardware.disk_block_bytes

    # p = alpha4: partitions at which the smallest read hits the block size.
    alpha4 = min(no / d, math.sqrt(max(eo, 1) / d))
    p = max(2, int(alpha4))
    if max_physical is not None:
        p = min(p, max_physical)

    # Maximize c: c*PO + 2*c^2*EBO + F < CPU.
    budget = hardware.cpu_memory_bytes - hardware.fudge_bytes
    if budget <= 0:
        raise ValueError("CPU memory smaller than the fudge reserve")
    po = no / p
    ebo = eo / (p * p)
    c = _max_capacity(p, po, ebo, budget)
    if c < 2:
        raise ValueError(
            "graph does not fit: even a 2-partition buffer exceeds CPU memory"
        )
    if c >= p:
        # Whole graph fits in memory: disk-based training degenerates.
        return AutotuneResult(num_physical=p, num_logical=p, buffer_capacity=p,
                              logical_capacity=p, alpha4=alpha4,
                              partition_bytes=po, edge_bucket_bytes=ebo)

    # l = 2p / c with c_l = 2. COMET needs (c/2) | p for integral logical
    # groups; a rigid round-down of c is catastrophic when p is prime (the
    # only divisors are 1 and p, collapsing the buffer to 2 partitions), so
    # search p' in [0.85p, p] jointly with c' and keep the pair with the
    # largest buffer, tie-broken by more physical partitions (lower bias).
    best = None
    for p_try in range(p, max(1, int(p * 0.85)) - 1, -1):
        po_try = no / p_try
        ebo_try = eo / (p_try * p_try)
        cmax = min(p_try - 1, _max_capacity(p_try, po_try, ebo_try, budget))
        c_try = _round_capacity(p_try, cmax)
        if c_try < 2:
            continue
        key = (c_try * po_try, p_try)   # buffer bytes, then partition count
        if best is None or key > best[0]:
            best = (key, p_try, c_try, po_try, ebo_try)
    if best is None:
        raise ValueError("no feasible (p, c) pair satisfies the constraints")
    _, p, c, po, ebo = best
    group = c // 2
    l = p // group
    return AutotuneResult(num_physical=p, num_logical=l, buffer_capacity=c,
                          logical_capacity=2, alpha4=alpha4,
                          partition_bytes=po, edge_bucket_bytes=ebo)


def _max_capacity(p: int, po: float, ebo: float, budget: float) -> int:
    """Largest c with c*PO + 2*c^2*EBO <= budget (quadratic in c)."""
    if ebo <= 0:
        return min(p, int(budget // max(po, 1)))
    # 2*ebo*c^2 + po*c - budget = 0
    disc = po * po + 8 * ebo * budget
    c = (-po + math.sqrt(disc)) / (4 * ebo)
    return min(p, int(c))


def _round_capacity(p: int, c: int) -> int:
    """Largest even c' <= c such that (c'/2) divides p."""
    for candidate in range(min(c, p - 1), 1, -1):
        if candidate % 2 == 0 and p % (candidate // 2) == 0:
            return candidate
    return 2


def autotune_from_dataset(num_nodes: int, num_edges: int, embedding_dim: int,
                          cpu_memory_gb: float, has_relations: bool = True,
                          disk_block_kb: int = 128,
                          fudge_gb: float = 2.0,
                          max_physical: Optional[int] = None) -> AutotuneResult:
    """Convenience wrapper taking human-scale units."""
    graph = GraphSpec(num_nodes=num_nodes, num_edges=num_edges,
                      embedding_dim=embedding_dim,
                      bytes_per_edge=24 if has_relations else 16)
    hardware = HardwareSpec(cpu_memory_bytes=int(cpu_memory_gb * (1 << 30)),
                            disk_block_bytes=disk_block_kb << 10,
                            fudge_bytes=int(fudge_gb * (1 << 30)))
    return autotune(graph, hardware, max_physical=max_physical)
