"""Node classification training: in-memory and disk-based modes.

Node features are *fixed* base representations (Papers100M/Mag240M style), so
the disk store is read-only and the only learnable state is the GNN + head.
Disk-based training uses the Section 5.2 policy: training nodes are relabeled
into the first ``k`` partitions, those partitions are pinned in memory all
epoch, and the rest of the buffer is refilled with random partitions between
epochs — giving zero intra-epoch partition swaps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..api import registry as job_registry
from ..core.encoder import GNNEncoder
from ..core.sampler import DenseSampler
from ..graph.datasets import NodeClassificationDataset
from ..graph.edge_list import Graph
from ..graph.partition import PartitionScheme
from ..nn.decoders import ClassificationHead
from ..nn.loss import softmax_cross_entropy
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..policies.node_cache import TrainingNodeCachePolicy
from ..storage.buffer import PartitionBuffer
from ..storage.edge_store import EdgeBucketStore
from ..storage.io_stats import IOStats
from ..storage.node_store import NodeStore
from .checkpoint import (SnapshotManager, _config_to_dict,
                         nc_dataset_fingerprint, pack_model, pack_optimizer,
                         resolve_snapshot, rng_state, set_rng_state,
                         unpack_model, unpack_optimizer, validate_meta)
from .evaluation import EpochRecord, multiclass_accuracy
from .hooks import ListenerHooks, ProgressListener


@dataclass
class NodeClassificationConfig:
    """Hyperparameters for node classification training."""

    encoder: str = "graphsage"
    hidden_dim: int = 64
    num_layers: int = 3
    fanouts: Tuple[int, ...] = (30, 20, 10)
    directions: str = "both"
    batch_size: int = 1000
    lr: float = 0.01
    dropout: float = 0.0
    num_epochs: int = 10
    eval_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.fanouts) != self.num_layers:
            raise ValueError("fanouts must have num_layers entries")


@dataclass
class NodeClassificationResult:
    epochs: List[EpochRecord]
    final_accuracy: float
    model_name: str

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.seconds for e in self.epochs]))


class NodeClassifier(Module):
    """GNN encoder + linear softmax head."""

    def __init__(self, config: NodeClassificationConfig, feat_dim: int,
                 num_classes: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        dims = [feat_dim] + [config.hidden_dim] * config.num_layers
        self.encoder = GNNEncoder(config.encoder, dims, final_activation="relu",
                                  dropout=config.dropout, rng=rng)
        self.head = ClassificationHead(config.hidden_dim, num_classes, rng=rng)

    def forward(self, h0: Tensor, batch) -> Tensor:
        return self.head(self.encoder(h0, batch))


class NodeClassificationTrainer(ListenerHooks):
    """In-memory trainer (M-GNN_Mem for Table 3).

    ``checkpoint_dir``/``checkpoint_every`` (in epochs) enable the atomic
    snapshot subsystem; :meth:`resume` restores the latest snapshot so a
    continued :meth:`train` is bit-identical to an uninterrupted run (the
    same epoch-granularity contract as :class:`LinkPredictionTrainer`).
    """

    KIND = job_registry.NC_MEM

    def __init__(self, dataset: NodeClassificationDataset,
                 config: Optional[NodeClassificationConfig] = None,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        self.dataset = dataset
        self.config = config or NodeClassificationConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        graph = dataset.graph
        if graph.node_features is None or graph.node_labels is None:
            raise ValueError("node classification needs features and labels")
        self.model = NodeClassifier(cfg, graph.node_features.shape[1],
                                    dataset.num_classes, rng=self.rng)
        self.optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        self.sampler = DenseSampler(graph, list(cfg.fanouts),
                                    directions=cfg.directions, rng=self.rng)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)
        self._start_epoch = 0

    # ------------------------------------------------------------------
    def save_snapshot(self, next_epoch: int) -> Path:
        """Atomically snapshot model + optimizer + rng; resume at ``next_epoch``.

        Features and labels are immutable dataset state, so — like the disk
        NC trainer — the snapshot carries no table, only the dataset
        fingerprint to validate the data on resume.
        """
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        arrays: dict = {}
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.optimizer, arrays)
        meta = {"trainer": self.KIND, "epoch": int(next_epoch),
                "rng": rng_state(self.rng),
                "stores": {"dataset": nc_dataset_fingerprint(self.dataset)},
                "config": _config_to_dict(self.config)}
        path = self.snapshots.save(next_epoch, meta, arrays)
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   epoch=int(next_epoch))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore a snapshot (latest under the checkpoint dir by default)."""
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, config=self.config,
                      stores={"dataset": nc_dataset_fingerprint(self.dataset)})
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.optimizer, arrays)
        set_rng_state(self.rng, meta["rng"])
        self._start_epoch = int(meta["epoch"])
        return meta

    # ------------------------------------------------------------------
    def _train_batch(self, nodes: np.ndarray, sampler: DenseSampler,
                     features: np.ndarray, labels: np.ndarray,
                     record: EpochRecord) -> float:
        t0 = time.perf_counter()
        targets = np.unique(nodes)
        batch = sampler.sample(targets)
        t1 = time.perf_counter()
        h0 = Tensor(features[batch.node_ids])
        logits = self.model(h0, batch)
        loss = softmax_cross_entropy(logits, labels[targets])
        self.model.zero_grad()
        loss.backward()
        self.optimizer.step()
        record.sample_seconds += t1 - t0
        record.compute_seconds += time.perf_counter() - t1
        record.num_batches += 1
        return float(loss.data)

    def train(self, verbose: bool = False) -> NodeClassificationResult:
        cfg = self.config
        graph = self.dataset.graph
        records: List[EpochRecord] = []
        for epoch in range(self._start_epoch, cfg.num_epochs):
            t0 = time.perf_counter()
            record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
            losses = []
            order = self.rng.permutation(self.dataset.train_nodes)
            for start in range(0, len(order), cfg.batch_size):
                nodes = order[start : start + cfg.batch_size]
                losses.append(self._train_batch(nodes, self.sampler,
                                                graph.node_features,
                                                graph.node_labels, record))
            record.seconds = time.perf_counter() - t0
            record.loss = float(np.mean(losses)) if losses else 0.0
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate(self.dataset.valid_nodes)
            records.append(record)
            self._emit("epoch", trainer=self.KIND, epoch=epoch,
                       loss=record.loss, seconds=record.seconds,
                       metric=record.metric)
            if (self.snapshots is not None and self.checkpoint_every
                    and (epoch + 1) % self.checkpoint_every == 0):
                self.save_snapshot(epoch + 1)
            if verbose:
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s acc={record.metric:.4f}")
        self._start_epoch = 0
        acc = self.evaluate(self.dataset.test_nodes)
        return NodeClassificationResult(epochs=records, final_accuracy=acc,
                                        model_name=f"{cfg.encoder}-mem")

    def evaluate(self, nodes: np.ndarray, batch_size: int = 1000) -> float:
        return evaluate_classifier(self.model, self.dataset.graph, nodes,
                                   self.config, batch_size=batch_size)


def evaluate_classifier(model: NodeClassifier, graph: Graph, nodes: np.ndarray,
                        config: NodeClassificationConfig,
                        batch_size: int = 1000, seed: int = 99) -> float:
    """Accuracy over ``nodes`` with full-graph neighborhood sampling."""
    rng = np.random.default_rng(seed)
    sampler = DenseSampler(graph, list(config.fanouts),
                           directions=config.directions, rng=rng)
    model.eval()
    preds = np.empty(len(nodes), dtype=np.int64)
    nodes = np.asarray(nodes, dtype=np.int64)
    with no_grad():
        for start in range(0, len(nodes), batch_size):
            chunk = np.unique(nodes[start : start + batch_size])
            batch = sampler.sample(chunk)
            h0 = Tensor(graph.node_features[batch.node_ids])
            logits = model(h0, batch).data
            # chunk is sorted-unique; map back to the original positions
            pred_of = dict(zip(chunk.tolist(), logits.argmax(axis=1).tolist()))
            for offset, node in enumerate(nodes[start : start + batch_size]):
                preds[start + offset] = pred_of[int(node)]
    model.train()
    return multiclass_accuracy(preds, graph.node_labels[nodes])


# ---------------------------------------------------------------------------
# Disk-based node classification
# ---------------------------------------------------------------------------

def relabel_for_training_cache(dataset: NodeClassificationDataset,
                               num_partitions: int
                               ) -> Tuple[NodeClassificationDataset, np.ndarray, List[int]]:
    """Renumber nodes so training nodes fill the first partitions (Section 5.2).

    Returns ``(new_dataset, old_to_new, train_partitions)`` where
    ``train_partitions`` lists the partitions holding every training node.
    """
    graph = dataset.graph
    n = graph.num_nodes
    train = np.asarray(dataset.train_nodes, dtype=np.int64)
    is_train = np.zeros(n, dtype=bool)
    is_train[train] = True
    others = np.flatnonzero(~is_train)
    rng = np.random.default_rng(0)
    others = rng.permutation(others)
    new_order = np.concatenate([train, others])  # new id -> old id
    old_to_new = np.empty(n, dtype=np.int64)
    old_to_new[new_order] = np.arange(n, dtype=np.int64)

    new_graph = Graph(
        num_nodes=n,
        src=old_to_new[graph.src],
        dst=old_to_new[graph.dst],
        rel=graph.rel,
        num_relations=graph.num_relations,
        node_features=graph.node_features[new_order],
        node_labels=graph.node_labels[new_order],
        name=f"{graph.name}-cachelayout",
    )
    new_dataset = NodeClassificationDataset(
        graph=new_graph,
        train_nodes=old_to_new[dataset.train_nodes],
        valid_nodes=old_to_new[dataset.valid_nodes],
        test_nodes=old_to_new[dataset.test_nodes],
        stats=dataset.stats,
    )
    scheme = PartitionScheme.uniform(n, num_partitions)
    train_parts = sorted(set(int(x) for x in
                             scheme.partition_of(new_dataset.train_nodes)))
    return new_dataset, old_to_new, train_parts


@dataclass
class DiskNodeClassificationConfig:
    workdir: Path
    num_partitions: int = 16
    buffer_capacity: int = 8

    def __post_init__(self) -> None:
        self.workdir = Path(self.workdir)


class DiskNodeClassificationTrainer(ListenerHooks):
    """Out-of-core node classification with training-node caching.

    Sampling sees only the in-buffer subgraph, so neighborhoods can be
    smaller than in-memory training — the effect behind M-GNN_Disk's slight
    accuracy drop and faster epochs in Table 3.

    ``checkpoint_incremental`` is accepted for signature parity with the
    disk LP trainer but is a no-op here: the feature store is immutable
    (``learnable=False``), so NC snapshots carry no table to delta — every
    save is already rows-free and minimal.
    """

    KIND = job_registry.NC_DISK

    def __init__(self, dataset: NodeClassificationDataset,
                 config: Optional[NodeClassificationConfig] = None,
                 disk: Optional[DiskNodeClassificationConfig] = None,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 checkpoint_incremental: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        self.checkpoint_incremental = bool(checkpoint_incremental)
        self.config = config or NodeClassificationConfig()
        self.disk = disk or DiskNodeClassificationConfig(workdir=Path("/tmp/repro-nc"))
        cfg, dsk = self.config, self.disk
        self.rng = np.random.default_rng(cfg.seed)
        self.dataset, self._old_to_new, train_parts = relabel_for_training_cache(
            dataset, dsk.num_partitions)
        graph = self.dataset.graph
        self.scheme = PartitionScheme.uniform(graph.num_nodes, dsk.num_partitions)
        self.io = IOStats()
        dsk.workdir.mkdir(parents=True, exist_ok=True)
        self.node_store = NodeStore(dsk.workdir / "features.bin", self.scheme,
                                    graph.node_features.shape[1], learnable=False,
                                    stats=self.io)
        self.node_store.initialize(values=graph.node_features)
        self.edge_store = EdgeBucketStore(dsk.workdir / "edges.bin", graph,
                                          self.scheme, stats=self.io)
        self.buffer = PartitionBuffer(self.node_store, dsk.buffer_capacity)
        # Swap listener keeps the partition-aware sampler index incremental:
        # only the buckets of partitions that entered the buffer are read.
        self.sampler = DenseSampler.from_partitions(
            self.scheme, self.edge_store.bucket_endpoints, (),
            list(cfg.fanouts), directions=cfg.directions, rng=self.rng)
        self.buffer.add_swap_listener(
            lambda added, removed: self.sampler.update_graph(added, removed))
        self.policy = TrainingNodeCachePolicy(dsk.num_partitions, dsk.buffer_capacity,
                                              train_parts, self.dataset.train_nodes,
                                              scheme=self.scheme)
        self.model = NodeClassifier(cfg, graph.node_features.shape[1],
                                    self.dataset.num_classes, rng=self.rng)
        self.optimizer = Adam(self.model.parameters(), lr=cfg.lr)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)  # in epoch-plan steps
        self._start_epoch = 0
        self._start_step = 0
        self._steps_done = 0

    # ------------------------------------------------------------------
    def _store_fingerprints(self) -> dict:
        dsk = self.disk
        return {"node": self.node_store.fingerprint(),
                "edge": self.edge_store.fingerprint(),
                "plan": f"node-cache:p{dsk.num_partitions}"
                        f":c{dsk.buffer_capacity}"}

    def save_snapshot(self, epoch: int, next_step: int, num_steps: int) -> Path:
        """Atomic snapshot of the GNN + cursors; features are read-only.

        The feature store is immutable (``learnable=False``) and rebuilt
        bit-identically from the dataset on restart, so — unlike the link
        prediction trainers — the snapshot carries no table copy, only the
        store fingerprints to validate the layout on resume.
        """
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        if next_step >= num_steps:
            epoch, next_step = epoch + 1, 0
        arrays: dict = {}
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.optimizer, arrays)
        meta = {"trainer": self.KIND, "epoch": int(epoch), "step": int(next_step),
                "resident": self.buffer.resident,
                "rng": rng_state(self.rng),
                "policy": self.policy.state_dict(),
                "stores": self._store_fingerprints(),
                "config": _config_to_dict(self.config)}
        path = self.snapshots.save(epoch * 1_000_000 + next_step, meta, arrays)
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   epoch=int(epoch), step=int(next_step))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore the latest (or given) snapshot; next train() continues."""
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, stores=self._store_fingerprints(),
                      config=self.config)
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.optimizer, arrays)
        self.policy.load_state_dict(meta.get("policy", {}))
        self.buffer.drop_all()
        self.buffer.set_partitions(meta["resident"])
        set_rng_state(self.rng, meta["rng"])
        self._start_epoch = int(meta["epoch"])
        self._start_step = int(meta["step"])
        return meta

    # ------------------------------------------------------------------
    def train(self, verbose: bool = False) -> NodeClassificationResult:
        cfg = self.config
        records: List[EpochRecord] = []
        for epoch in range(self._start_epoch, cfg.num_epochs):
            start_step = self._start_step if epoch == self._start_epoch else 0
            record = self._train_epoch(epoch, start_step=start_step)
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate(self.dataset.valid_nodes)
            records.append(record)
            self._emit("epoch", trainer=self.KIND, epoch=epoch,
                       loss=record.loss, seconds=record.seconds,
                       metric=record.metric, io_bytes=record.io_bytes)
            if verbose:
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s io={record.io_bytes >> 20}MiB")
        self._start_epoch = 0
        self._start_step = 0
        acc = self.evaluate(self.dataset.test_nodes)
        return NodeClassificationResult(epochs=records, final_accuracy=acc,
                                        model_name=f"{cfg.encoder}-disk")

    def _train_epoch(self, epoch: int, start_step: int = 0) -> EpochRecord:
        cfg = self.config
        t0 = time.perf_counter()
        record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
        io_before = self.io.snapshot()
        plan = self.policy.plan_epoch(epoch, rng=np.random.default_rng(epoch * 31 + 7))
        losses: List[float] = []
        for step_idx, step in enumerate(plan.steps):
            if step_idx < start_step:
                continue
            t_io = time.perf_counter()
            # The swap listener updates self.sampler's index incrementally.
            self.buffer.set_partitions(step.partitions)
            record.io_seconds += time.perf_counter() - t_io
            if len(step.train_nodes) > 0:
                order = self.rng.permutation(step.train_nodes)
                labels = self.dataset.graph.node_labels
                for start in range(0, len(order), cfg.batch_size):
                    nodes = np.unique(order[start : start + cfg.batch_size])
                    t1 = time.perf_counter()
                    batch = self.sampler.sample(nodes)
                    t2 = time.perf_counter()
                    h0 = Tensor(self.buffer.gather(batch.node_ids))
                    logits = self.model(h0, batch)
                    loss = softmax_cross_entropy(logits, labels[nodes])
                    self.model.zero_grad()
                    loss.backward()
                    self.optimizer.step()
                    record.sample_seconds += t2 - t1
                    record.compute_seconds += time.perf_counter() - t2
                    record.num_batches += 1
                    losses.append(float(loss.data))
            self._steps_done += 1
            if (self.snapshots is not None and self.checkpoint_every
                    and self._steps_done % self.checkpoint_every == 0):
                self.save_snapshot(epoch, step_idx + 1, len(plan.steps))
        io_epoch = self.io.diff(io_before)
        record.io_bytes = io_epoch.total_bytes
        record.partition_loads = io_epoch.partition_loads
        record.seconds = time.perf_counter() - t0
        record.loss = float(np.mean(losses)) if losses else 0.0
        return record

    def evaluate(self, nodes: np.ndarray, batch_size: int = 1000) -> float:
        """Full-graph in-memory evaluation (standard protocol)."""
        return evaluate_classifier(self.model, self.dataset.graph, nodes,
                                   self.config, batch_size=batch_size)
