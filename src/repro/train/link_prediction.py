"""Link prediction training: in-memory and disk-based (COMET/BETA) modes.

The mini-batch lifecycle follows Figure 2 of the paper:

1. select training examples (edges) from X_i,
2. sample their multi-hop neighborhood into DENSE (CPU),
3. gather base representations and "transfer" to the compute device,
4. forward pass + loss + gradients,
5. update GNN parameters,
6. write base-representation updates back (to the table / partition buffer).

Both trainers share the same model and batch step; the disk trainer layers a
:class:`~repro.storage.buffer.PartitionBuffer`, an epoch plan from the chosen
replacement policy, and in-buffer negative/neighbor restrictions on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.dense import DenseBatch
from ..core.encoder import GNNEncoder
from ..core.sampler import DenseSampler
from ..api import registry as job_registry
from ..graph.datasets import LinkPredictionDataset
from ..graph.edge_list import Graph
from ..graph.partition import PartitionScheme
from ..nn.decoders import make_decoder
from ..nn.loss import link_prediction_loss
from ..nn.module import Module
from ..nn.optim import Adam, RowAdagrad
from ..nn.tensor import Tensor, no_grad
from ..policies.base import EpochPlan, PartitionPolicy
from ..storage.buffer import PartitionBuffer
from ..storage.edge_store import EdgeBucketStore
from ..storage.io_stats import IOStats
from ..storage.node_store import NodeStore
from .checkpoint import (SnapshotError, SnapshotManager, _config_to_dict,
                         dataset_fingerprint, delta_key, pack_model,
                         pack_optimizer, resolve_snapshot,
                         resolve_snapshot_dir, rng_state, set_rng_state,
                         unpack_model, unpack_optimizer, validate_meta)
from .evaluation import EpochRecord, RankingMetrics, ranking_metrics, ranks_from_scores
from .hooks import ListenerHooks, ProgressListener
from .negative_sampling import UniformNegativeSampler


@dataclass
class LinkPredictionConfig:
    """Hyperparameters for link prediction training.

    ``encoder="none"`` gives the decoder-only knowledge-graph-embedding mode
    (Marius's DistMult rows in Table 8); otherwise a GNN encoder of
    ``num_layers`` layers with the given ``fanouts`` runs on top of the
    learnable base representations.
    """

    embedding_dim: int = 50
    encoder: str = "graphsage"          # none | graphsage | gcn | gat
    num_layers: int = 1
    fanouts: Tuple[int, ...] = (20,)
    directions: str = "both"
    decoder: str = "distmult"
    batch_size: int = 1000
    num_negatives: int = 100
    embedding_lr: float = 0.1
    gnn_lr: float = 0.01
    num_epochs: int = 5
    eval_negatives: int = 200
    eval_max_edges: int = 2000
    eval_every: int = 0                 # 0 = only at the end
    seed: int = 0

    def __post_init__(self) -> None:
        if self.encoder != "none" and len(self.fanouts) != self.num_layers:
            raise ValueError(
                f"fanouts {self.fanouts} must have num_layers={self.num_layers} entries"
            )
        if self.encoder == "none":
            self.num_layers = 0
            self.fanouts = ()


@dataclass
class TrainResult:
    """Outcome of a training run."""

    epochs: List[EpochRecord]
    final_metrics: RankingMetrics
    model_name: str

    @property
    def final_mrr(self) -> float:
        return self.final_metrics.mrr

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.seconds for e in self.epochs]))


class LinkPredictionModel(Module):
    """Encoder (optional) + decoder over learnable base representations."""

    def __init__(self, config: LinkPredictionConfig, num_relations: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config
        d = config.embedding_dim
        self.encoder: Optional[GNNEncoder] = None
        if config.encoder != "none":
            dims = [d] * (config.num_layers + 1)
            self.encoder = GNNEncoder(config.encoder, dims,
                                      final_activation=None, rng=rng)
        self.decoder = make_decoder(config.decoder, num_relations, d, rng=rng)

    def encode(self, h0: Tensor, batch: DenseBatch) -> Tensor:
        """Representations for ``batch.target_nodes()`` (h0 covers node_ids)."""
        if self.encoder is None:
            return h0
        return self.encoder(h0, batch)


class _EmbeddingTable:
    """In-memory learnable base representations with row Adagrad."""

    def __init__(self, num_nodes: int, dim: int, lr: float,
                 rng: np.random.Generator) -> None:
        scale = 1.0 / dim
        self.table = rng.uniform(-scale, scale, size=(num_nodes, dim)).astype(np.float32)
        self.state = np.zeros_like(self.table)
        self.optimizer = RowAdagrad(lr=lr)

    def gather(self, rows: np.ndarray) -> np.ndarray:
        return self.table[rows]

    def apply(self, rows: np.ndarray, grads: np.ndarray) -> None:
        self.optimizer.update(self.table, self.state, rows, grads)


class _BatchStep:
    """The shared steps 1-6 of the mini-batch lifecycle."""

    def __init__(self, model: LinkPredictionModel, config: LinkPredictionConfig,
                 rng: np.random.Generator) -> None:
        self.model = model
        self.config = config
        self.rng = rng
        params = model.parameters()
        self.gnn_optimizer = Adam(params, lr=config.gnn_lr) if params else None

    def run(self, edges: np.ndarray, sampler: DenseSampler,
            negatives: UniformNegativeSampler, gather_fn, apply_fn,
            record: EpochRecord) -> float:
        src = edges[:, 0]
        dst = edges[:, -1]
        rel = edges[:, 1] if edges.shape[1] == 3 else np.zeros(len(edges), dtype=np.int64)

        t0 = time.perf_counter()
        neg_nodes = negatives.sample().nodes
        targets = np.unique(np.concatenate([src, dst, neg_nodes]))
        if self.config.num_layers > 0:
            batch = sampler.sample(targets)
        else:
            batch = sampler.sample_no_neighbors(targets)
        t1 = time.perf_counter()

        h0 = Tensor(gather_fn(batch.node_ids), requires_grad=True)
        out = self.model.encode(h0, batch)
        # One concatenated lookup instead of three sorted searches.
        rows = np.searchsorted(targets, np.concatenate([src, dst, neg_nodes]))
        rows_src = rows[: len(src)]
        rows_dst = rows[len(src) : len(src) + len(dst)]
        rows_neg = rows[len(src) + len(dst) :]
        src_repr = out.index_select(rows_src)
        dst_repr = out.index_select(rows_dst)
        neg_repr = out.index_select(rows_neg)
        pos_scores = self.model.decoder.score_edges(src_repr, rel, dst_repr)
        neg_scores = self.model.decoder.score_against(src_repr, rel, neg_repr)
        loss = link_prediction_loss(pos_scores, neg_scores)

        self.model.zero_grad()
        loss.backward()
        if self.gnn_optimizer is not None:
            self.gnn_optimizer.step()
        if h0.grad is not None:
            apply_fn(batch.node_ids, h0.grad)
        t2 = time.perf_counter()

        record.sample_seconds += t1 - t0
        record.compute_seconds += t2 - t1
        record.num_batches += 1
        return float(loss.data)


class LinkPredictionTrainer(ListenerHooks):
    """Single-machine, full-graph-in-memory trainer (M-GNN_Mem).

    ``checkpoint_dir``/``checkpoint_every`` (in epochs) enable the atomic
    snapshot subsystem; :meth:`resume` restores the latest snapshot so a
    continued :meth:`train` is bit-identical to an uninterrupted run.
    ``listeners`` observe progress/snapshot events (see
    :mod:`repro.train.hooks`).
    """

    KIND = job_registry.LP_MEM

    def __init__(self, dataset: LinkPredictionDataset,
                 config: Optional[LinkPredictionConfig] = None,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        self.dataset = dataset
        self.config = config or LinkPredictionConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        graph = dataset.graph
        self.model = LinkPredictionModel(cfg, graph.num_relations, rng=self.rng)
        self.embeddings = _EmbeddingTable(graph.num_nodes, cfg.embedding_dim,
                                          cfg.embedding_lr, self.rng)
        self.sampler = DenseSampler(graph, list(cfg.fanouts),
                                    directions=cfg.directions, rng=self.rng)
        self.negatives = UniformNegativeSampler(graph.num_nodes, cfg.num_negatives,
                                                rng=self.rng)
        self.step = _BatchStep(self.model, cfg, self.rng)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)
        self._start_epoch = 0

    # ------------------------------------------------------------------
    def save_snapshot(self, next_epoch: int) -> Path:
        """Atomically snapshot full training state; resume at ``next_epoch``."""
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        arrays = {"emb_table": self.embeddings.table.copy(),
                  "emb_state": self.embeddings.state.copy()}
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.step.gnn_optimizer, arrays)
        meta = {"trainer": self.KIND, "epoch": int(next_epoch),
                "rng": rng_state(self.rng),
                "stores": {"dataset": dataset_fingerprint(self.dataset)},
                "config": _config_to_dict(self.config)}
        path = self.snapshots.save(next_epoch, meta, arrays)
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   epoch=int(next_epoch))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore a snapshot (latest under the checkpoint dir by default)."""
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, config=self.config,
                      stores={"dataset": dataset_fingerprint(self.dataset)})
        self.embeddings.table[:] = arrays["emb_table"]
        self.embeddings.state[:] = arrays["emb_state"]
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.step.gnn_optimizer, arrays)
        set_rng_state(self.rng, meta["rng"])
        self._start_epoch = int(meta["epoch"])
        return meta

    # ------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainResult:
        cfg = self.config
        train_edges = self.dataset.split.train
        records: List[EpochRecord] = []
        for epoch in range(self._start_epoch, cfg.num_epochs):
            t0 = time.perf_counter()
            record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
            losses = []
            order = self.rng.permutation(len(train_edges))
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                loss = self.step.run(train_edges[idx], self.sampler, self.negatives,
                                     self.embeddings.gather, self.embeddings.apply,
                                     record)
                losses.append(loss)
            record.seconds = time.perf_counter() - t0
            record.loss = float(np.mean(losses)) if losses else 0.0
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate().mrr
            records.append(record)
            self._emit("epoch", trainer=self.KIND, epoch=epoch,
                       loss=record.loss, seconds=record.seconds,
                       metric=record.metric)
            if (self.snapshots is not None and self.checkpoint_every
                    and (epoch + 1) % self.checkpoint_every == 0):
                self.save_snapshot(epoch + 1)
            if verbose:
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s mrr={record.metric:.4f}")
        self._start_epoch = 0
        metrics = self.evaluate()
        return TrainResult(epochs=records, final_metrics=metrics,
                           model_name=f"{cfg.encoder}-mem")

    # ------------------------------------------------------------------
    def evaluate(self, edges: Optional[np.ndarray] = None,
                 seed: int = 1234) -> RankingMetrics:
        """Ranked MRR of test edges against sampled negative destinations."""
        cfg = self.config
        if edges is None:
            edges = self.dataset.split.test
        if len(edges) > cfg.eval_max_edges:
            pick = np.random.default_rng(seed).choice(len(edges), cfg.eval_max_edges,
                                                      replace=False)
            edges = edges[pick]
        return evaluate_model(self.model, self.embeddings.table, self.dataset.graph,
                              edges, cfg, seed=seed)


def evaluate_model(model: LinkPredictionModel, table: np.ndarray, graph: Graph,
                   edges: np.ndarray, config: LinkPredictionConfig,
                   seed: int = 1234, batch_size: int = 512,
                   all_candidates: bool = False,
                   triple_filter=None) -> RankingMetrics:
    """Shared MRR evaluation with full-graph sampling.

    By default each positive is ranked against ``config.eval_negatives``
    sampled candidates (the OGB large-graph protocol). ``all_candidates=True``
    ranks against *every* graph node — the FB15k-237 protocol the paper uses
    in Table 8 ("all negatives for computing MRR"); practical only for small
    graphs. ``triple_filter`` (a :class:`~repro.train.evaluation.TripleFilter`)
    switches to filtered ranking.
    """
    rng = np.random.default_rng(seed)
    sampler = DenseSampler(graph, list(config.fanouts),
                           directions=config.directions, rng=rng)
    model.eval()
    all_ranks = []
    with no_grad():
        for start in range(0, len(edges), batch_size):
            chunk = edges[start : start + batch_size]
            src = chunk[:, 0]
            dst = chunk[:, -1]
            rel = (chunk[:, 1] if chunk.shape[1] == 3
                   else np.zeros(len(chunk), dtype=np.int64))
            if all_candidates:
                negs = np.arange(graph.num_nodes, dtype=np.int64)
            else:
                negs = rng.integers(0, graph.num_nodes,
                                    size=config.eval_negatives, dtype=np.int64)
            targets = np.unique(np.concatenate([src, dst, negs]))
            if config.num_layers > 0:
                batch = sampler.sample(targets)
            else:
                batch = sampler.sample_no_neighbors(targets)
            h0 = Tensor(table[batch.node_ids])
            out = model.encode(h0, batch)
            src_repr = out.index_select(np.searchsorted(targets, src))
            dst_repr = out.index_select(np.searchsorted(targets, dst))
            neg_repr = out.index_select(np.searchsorted(targets, negs))
            pos = model.decoder.score_edges(src_repr, rel, dst_repr).data
            neg = model.decoder.score_against(src_repr, rel, neg_repr).data
            if all_candidates:
                # The true destination is among the candidates; exclude it
                # from its own comparison (it *is* the ranked positive).
                neg[np.arange(len(src)), dst] = -np.inf
            if triple_filter is not None:
                from .evaluation import filtered_ranks
                mask = triple_filter.mask(src, rel, negs)
                all_ranks.append(filtered_ranks(pos, neg, mask))
            else:
                all_ranks.append(ranks_from_scores(pos, neg))
    model.train()
    return ranking_metrics(np.concatenate(all_ranks) if all_ranks else np.empty(0))


def score_edges_offline(model: LinkPredictionModel, table: np.ndarray,
                        edges: np.ndarray, graph: Optional[Graph] = None,
                        seed: int = 1234) -> np.ndarray:
    """Offline decoder scores of ``edges`` against the full table.

    The scoring math of :func:`evaluate_model`'s positive edges, returned
    raw — the oracle the serving parity tests compare against. Decoder-only
    models need no graph; encoder models sample full-graph neighborhoods
    with a generator seeded by ``seed``.
    """
    edges = np.asarray(edges, dtype=np.int64)
    src = edges[:, 0]
    dst = edges[:, -1]
    rel = (edges[:, 1] if edges.shape[1] == 3
           else np.zeros(len(edges), dtype=np.int64))
    targets = np.unique(np.concatenate([src, dst]))
    was_training = model.training
    model.eval()
    with no_grad():
        if model.encoder is None:
            out = Tensor(table[targets])
        else:
            if graph is None:
                raise ValueError("encoder models need the graph to sample "
                                 "neighborhoods offline")
            sampler = DenseSampler(graph, list(model.config.fanouts),
                                   directions=model.config.directions,
                                   rng=np.random.default_rng(seed))
            batch = sampler.sample(targets)
            out = model.encode(Tensor(table[batch.node_ids]), batch)
        rows = np.searchsorted(targets, np.concatenate([src, dst]))
        src_repr = out.index_select(rows[: len(src)])
        dst_repr = out.index_select(rows[len(src):])
        scores = model.decoder.score_edges(src_repr, rel, dst_repr).data
    model.train(was_training)   # a serving engine's model stays in eval
    return scores


# ---------------------------------------------------------------------------
# Disk-based training
# ---------------------------------------------------------------------------

@dataclass
class DiskConfig:
    """Disk-based training setup (storage layout + replacement policy)."""

    workdir: Path
    num_partitions: int = 16
    num_logical: int = 8
    buffer_capacity: int = 4
    policy: str = "comet"               # comet | beta
    prefetch: bool = True

    def __post_init__(self) -> None:
        self.workdir = Path(self.workdir)


class DiskLinkPredictionTrainer(ListenerHooks):
    """Out-of-core trainer: partition buffer + COMET/BETA epoch plans.

    Each epoch: the policy produces (S, X); for each step the buffer swaps to
    S_i (real memmap IO), the sampler re-indexes the in-buffer subgraph, and
    mini batches are drawn from X_i's buckets with negatives restricted to
    resident nodes.

    ``checkpoint_incremental=True`` switches to dirty-partition-only
    snapshots: the first save is a full base, later saves carry only the
    table/optimizer rows of partitions touched since that base as
    ``delta/...`` row spans, with the manifest chaining to the base (see
    :func:`~repro.train.checkpoint.compose_arrays`). A save whose touched
    set covers every partition re-bases with a fresh full snapshot.
    """

    KIND = job_registry.LP_DISK

    def __init__(self, dataset: LinkPredictionDataset,
                 config: Optional[LinkPredictionConfig] = None,
                 disk: Optional[DiskConfig] = None,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 checkpoint_incremental: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        self.dataset = dataset
        self.config = config or LinkPredictionConfig()
        self.disk = disk or DiskConfig(workdir=Path("/tmp/repro-disk"))
        cfg, dsk = self.config, self.disk
        self.rng = np.random.default_rng(cfg.seed)
        graph = self._train_graph()
        self.scheme = PartitionScheme.uniform(graph.num_nodes, dsk.num_partitions)
        self.io = IOStats()
        dsk.workdir.mkdir(parents=True, exist_ok=True)
        self.node_store = NodeStore(dsk.workdir / "embeddings.bin", self.scheme,
                                    cfg.embedding_dim, learnable=True, stats=self.io)
        self.node_store.initialize(rng=self.rng)
        self.edge_store = EdgeBucketStore(dsk.workdir / "edges.bin", graph,
                                          self.scheme, stats=self.io)
        self.buffer = PartitionBuffer(self.node_store, dsk.buffer_capacity,
                                      optimizer=RowAdagrad(lr=cfg.embedding_lr))
        from ..storage.prefetch import PrefetchingBufferManager
        self.buffer_manager = PrefetchingBufferManager(self.buffer,
                                                       enabled=dsk.prefetch)
        # Partition-aware sampler: buffer swaps report their diff and only
        # the new partitions' edge buckets are read + sorted (Section 6,
        # Quantity 2) instead of re-indexing the whole in-buffer subgraph.
        self.sampler = DenseSampler.from_partitions(
            self.scheme, self.edge_store.bucket_endpoints, (),
            list(cfg.fanouts), directions=cfg.directions, rng=self.rng)
        self.buffer.add_swap_listener(
            lambda added, removed: self.sampler.update_graph(added, removed))
        self.model = LinkPredictionModel(cfg, graph.num_relations, rng=self.rng)
        self.policy = self._make_policy()
        self.negatives = UniformNegativeSampler(graph.num_nodes, cfg.num_negatives,
                                                rng=self.rng)
        self.step_runner = _BatchStep(self.model, cfg, self.rng)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)  # in epoch-plan steps
        self.checkpoint_incremental = bool(checkpoint_incremental)
        self._ckpt_base: Optional[str] = None       # full snapshot deltas chain to
        self._touched_since_base: set = set()       # partitions dirtied since it
        self._start_epoch = 0
        self._start_step = 0
        self._steps_done = 0

    # ------------------------------------------------------------------
    def _store_fingerprints(self) -> dict:
        # The plan entry pins everything the epoch-step cursor's meaning
        # depends on: a resume under a different policy or grouping would
        # skip steps of the WRONG plan (prefetch only shifts IO timing, so
        # it may be toggled).
        dsk = self.disk
        return {"node": self.node_store.fingerprint(),
                "edge": self.edge_store.fingerprint(),
                "plan": f"{dsk.policy}:p{dsk.num_partitions}"
                        f":l{dsk.num_logical}:c{dsk.buffer_capacity}"}

    def save_snapshot(self, epoch: int, next_step: int, num_steps: int) -> Path:
        """Quiesce and atomically snapshot the full out-of-core state.

        ``next_step`` is the plan step the resumed run starts at; a cursor
        past the last step normalizes to the next epoch's step 0. The buffer
        is flushed first, so the snapshot's table copy holds the in-buffer
        parameter slab's exact values (flushing writes the same bytes an
        eviction would later — training math is unaffected).
        """
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        if next_step >= num_steps:
            epoch, next_step = epoch + 1, 0
        self.buffer.flush()
        self.node_store.flush()
        # Incremental mode: once a full base exists, carry only the rows of
        # partitions touched since it (a delta covering every partition is
        # pointless — re-base with a fresh full snapshot instead).
        delta = (self.checkpoint_incremental and self._ckpt_base is not None
                 and len(self._touched_since_base) < self.scheme.num_partitions)
        if delta:
            arrays = {}
            for part in sorted(self._touched_since_base):
                data, state = self.node_store.read_partition(part)
                lo = int(self.scheme.boundaries[part])
                arrays[delta_key("node_table", lo)] = data
                if state is not None:
                    arrays[delta_key("node_state", lo)] = state
        else:
            arrays = {"node_table": self.node_store.read_all()}
            state = self.node_store.read_all_state()
            if state is not None:
                arrays["node_state"] = state
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.step_runner.gnn_optimizer, arrays)
        meta = {"trainer": self.KIND, "epoch": int(epoch), "step": int(next_step),
                "resident": self.buffer.resident,
                "rng": rng_state(self.rng),
                "policy": self.policy.state_dict(),
                "stores": self._store_fingerprints(),
                "config": _config_to_dict(self.config)}
        if delta:
            meta["incremental"] = {
                "base": self._ckpt_base,
                "parts": sorted(int(p) for p in self._touched_since_base)}
        path = self.snapshots.save(epoch * 1_000_000 + next_step, meta, arrays,
                                   base=self._ckpt_base if delta else None)
        if self.checkpoint_incremental and not delta:
            self._ckpt_base = path.name
            self._touched_since_base.clear()
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   epoch=int(epoch), step=int(next_step),
                   incremental=bool(delta))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore the latest (or given) snapshot; next train() continues.

        The workdir memmaps are rewritten wholesale from the snapshot, so
        any partition writes torn by the crash are discarded — the snapshot
        directory is the durable source of truth.
        """
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, stores=self._store_fingerprints(),
                      config=self.config)
        self.buffer_manager.reset()
        self.buffer.drop_all()
        self.node_store.restore(arrays["node_table"], arrays.get("node_state"))
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.step_runner.gnn_optimizer, arrays)
        self.policy.load_state_dict(meta.get("policy", {}))
        self.buffer.set_partitions(meta["resident"])
        self.negatives.set_allowed(self.buffer.resident_nodes())
        set_rng_state(self.rng, meta["rng"])
        self._start_epoch = int(meta["epoch"])
        self._start_step = int(meta["step"])
        self._restore_incremental_chain(path, meta)
        return meta

    def _restore_incremental_chain(self, path: Optional[Path],
                                   meta: dict) -> None:
        """Continue the delta chain after a resume when possible.

        Resuming from our own checkpoint root keeps chaining: a resumed
        full snapshot becomes the base; a resumed delta inherits its base
        and touched set (future deltas must keep carrying those rows). A
        foreign snapshot path can't be chained to — the next save is full.
        """
        self._ckpt_base = None
        self._touched_since_base = set()
        if not self.checkpoint_incremental or self.snapshots is None:
            return
        try:
            snap = resolve_snapshot_dir(path if path is not None
                                        else self.snapshots.root)
        except SnapshotError:
            return
        if snap.parent != self.snapshots.root:
            return
        inc = meta.get("incremental")
        base = inc["base"] if inc else snap.name
        if (self.snapshots.root / base / "manifest.json").is_file():
            self._ckpt_base = base
            if inc:
                self._touched_since_base = set(int(p) for p in inc["parts"])

    def _train_graph(self) -> Graph:
        """Training edges only, as a graph (disk stores what we train on)."""
        from ..graph.datasets import training_graph
        return training_graph(self.dataset)

    def _make_policy(self) -> PartitionPolicy:
        dsk = self.disk
        if dsk.policy == "comet":
            from ..policies.comet import CometPolicy
            return CometPolicy(dsk.num_partitions, dsk.num_logical, dsk.buffer_capacity)
        if dsk.policy == "beta":
            from ..policies.beta import BetaPolicy
            return BetaPolicy(dsk.num_partitions, dsk.buffer_capacity)
        raise ValueError(f"unknown policy {dsk.policy!r} (expected comet/beta)")

    # ------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainResult:
        cfg = self.config
        records: List[EpochRecord] = []
        for epoch in range(self._start_epoch, cfg.num_epochs):
            start_step = self._start_step if epoch == self._start_epoch else 0
            record = self._train_epoch(epoch, start_step=start_step)
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate().mrr
            records.append(record)
            self._emit("epoch", trainer=self.KIND, epoch=epoch,
                       loss=record.loss, seconds=record.seconds,
                       metric=record.metric, io_bytes=record.io_bytes)
            if verbose:
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s io={record.io_bytes >> 20}MiB "
                      f"loads={record.partition_loads} mrr={record.metric:.4f}")
        self._start_epoch = 0
        self._start_step = 0
        metrics = self.evaluate()
        self.buffer.flush()
        return TrainResult(epochs=records, final_metrics=metrics,
                           model_name=f"{cfg.encoder}-disk-{self.disk.policy}")

    def _train_epoch(self, epoch: int, start_step: int = 0) -> EpochRecord:
        cfg = self.config
        t_epoch = time.perf_counter()
        record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
        io_before = self.io.snapshot()
        plan = self.policy.plan_epoch(epoch, rng=np.random.default_rng((epoch + 1) * 7919))
        losses: List[float] = []

        for step_idx, step in enumerate(plan.steps):
            if step_idx < start_step:
                # Already trained before the snapshot this run resumed from;
                # the restored rng state and buffer residency account for it.
                continue
            t_io = time.perf_counter()
            next_parts = (plan.steps[step_idx + 1].partitions
                          if step_idx + 1 < len(plan.steps) else None)
            # The swap listener updates self.sampler's index incrementally.
            self.buffer_manager.load_step(step.partitions, next_parts)
            self.negatives.set_allowed(self.buffer.resident_nodes())
            record.io_seconds += time.perf_counter() - t_io

            edges = self.edge_store.read_buckets(step.buckets)
            if len(edges) > 0:
                order = self.rng.permutation(len(edges))
                for start in range(0, len(order), cfg.batch_size):
                    idx = order[start : start + cfg.batch_size]
                    loss = self.step_runner.run(edges[idx], self.sampler,
                                                self.negatives,
                                                self.buffer.gather,
                                                self.buffer.apply_gradients,
                                                record)
                    losses.append(loss)

            if self.checkpoint_incremental:
                # Updates land only inside the step's batches, and evictions
                # only at the next swap — so the buffer's dirty set here is
                # exactly the partitions this step's gradients touched.
                self._touched_since_base.update(self.buffer.dirty_partitions())
            self._steps_done += 1
            if (self.snapshots is not None and self.checkpoint_every
                    and self._steps_done % self.checkpoint_every == 0):
                self.save_snapshot(epoch, step_idx + 1, len(plan.steps))

        self.buffer_manager.finish()
        io_epoch = self.io.diff(io_before)
        record.io_bytes = io_epoch.total_bytes
        record.partition_loads = io_epoch.partition_loads
        record.seconds = time.perf_counter() - t_epoch
        record.loss = float(np.mean(losses)) if losses else 0.0
        return record

    # ------------------------------------------------------------------
    def evaluate(self, edges: Optional[np.ndarray] = None,
                 seed: int = 1234) -> RankingMetrics:
        """In-memory evaluation over the full graph using the stored table."""
        cfg = self.config
        if edges is None:
            edges = self.dataset.split.test
        if len(edges) > cfg.eval_max_edges:
            pick = np.random.default_rng(seed).choice(len(edges), cfg.eval_max_edges,
                                                      replace=False)
            edges = edges[pick]
        self.buffer.flush()
        table = self.node_store.read_all()
        return evaluate_model(self.model, table, self.dataset.graph, edges, cfg,
                              seed=seed)
