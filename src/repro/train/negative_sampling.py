"""Negative sampling for link prediction training and evaluation.

MariusGNN (like Marius and DGL-KE) scores each positive edge against a
*shared pool* of negative nodes drawn per batch, so negative scoring is one
dense matmul (Section 7.1 configures e.g. 500 negatives for the hyperlink
graph). For disk-based training the pool is drawn from the nodes currently
resident in the partition buffer — negatives, like neighbors, must live in
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class NegativeSampleBatch:
    """A pool of negative node IDs shared across the batch's positives."""

    nodes: np.ndarray


class UniformNegativeSampler:
    """Uniform corruption sampler over an allowed node ID set.

    Parameters
    ----------
    num_nodes:
        Global node count (pool drawn from ``[0, num_nodes)`` if no subset).
    num_negatives:
        Pool size per batch.
    allowed:
        Optional subset of node IDs to draw from (the in-buffer nodes for
        disk-based training).
    """

    def __init__(self, num_nodes: int, num_negatives: int,
                 allowed: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_negatives <= 0:
            raise ValueError("num_negatives must be positive")
        self.num_nodes = num_nodes
        self.num_negatives = num_negatives
        self._rng = rng or np.random.default_rng()
        self.allowed = None if allowed is None else np.asarray(allowed, dtype=np.int64)
        if self.allowed is not None and len(self.allowed) == 0:
            raise ValueError("allowed node set is empty")

    def set_allowed(self, allowed: Optional[np.ndarray]) -> None:
        """Restrict the pool (called by the disk trainer after each swap)."""
        self.allowed = None if allowed is None else np.asarray(allowed, dtype=np.int64)

    def sample(self, size: Optional[int] = None) -> NegativeSampleBatch:
        size = size or self.num_negatives
        if self.allowed is None:
            nodes = self._rng.integers(0, self.num_nodes, size=size, dtype=np.int64)
        else:
            idx = self._rng.integers(0, len(self.allowed), size=size)
            nodes = self.allowed[idx]
        return NegativeSampleBatch(nodes=nodes)


class DegreeWeightedNegativeSampler:
    """Degree-proportional corruption sampler (DGL-KE's default).

    Sampling negatives proportionally to (a power of) node degree produces
    harder negatives on heavy-tailed graphs — hub nodes appear as candidates
    roughly as often as they appear in true edges. ``smoothing`` is the
    exponent alpha in ``p(v) ~ degree(v)^alpha`` (0.75 following word2vec).
    """

    def __init__(self, degrees: np.ndarray, num_negatives: int,
                 smoothing: float = 0.75,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_negatives <= 0:
            raise ValueError("num_negatives must be positive")
        degrees = np.asarray(degrees, dtype=np.float64)
        if (degrees < 0).any():
            raise ValueError("degrees must be nonnegative")
        weights = np.power(np.maximum(degrees, 1e-12), smoothing)
        total = weights.sum()
        if total <= 0:
            raise ValueError("all degrees are zero")
        self.num_negatives = num_negatives
        self._rng = rng or np.random.default_rng()
        # Inverse-CDF sampling via cumulative weights (vectorized draws).
        self._cdf = np.cumsum(weights / total)

    def sample(self, size: Optional[int] = None) -> NegativeSampleBatch:
        size = size or self.num_negatives
        draws = self._rng.random(size)
        nodes = np.searchsorted(self._cdf, draws).astype(np.int64)
        return NegativeSampleBatch(nodes=nodes)
