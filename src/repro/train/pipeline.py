"""Pipelined execution model for the mini-batch lifecycle (paper Figure 2).

MariusGNN overlaps the pipeline stages — CPU sampling, CPU->GPU transfer,
GPU compute, gradient write-back — and, for disk-based training, prefetches
the next partition set while training on the current one. Python's GIL makes
real thread-level overlap meaningless here, so the trainers run stages
synchronously and record per-stage times; :func:`pipelined_epoch_seconds`
converts those measurements into the steady-state pipelined time: the
bottleneck stage dominates and the other stages hide behind it.

The same model expresses the paper's two throughput observations:

* a system whose sampling stage dominates sees no benefit from a faster
  device stage (Table 5: DGL/PyG equal times for GS and GAT), and
* balanced per-step workloads (COMET) keep IO hidden behind compute, while
  front-loaded ones (BETA) expose IO at the tail (Section 7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class StageTimes:
    """Per-epoch totals for each pipeline stage, in seconds."""

    sample: float = 0.0
    transfer: float = 0.0
    compute: float = 0.0
    update: float = 0.0

    @property
    def serial(self) -> float:
        return self.sample + self.transfer + self.compute + self.update

    @property
    def bottleneck(self) -> float:
        return max(self.sample, self.transfer, self.compute, self.update)


def pipelined_epoch_seconds(stages: StageTimes, num_batches: int) -> float:
    """Steady-state pipelined epoch time.

    The bottleneck stage runs continuously; every other stage overlaps with
    it. Pipeline fill/drain adds roughly one batch of the non-bottleneck
    stages (negligible for large epochs but kept for small ones).
    """
    if num_batches <= 0:
        return 0.0
    fill = (stages.serial - stages.bottleneck) / num_batches
    return stages.bottleneck + fill


def pipelined_disk_epoch_seconds(io_per_step: Sequence[float],
                                 train_per_step: Sequence[float],
                                 prefetch: bool = True) -> float:
    """Epoch time when partition IO can be prefetched behind training.

    With prefetching, loading S_{i+1} overlaps training on X_i, so each step
    costs ``max(io_{i+1}, train_i)``; the first load is always exposed.
    Without prefetching the costs add up. Unbalanced schedules (some X_i
    nearly empty, as under BETA) leave io exposed exactly as Section 7.5
    describes.
    """
    io = list(io_per_step)
    train = list(train_per_step)
    if len(io) != len(train):
        raise ValueError("io and train sequences must align (one entry per step)")
    if not io:
        return 0.0
    if not prefetch:
        return sum(io) + sum(train)
    total = io[0]
    for i in range(len(train)):
        upcoming_io = io[i + 1] if i + 1 < len(io) else 0.0
        total += max(train[i], upcoming_io)
    return total


def overlap_efficiency(io_per_step: Sequence[float],
                       train_per_step: Sequence[float]) -> float:
    """Fraction of IO hidden by prefetching (1.0 = fully hidden)."""
    serial = sum(io_per_step) + sum(train_per_step)
    piped = pipelined_disk_epoch_seconds(io_per_step, train_per_step, prefetch=True)
    hidden = serial - piped
    total_io = sum(io_per_step)
    if total_io <= 0:
        return 1.0
    return max(0.0, min(1.0, hidden / total_io))
