"""Training harness: trainers, negative sampling, evaluation, pipelining."""

from .checkpoint import (InferenceRestore, SnapshotError, SnapshotManager,
                         load_checkpoint, nc_dataset_fingerprint,
                         open_snapshot, restore_for_inference,
                         save_checkpoint)
from .evaluation import (EpochRecord, RankingMetrics, TripleFilter,
                         filtered_ranks, multiclass_accuracy, ranking_metrics,
                         ranks_from_scores)
from .link_prediction import (DiskConfig, DiskLinkPredictionTrainer,
                              LinkPredictionConfig, LinkPredictionModel,
                              LinkPredictionTrainer, TrainResult,
                              evaluate_model, score_edges_offline)
from .negative_sampling import (DegreeWeightedNegativeSampler,
                                NegativeSampleBatch, UniformNegativeSampler)
from .node_classification import (DiskNodeClassificationConfig,
                                  DiskNodeClassificationTrainer,
                                  NodeClassificationConfig,
                                  NodeClassificationResult,
                                  NodeClassificationTrainer, NodeClassifier,
                                  evaluate_classifier,
                                  relabel_for_training_cache)
from .pipeline import (StageTimes, overlap_efficiency,
                       pipelined_disk_epoch_seconds, pipelined_epoch_seconds)
from .pipelined_trainer import PipelinedLinkPredictionTrainer, PipelineStats

__all__ = [
    "LinkPredictionConfig", "LinkPredictionTrainer", "LinkPredictionModel",
    "DiskConfig", "DiskLinkPredictionTrainer", "TrainResult", "evaluate_model",
    "NodeClassificationConfig", "NodeClassificationTrainer", "NodeClassifier",
    "DiskNodeClassificationConfig", "DiskNodeClassificationTrainer",
    "NodeClassificationResult", "evaluate_classifier", "relabel_for_training_cache",
    "UniformNegativeSampler", "DegreeWeightedNegativeSampler", "NegativeSampleBatch",
    "RankingMetrics", "EpochRecord", "ranking_metrics", "ranks_from_scores",
    "multiclass_accuracy",
    "StageTimes", "pipelined_epoch_seconds", "pipelined_disk_epoch_seconds",
    "overlap_efficiency",
    "PipelinedLinkPredictionTrainer", "PipelineStats",
    "TripleFilter", "filtered_ranks", "save_checkpoint", "load_checkpoint",
    "SnapshotManager", "SnapshotError", "open_snapshot",
    "InferenceRestore", "restore_for_inference", "nc_dataset_fingerprint",
    "score_edges_offline",
]
