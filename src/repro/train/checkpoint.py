"""Checkpointing: persist and restore trained models and embeddings.

A checkpoint directory holds:

* ``model.npz``        — GNN/decoder parameters (the module state dict),
* ``embeddings.npy``   — learnable base representations (if any),
* ``optimizer.npy``    — per-row Adagrad state for the embeddings,
* ``config.json``      — the :class:`LinkPredictionConfig` /
  :class:`NodeClassificationConfig` used, so evaluation reproduces the exact
  sampling setup.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..nn.module import Module


def _config_to_dict(config: Any) -> Dict[str, Any]:
    out = dataclasses.asdict(config)
    for key, value in out.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, Path):
            out[key] = str(value)
    return out


def save_checkpoint(path: Path, model: Module, config: Any,
                    embeddings: Optional[np.ndarray] = None,
                    optimizer_state: Optional[np.ndarray] = None) -> Path:
    """Write a checkpoint directory; returns its path."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    np.savez(path / "model.npz", **state)
    if embeddings is not None:
        np.save(path / "embeddings.npy", embeddings)
    if optimizer_state is not None:
        np.save(path / "optimizer.npy", optimizer_state)
    (path / "config.json").write_text(
        json.dumps({"class": type(config).__name__,
                    "fields": _config_to_dict(config)}, indent=2))
    return path


def load_checkpoint(path: Path, model: Module
                    ) -> Tuple[Dict[str, Any], Optional[np.ndarray], Optional[np.ndarray]]:
    """Restore ``model`` in place; returns (config_fields, embeddings, opt_state).

    The caller rebuilds its config dataclass from the returned fields (tuples
    were serialized as lists — convert back as needed).
    """
    path = Path(path)
    archive = np.load(path / "model.npz")
    model.load_state_dict({name: archive[name] for name in archive.files})
    embeddings = None
    if (path / "embeddings.npy").exists():
        embeddings = np.load(path / "embeddings.npy")
    opt_state = None
    if (path / "optimizer.npy").exists():
        opt_state = np.load(path / "optimizer.npy")
    meta = json.loads((path / "config.json").read_text())
    return meta["fields"], embeddings, opt_state
