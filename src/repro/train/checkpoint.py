"""Checkpointing: atomic training snapshots plus legacy model export.

Two layers live here:

* :class:`SnapshotManager` — the crash-safe snapshot subsystem. A snapshot
  is a directory ``snap-<step_id>`` holding ``arrays.npz`` (every numpy
  array of the training state: node table, optimizer slabs, model
  parameters, dense-optimizer moments) and ``manifest.json`` (format
  version, CRC of the array payload, and the JSON-able metadata: epoch/step
  cursors, buffer residency, per-stream RNG states, store fingerprints,
  policy state). Writes follow the classic atomicity protocol:
  **write-temp + fsync + rename** — the temp directory only becomes visible
  under its final name via one atomic ``os.rename``, so a reader never
  observes a partial snapshot and a crash mid-save leaves only a ``tmp-*``
  directory that the next save or scan sweeps away.

* :func:`save_checkpoint` / :func:`load_checkpoint` — the original
  best-effort model/embedding export, kept for evaluation workflows.

The resume guarantee (enforced by ``tests/test_checkpoint_recovery.py``):
restoring the latest snapshot and continuing produces **bit-identical**
parameters to the uninterrupted run, because a snapshot captures every
source of state the training math reads — parameters, optimizer moments,
the embedding table *and* its Adagrad state, buffer residency, and the
exact RNG stream positions.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..obs.trace import traced
from ..storage.atomic import fsync_dir
from ..storage.io_stats import crc_file as _crc_file

SNAPSHOT_VERSION = 1
_SNAP_PREFIX = "snap-"
_TMP_PREFIX = "tmp-"

FaultHook = Callable[[str], None]


# ---------------------------------------------------------------------------
# RNG stream state
# ---------------------------------------------------------------------------

def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-able state of a numpy Generator (PCG64 ints serialize fine)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a Generator *in place* (every holder of the object sees it)."""
    rng.bit_generator.state = state


# ---------------------------------------------------------------------------
# Array-dict flattening for model / optimizer state
# ---------------------------------------------------------------------------

def flatten_arrays(prefix: str, state: Dict[str, np.ndarray],
                   into: Dict[str, np.ndarray]) -> None:
    """Merge ``state`` under ``prefix/`` keys into the snapshot array dict."""
    for name, value in state.items():
        into[f"{prefix}/{name}"] = np.asarray(value)


def unflatten_arrays(prefix: str, arrays: Dict[str, np.ndarray]
                     ) -> Dict[str, np.ndarray]:
    head = f"{prefix}/"
    return {key[len(head):]: arrays[key] for key in arrays if key.startswith(head)}


# ---------------------------------------------------------------------------
# Atomic snapshot store
# ---------------------------------------------------------------------------

class SnapshotError(RuntimeError):
    """A snapshot is missing, truncated, or fails validation."""


class SnapshotManager:
    """Versioned, atomic on-disk snapshots under one root directory.

    Parameters
    ----------
    root:
        Directory holding the ``snap-*`` snapshot directories.
    keep:
        Retain at most this many complete snapshots (oldest pruned first).
    fault_hook:
        Test-only injection point: called with a crash-point name at the
        I/O boundaries of :meth:`save` (``snapshot-begin``,
        ``snapshot-pre-rename``, ``snapshot-post-rename``). Production code
        leaves it ``None``.
    compress:
        Write ``arrays.npz`` with zlib compression (``savez_compressed``).
        Purely a storage-format choice: the CRC covers the compressed
        payload, :meth:`load` reads both formats transparently, and a
        manager may load snapshots written with either setting — so runs
        can toggle compression between saves without invalidating history.
        Embedding tables compress modestly; Adagrad state and sparse
        policy arrays compress well.
    """

    def __init__(self, root: os.PathLike, keep: int = 2,
                 fault_hook: Optional[FaultHook] = None,
                 compress: bool = False) -> None:
        self.root = Path(root)
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.keep = keep
        self.fault_hook = fault_hook
        self.compress = bool(compress)

    # ------------------------------------------------------------------
    def _fire(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _sweep_tmp(self) -> None:
        if not self.root.is_dir():
            return
        for leftover in self.root.glob(f"{_TMP_PREFIX}*"):
            shutil.rmtree(leftover, ignore_errors=True)

    # ------------------------------------------------------------------
    @traced("snapshot.save")
    def save(self, step_id: int, meta: Dict[str, Any],
             arrays: Dict[str, np.ndarray],
             base: Optional[str] = None) -> Path:
        """Write a snapshot atomically; returns its directory.

        ``meta`` must be JSON-serializable; ``arrays`` maps names to numpy
        arrays. ``step_id`` seeds the directory ordinal (bumped past any
        existing snapshots so this save sorts latest). The snapshot becomes
        visible only after the final rename.

        ``base`` names a sibling snapshot directory this one is an
        *incremental delta* of: array keys of the form
        ``delta/<name>/<row>`` overlay the base's ``<name>`` array at that
        row offset on load (see :func:`compose_arrays`), every other key
        replaces the base's outright. The base must exist under the same
        root; pruning keeps chained bases alive as long as any retained
        snapshot references them.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if base is not None and not (self.root / base / "manifest.json").is_file():
            raise SnapshotError(
                f"incremental snapshot references base {base!r} which does "
                f"not exist under {self.root}")
        self._sweep_tmp()
        # The directory ordinal is the *save* sequence, not the training
        # cursor (the cursor lives in the manifest): normally they coincide,
        # but a run resumed from an older snapshot may re-reach (or fall
        # behind) ids a crashed run left on disk — its fresher save must
        # sort last for latest() without ever touching the old directories,
        # so there is no demote/replace window for a crash to land in.
        ordinal = int(step_id)
        existing = self.list()
        if existing:
            ordinal = max(ordinal, self._step_of(existing[-1]) + 1)
        final = self.root / f"{_SNAP_PREFIX}{ordinal:012d}"
        while final.exists():   # debris of an incomplete snapshot
            ordinal += 1
            final = self.root / f"{_SNAP_PREFIX}{ordinal:012d}"
        tmp = self.root / f"{_TMP_PREFIX}{ordinal:012d}"
        tmp.mkdir()
        self._fire("snapshot-begin")

        writer = np.savez_compressed if self.compress else np.savez
        with open(tmp / "arrays.npz", "wb") as fh:
            writer(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        crc = _crc_file(tmp / "arrays.npz")

        manifest = {"version": SNAPSHOT_VERSION, "step_id": int(step_id),
                    "arrays_crc": crc, "meta": meta}
        if base is not None:
            manifest["base"] = str(base)
        with open(tmp / "manifest.json", "w") as fh:
            json.dump(manifest, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        fsync_dir(tmp)

        self._fire("snapshot-pre-rename")
        os.rename(tmp, final)
        fsync_dir(self.root)
        self._fire("snapshot-post-rename")
        self._prune()
        return final

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` snapshots — except snapshots a
        retained incremental snapshot (transitively) chains to as its base,
        which must stay loadable for the chain to compose."""
        snaps = self.list()
        if len(snaps) <= self.keep:
            return
        by_name = {p.name: p for p in snaps}
        keep_names = {p.name for p in snaps[-self.keep:]}
        frontier = list(keep_names)
        while frontier:
            base = self._base_of(by_name[frontier.pop()])
            if base and base in by_name and base not in keep_names:
                keep_names.add(base)
                frontier.append(base)
        for old in snaps:
            if old.name not in keep_names:
                shutil.rmtree(old, ignore_errors=True)

    @staticmethod
    def _base_of(path: Path) -> Optional[str]:
        try:
            return json.loads((path / "manifest.json").read_text()).get("base")
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    @staticmethod
    def _step_of(path: Path) -> int:
        try:
            return int(path.name[len(_SNAP_PREFIX):])
        except ValueError:
            return -1

    def list(self) -> List[Path]:
        """Complete snapshots under the root, oldest first.

        Ordered by the numeric step id, not the directory name — a step id
        wider than the 12-digit zero padding must still sort after the
        padded ones (lexicographic order would call it oldest and prune it).
        """
        if not self.root.is_dir():
            return []
        out = []
        for cand in self.root.glob(f"{_SNAP_PREFIX}*"):
            if (self._step_of(cand) >= 0 and (cand / "manifest.json").is_file()
                    and (cand / "arrays.npz").is_file()):
                out.append(cand)
        return sorted(out, key=self._step_of)

    def latest(self) -> Optional[Path]:
        snaps = self.list()
        return snaps[-1] if snaps else None

    @traced("snapshot.load")
    def load(self, path: Optional[os.PathLike] = None, compose: bool = True
             ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Read and validate a snapshot; returns ``(meta, arrays)``.

        With ``path=None`` the latest complete snapshot is used. Validation
        covers the format version and the CRC of the array payload, so a
        torn copy is rejected rather than silently restored. An incremental
        snapshot (manifest ``base``) is composed over its CRC-verified base
        chain transparently, so callers always see full arrays; pass
        ``compose=False`` for the raw delta payload.
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise SnapshotError(f"no snapshots under {self.root}")
        path = Path(path)
        try:
            manifest = json.loads((path / "manifest.json").read_text())
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"unreadable manifest in {path}") from exc
        if manifest.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot {path.name} has format version "
                f"{manifest.get('version')}, expected {SNAPSHOT_VERSION}")
        if _crc_file(path / "arrays.npz") != manifest["arrays_crc"]:
            raise SnapshotError(f"snapshot {path.name} failed its CRC check")
        with np.load(path / "arrays.npz") as archive:
            arrays = {name: archive[name] for name in archive.files}
        base = manifest.get("base")
        if compose and base:
            if not (self.root / base / "manifest.json").is_file():
                raise SnapshotError(
                    f"snapshot {path.name} chains to base {base!r} which is "
                    f"missing under {self.root}")
            _, base_arrays = self.load(self.root / base)
            arrays = compose_arrays(base_arrays, arrays)
        return manifest["meta"], arrays


DELTA_PREFIX = "delta/"


def delta_key(name: str, row: int) -> str:
    """Array key for an incremental row-span overlay of ``name`` at ``row``."""
    return f"{DELTA_PREFIX}{name}/{int(row)}"


def compose_arrays(base: Dict[str, np.ndarray],
                   delta: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Overlay an incremental snapshot's arrays onto its base's.

    Keys of the form ``delta/<name>/<row>`` write their rows into a copy
    of the base's ``<name>`` array at offset ``row`` (the partition spans
    the trainer recorded); every other key replaces the base entry. The
    result is indistinguishable from a full snapshot's array dict.
    """
    out = dict(base)
    copied = set()
    for key, arr in delta.items():
        if not key.startswith(DELTA_PREFIX):
            out[key] = arr
            continue
        _, name, row = key.split("/")
        lo = int(row)
        if name not in out:
            raise SnapshotError(
                f"incremental overlay {key!r} has no base array {name!r}")
        if name not in copied:
            out[name] = out[name].copy()
            copied.add(name)
        if lo + len(arr) > len(out[name]):
            raise SnapshotError(
                f"incremental overlay {key!r} spans past the base array "
                f"({lo}+{len(arr)} > {len(out[name])})")
        out[name][lo : lo + len(arr)] = arr
    return out


def resolve_snapshot_dir(path: os.PathLike) -> Path:
    """Normalize a snapshot argument that may name either one ``snap-*``
    directory or a checkpoint root: the root resolves to its latest
    complete snapshot. The single place the dir-or-root rule lives —
    serving, stream resume, and :func:`open_snapshot` all route here."""
    path = Path(path)
    if (path / "manifest.json").is_file():
        return path
    latest = SnapshotManager(path).latest()
    if latest is None:
        raise SnapshotError(f"no snapshots under {path}")
    return latest


def open_snapshot(path: os.PathLike
                  ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Load a snapshot by path: either one ``snap-*`` directory or a
    checkpoint root (in which case the latest complete snapshot is used)."""
    path = resolve_snapshot_dir(path)
    return SnapshotManager(path.parent).load(path)


@dataclasses.dataclass
class InferenceRestore:
    """A snapshot opened for read-only inference (no trainer round-trip).

    Serving needs the model parameters, the node table (when the snapshot
    carries one), and enough metadata to validate the store layout — and
    nothing else. Optimizer moments, policy state, RNG stream positions and
    training cursors stay untouched in the snapshot: they are replay state,
    meaningful only to a resuming trainer, and an inference restore must
    not require them to round-trip through trainer construction.
    """

    meta: Dict[str, Any]
    model_state: Dict[str, np.ndarray]
    node_table: Optional[np.ndarray]

    @property
    def trainer_kind(self) -> str:
        return str(self.meta.get("trainer", ""))

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.meta.get("config", {}))

    def store_fingerprint(self, name: str) -> Optional[str]:
        return self.meta.get("stores", {}).get(name)


def restore_for_inference(path: os.PathLike) -> InferenceRestore:
    """Open a snapshot read-only for serving: model params + node table.

    Accepts either one ``snap-*`` directory or a checkpoint root (latest
    snapshot wins). Works for every trainer kind — the LP trainers store
    the table as ``node_table``/``emb_table``; NC snapshots carry no table
    (features are immutable) and return ``node_table=None``.
    """
    meta, arrays = open_snapshot(path)
    table = arrays.get("node_table", arrays.get("emb_table"))
    return InferenceRestore(meta=meta,
                            model_state=unflatten_arrays("model", arrays),
                            node_table=table)


def resolve_snapshot(path: Optional[os.PathLike],
                     manager: Optional[SnapshotManager]
                     ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """The trainers' shared resume dispatch: an explicit path wins,
    otherwise the trainer's own manager provides its latest snapshot."""
    if path is not None:
        return open_snapshot(path)
    if manager is not None:
        return manager.load()
    raise RuntimeError("no checkpoint_dir and no explicit snapshot path")


# ---------------------------------------------------------------------------
# Shared trainer capture/restore helpers
# ---------------------------------------------------------------------------

def dataset_fingerprint(dataset) -> str:
    """Identity of a link prediction dataset's training data.

    The disk trainers pin their data via store fingerprints; the in-memory
    trainers record this instead, so a resume against regenerated splits or
    a different dataset of compatible shape is rejected rather than
    silently continuing with unrelated embeddings and cursors.
    """
    edges = np.ascontiguousarray(dataset.split.train)
    crc = zlib.crc32(edges.tobytes())
    return (f"dataset:{dataset.graph.num_nodes}:{len(edges)}:"
            f"{edges.shape[1] if edges.ndim > 1 else 1}:{crc:08x}")


def nc_dataset_fingerprint(dataset) -> str:
    """Identity of a node classification dataset (features + splits).

    The in-memory NC trainer has no disk stores to fingerprint; this pins
    the graph shape, the feature/label contents, and the train split so a
    resume against regenerated data is rejected instead of silently
    continuing with mismatched cursors.
    """
    graph = dataset.graph
    crc = zlib.crc32(np.ascontiguousarray(dataset.train_nodes).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(graph.node_labels).tobytes(), crc)
    crc = zlib.crc32(np.ascontiguousarray(graph.node_features).tobytes(), crc)
    return (f"nc-dataset:{graph.num_nodes}:{graph.num_edges}:"
            f"{graph.node_features.shape[1]}:{crc:08x}")


def pack_model(model: Module, arrays: Dict[str, np.ndarray]) -> None:
    flatten_arrays("model", model.state_dict(), arrays)


def unpack_model(model: Module, arrays: Dict[str, np.ndarray]) -> None:
    model.load_state_dict(unflatten_arrays("model", arrays))


def pack_optimizer(prefix: str, optimizer,
                   arrays: Dict[str, np.ndarray]) -> None:
    if optimizer is not None:
        flatten_arrays(prefix, optimizer.state_dict(), arrays)


def unpack_optimizer(prefix: str, optimizer,
                     arrays: Dict[str, np.ndarray]) -> None:
    if optimizer is not None:
        optimizer.load_state_dict(unflatten_arrays(prefix, arrays))


# Config fields a resume may legitimately change: they steer how *long* or
# how training is *reported*, never the replayed math. Everything else
# (batch size, fanouts, lrs, seed, ...) shifts batch boundaries or rng
# consumption and would silently break the bit-identical-resume guarantee.
_RESUMABLE_CONFIG_DIFFS = frozenset(
    {"num_epochs", "eval_every", "eval_negatives", "eval_max_edges"})


def validate_meta(meta: Dict[str, Any], trainer_kind: str,
                  stores: Optional[Dict[str, str]] = None,
                  config: Optional[Any] = None) -> None:
    """Reject snapshots from a different trainer, storage layout, or
    training configuration (cursors and rng states are only meaningful
    under the exact config that produced them)."""
    if meta.get("trainer") != trainer_kind:
        raise SnapshotError(
            f"snapshot was written by trainer {meta.get('trainer')!r}, "
            f"cannot resume a {trainer_kind!r} trainer from it")
    if stores:
        recorded = meta.get("stores", {})
        for name, fingerprint in stores.items():
            if recorded.get(name) != fingerprint:
                raise SnapshotError(
                    f"{name} layout changed since the snapshot "
                    f"({recorded.get(name)} vs {fingerprint}); refusing to "
                    f"resume against different data or partitioning")
    if config is not None and "config" in meta:
        current = _config_to_dict(config)
        mismatched = sorted(
            key for key in set(current) | set(meta["config"])
            if key not in _RESUMABLE_CONFIG_DIFFS
            and current.get(key) != meta["config"].get(key))
        if mismatched:
            raise SnapshotError(
                "snapshot config differs on fields that change the replayed "
                f"training math: {mismatched}; resume with the original "
                "settings (only "
                f"{sorted(_RESUMABLE_CONFIG_DIFFS)} may change)")


# ---------------------------------------------------------------------------
# Legacy model export (evaluation workflows)
# ---------------------------------------------------------------------------

def _config_to_dict(config: Any) -> Dict[str, Any]:
    out = dataclasses.asdict(config)
    for key, value in out.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, Path):
            out[key] = str(value)
    return out


def save_checkpoint(path: Path, model: Module, config: Any,
                    embeddings: Optional[np.ndarray] = None,
                    optimizer_state: Optional[np.ndarray] = None) -> Path:
    """Write a checkpoint directory; returns its path."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    np.savez(path / "model.npz", **state)
    if embeddings is not None:
        np.save(path / "embeddings.npy", embeddings)
    if optimizer_state is not None:
        np.save(path / "optimizer.npy", optimizer_state)
    (path / "config.json").write_text(
        json.dumps({"class": type(config).__name__,
                    "fields": _config_to_dict(config)}, indent=2))
    return path


def load_checkpoint(path: Path, model: Module
                    ) -> Tuple[Dict[str, Any], Optional[np.ndarray], Optional[np.ndarray]]:
    """Restore ``model`` in place; returns (config_fields, embeddings, opt_state).

    The caller rebuilds its config dataclass from the returned fields (tuples
    were serialized as lists — convert back as needed).
    """
    path = Path(path)
    archive = np.load(path / "model.npz")
    model.load_state_dict({name: archive[name] for name in archive.files})
    embeddings = None
    if (path / "embeddings.npy").exists():
        embeddings = np.load(path / "embeddings.npy")
    opt_state = None
    if (path / "optimizer.npy").exists():
        opt_state = np.load(path / "optimizer.npy")
    meta = json.loads((path / "config.json").read_text())
    return meta["fields"], embeddings, opt_state
