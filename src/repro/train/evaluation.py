"""Evaluation metrics: MRR / Hits@K for link prediction, accuracy for NC.

Link prediction follows the large-graph OGB protocol the paper uses: each
test edge's true destination is ranked against a pool of sampled negative
candidates (the paper reports MRR with DistMult scoring, Section 7.1). Ranks
use the *mean-rank* tie convention so constant scores give chance-level MRR
rather than an optimistic 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass
class RankingMetrics:
    """MRR and hits@k over a set of ranked positives."""

    mrr: float
    hits_at_1: float
    hits_at_10: float
    num_examples: int

    def as_dict(self) -> Dict[str, float]:
        return {"mrr": self.mrr, "hits@1": self.hits_at_1,
                "hits@10": self.hits_at_10, "n": float(self.num_examples)}


def ranks_from_scores(pos_scores: np.ndarray, neg_scores: np.ndarray) -> np.ndarray:
    """Rank of each positive among its negatives (1 = best).

    ``pos_scores``: (n,); ``neg_scores``: (n, num_candidates). Ties are
    averaged: rank = 1 + #better + #ties / 2.
    """
    pos = pos_scores[:, None]
    better = (neg_scores > pos).sum(axis=1)
    ties = (neg_scores == pos).sum(axis=1)
    return 1.0 + better + 0.5 * ties


def ranking_metrics(ranks: np.ndarray) -> RankingMetrics:
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return RankingMetrics(0.0, 0.0, 0.0, 0)
    return RankingMetrics(
        mrr=float((1.0 / ranks).mean()),
        hits_at_1=float((ranks <= 1.0).mean()),
        hits_at_10=float((ranks <= 10.0).mean()),
        num_examples=len(ranks),
    )


class TripleFilter:
    """Known-triple lookup for *filtered* link prediction ranking.

    The standard FB15k-237 protocol excludes candidate destinations that form
    a true triple (in train/valid/test) other than the one being ranked, so a
    model is not penalized for scoring real edges highly.
    """

    def __init__(self, *edge_arrays: np.ndarray) -> None:
        self._known = set()
        for edges in edge_arrays:
            if edges is None or len(edges) == 0:
                continue
            if edges.shape[1] == 3:
                for s, r, d in edges:
                    self._known.add((int(s), int(r), int(d)))
            else:
                for s, d in edges:
                    self._known.add((int(s), 0, int(d)))

    def __len__(self) -> int:
        return len(self._known)

    def contains(self, src: int, rel: int, dst: int) -> bool:
        return (src, rel, dst) in self._known

    def mask(self, src: np.ndarray, rel: np.ndarray,
             candidates: np.ndarray) -> np.ndarray:
        """Boolean (n, m) mask: candidate j is a known true triple for row i."""
        n, m = len(src), len(candidates)
        out = np.zeros((n, m), dtype=bool)
        for i in range(n):
            s, r = int(src[i]), int(rel[i])
            for j in range(m):
                if (s, r, int(candidates[j])) in self._known:
                    out[i, j] = True
        return out


def filtered_ranks(pos_scores: np.ndarray, neg_scores: np.ndarray,
                   known_mask: np.ndarray) -> np.ndarray:
    """Ranks with known-true candidates excluded from the comparison."""
    masked = neg_scores.copy()
    masked[known_mask] = -np.inf
    return ranks_from_scores(pos_scores, masked)


def multiclass_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())


@dataclass
class EpochRecord:
    """Per-epoch training telemetry collected by the trainers."""

    epoch: int
    loss: float
    seconds: float
    metric: float                      # MRR (lp) or accuracy (nc)
    sample_seconds: float = 0.0
    compute_seconds: float = 0.0
    io_seconds: float = 0.0
    io_bytes: int = 0
    partition_loads: int = 0
    num_batches: int = 0
