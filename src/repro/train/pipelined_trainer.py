"""Threaded pipelined trainer — the execution model of paper Figure 2.

MariusGNN overlaps the mini-batch stages: while the "GPU" computes batch i,
CPU workers are already sampling batches i+1..i+d (the pipeline queue), and a
writer applies base-representation updates in the background. This module
implements that structure with real threads:

* ``num_sample_workers`` threads run Steps 1-2 (example selection + DENSE
  sampling + negative sampling) and feed a bounded queue;
* the main thread runs Steps 3-5 (gather, forward/backward, GNN update);
* one updater thread runs Step 6 (row-sparse Adagrad write-back).

The asynchrony introduces the same *bounded staleness* the original system
accepts: a batch may be sampled (and its embeddings gathered) before the
previous batch's embedding updates land. ``pipeline_depth`` bounds it.
NumPy releases the GIL inside large kernels, so sampling genuinely overlaps
compute for realistic batch sizes.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.sampler import DenseSampler
from ..graph.csr import AdjacencyIndex
from ..nn.loss import link_prediction_loss
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from .evaluation import EpochRecord, RankingMetrics
from .link_prediction import (LinkPredictionConfig, LinkPredictionTrainer,
                              TrainResult, _EmbeddingTable, evaluate_model)
from .negative_sampling import UniformNegativeSampler

_STOP = object()


@dataclass
class PipelineStats:
    """Observed pipeline behaviour for one epoch."""

    sample_wait_seconds: float = 0.0    # main thread starved for batches
    update_backlog_max: int = 0         # deepest write-back queue seen
    batches: int = 0


class PipelinedLinkPredictionTrainer:
    """Link prediction trainer with a multi-threaded mini-batch pipeline.

    Produces the same model family as :class:`LinkPredictionTrainer`; the
    training order differs only by pipeline-induced staleness.
    """

    def __init__(self, dataset, config: Optional[LinkPredictionConfig] = None,
                 num_sample_workers: int = 2, pipeline_depth: int = 4) -> None:
        if num_sample_workers < 1:
            raise ValueError("need at least one sampling worker")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be positive")
        self.dataset = dataset
        self.config = config or LinkPredictionConfig()
        self.num_sample_workers = num_sample_workers
        self.pipeline_depth = pipeline_depth
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        graph = dataset.graph
        from .link_prediction import LinkPredictionModel
        self.model = LinkPredictionModel(cfg, graph.num_relations, rng=self.rng)
        self.embeddings = _EmbeddingTable(graph.num_nodes, cfg.embedding_dim,
                                          cfg.embedding_lr, self.rng)
        params = self.model.parameters()
        self.gnn_optimizer = Adam(params, lr=cfg.gnn_lr) if params else None
        self.pipeline_stats: List[PipelineStats] = []
        # The dual-sorted index over the (static) training graph is built
        # once and shared read-only by every sampler worker across epochs,
        # instead of each worker re-sorting the edge list per epoch.
        self._shared_index = AdjacencyIndex(graph, directions=cfg.directions)

    # ------------------------------------------------------------------
    def _sampler_worker(self, worker_id: int, epoch: int, edges: np.ndarray,
                        index_queue: "queue.Queue",
                        batch_queue: "queue.Queue") -> None:
        cfg = self.config
        # Seed per (run, epoch, worker): workers are re-spawned every epoch
        # and must NOT replay the same neighbor/negative draws — a repeated
        # negative-sample sequence lets the model overfit those specific
        # negatives (loss falls, ranking quality collapses).
        sampler = DenseSampler(None, list(cfg.fanouts),
                               rng=np.random.default_rng(
                                   [cfg.seed, 97, epoch, worker_id]),
                               index=self._shared_index)
        negatives = UniformNegativeSampler(
            self.dataset.graph.num_nodes, cfg.num_negatives,
            rng=np.random.default_rng([cfg.seed, 131, epoch, worker_id]))
        while True:
            item = index_queue.get()
            if item is _STOP:
                batch_queue.put(_STOP)
                return
            chunk = edges[item]
            src = chunk[:, 0]
            dst = chunk[:, -1]
            rel = (chunk[:, 1] if chunk.shape[1] == 3
                   else np.zeros(len(chunk), dtype=np.int64))
            neg = negatives.sample().nodes
            targets = np.unique(np.concatenate([src, dst, neg]))
            if cfg.num_layers > 0:
                batch = sampler.sample(targets)
            else:
                batch = sampler.sample_no_neighbors(targets)
            # Row lookups into the encoder output happen here on the worker
            # (off the compute thread's critical path): one concatenated
            # sorted search split three ways. For 0-layer models the output
            # rows ARE the h0 rows, so the same lookup selects both.
            rows = np.searchsorted(targets, np.concatenate([src, dst, neg]))
            rows_src = rows[: len(src)]
            rows_dst = rows[len(src) : len(src) + len(dst)]
            rows_neg = rows[len(src) + len(dst) :]
            # Step 3's gather happens on the main thread so it sees the
            # freshest embeddings the pipeline allows.
            batch_queue.put((batch, src, rel, dst,
                             rows_src, rows_dst, rows_neg))

    def _updater_worker(self, update_queue: "queue.Queue",
                        stats: PipelineStats) -> None:
        while True:
            stats.update_backlog_max = max(stats.update_backlog_max,
                                           update_queue.qsize())
            item = update_queue.get()
            if item is _STOP:
                return
            rows, grads = item
            self.embeddings.apply(rows, grads)

    # ------------------------------------------------------------------
    def _train_epoch(self, epoch: int, edges: np.ndarray) -> EpochRecord:
        cfg = self.config
        record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
        stats = PipelineStats()
        t_epoch = time.perf_counter()

        order = self.rng.permutation(len(edges))
        index_queue: "queue.Queue" = queue.Queue()
        batch_queue: "queue.Queue" = queue.Queue(maxsize=self.pipeline_depth)
        update_queue: "queue.Queue" = queue.Queue()

        for start in range(0, len(order), cfg.batch_size):
            index_queue.put(order[start:start + cfg.batch_size])
        for _ in range(self.num_sample_workers):
            index_queue.put(_STOP)

        workers = [threading.Thread(
            target=self._sampler_worker,
            args=(w, epoch, edges, index_queue, batch_queue),
            daemon=True) for w in range(self.num_sample_workers)]
        updater = threading.Thread(target=self._updater_worker,
                                   args=(update_queue, stats), daemon=True)
        for w in workers:
            w.start()
        updater.start()

        losses: List[float] = []
        stops_seen = 0
        while stops_seen < self.num_sample_workers:
            t_wait = time.perf_counter()
            item = batch_queue.get()
            stats.sample_wait_seconds += time.perf_counter() - t_wait
            if item is _STOP:
                stops_seen += 1
                continue
            batch, src, rel, dst, rows_src, rows_dst, rows_neg = item
            t0 = time.perf_counter()
            h0 = Tensor(self.embeddings.gather(batch.node_ids),
                        requires_grad=True)
            out = self.model.encode(h0, batch)
            src_repr = out.index_select(rows_src)
            dst_repr = out.index_select(rows_dst)
            neg_repr = out.index_select(rows_neg)
            pos = self.model.decoder.score_edges(src_repr, rel, dst_repr)
            negs = self.model.decoder.score_against(src_repr, rel, neg_repr)
            loss = link_prediction_loss(pos, negs)
            self.model.zero_grad()
            loss.backward()
            if self.gnn_optimizer is not None:
                self.gnn_optimizer.step()
            if h0.grad is not None:
                update_queue.put((batch.node_ids, h0.grad))
            record.compute_seconds += time.perf_counter() - t0
            record.num_batches += 1
            stats.batches += 1
            losses.append(float(loss.data))

        update_queue.put(_STOP)
        updater.join()
        for w in workers:
            w.join()

        record.seconds = time.perf_counter() - t_epoch
        record.loss = float(np.mean(losses)) if losses else 0.0
        self.pipeline_stats.append(stats)
        return record

    # ------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainResult:
        cfg = self.config
        edges = self.dataset.split.train
        records: List[EpochRecord] = []
        for epoch in range(cfg.num_epochs):
            record = self._train_epoch(epoch, edges)
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate().mrr
            records.append(record)
            if verbose:
                stats = self.pipeline_stats[-1]
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s "
                      f"starved={stats.sample_wait_seconds:.2f}s "
                      f"backlog={stats.update_backlog_max}")
        metrics = self.evaluate()
        return TrainResult(epochs=records, final_metrics=metrics,
                           model_name=f"{cfg.encoder}-pipelined")

    def evaluate(self, edges: Optional[np.ndarray] = None,
                 seed: int = 1234) -> RankingMetrics:
        cfg = self.config
        if edges is None:
            edges = self.dataset.split.test
        if len(edges) > cfg.eval_max_edges:
            pick = np.random.default_rng(seed).choice(
                len(edges), cfg.eval_max_edges, replace=False)
            edges = edges[pick]
        return evaluate_model(self.model, self.embeddings.table,
                              self.dataset.graph, edges, cfg, seed=seed)
