"""Threaded pipelined trainer — the execution model of paper Figure 2.

MariusGNN overlaps the mini-batch stages: while the "GPU" computes batch i,
CPU workers are already sampling batches i+1..i+d (the pipeline queue), and a
writer applies base-representation updates in the background. This module
implements that structure with real threads:

* ``num_sample_workers`` threads run Steps 1-2 (example selection + DENSE
  sampling + negative sampling) and feed a bounded queue;
* the main thread runs Steps 3-5 (gather, forward/backward, GNN update);
* one updater thread runs Step 6 (row-sparse Adagrad write-back).

The asynchrony introduces the same *bounded staleness* the original system
accepts: a batch may be sampled (and its embeddings gathered) before the
previous batch's embedding updates land. ``pipeline_depth`` bounds it.
NumPy releases the GIL inside large kernels, so sampling genuinely overlaps
compute for realistic batch sizes.

``deterministic=True`` switches the pipeline to a replayable discipline:
(a) sampling is seeded **per batch** (``[seed, epoch, batch]``) instead of
per worker, so a batch's neighbor and negative draws are a pure function of
its position in the epoch, independent of which worker samples it or when;
(b) batches are reassembled in epoch order on the compute thread (workers
may finish out of order); and (c) base-representation updates are applied
inline instead of through the async writer. The pipeline still overlaps
sampling with compute, but training becomes a pure function of the seed —
and a run resumed from a snapshot is bit-identical to an uninterrupted one
(``tests/test_checkpoint_recovery``). The default racy mode keeps the
per-``(epoch, worker)`` streams and bounded-staleness behaviour unchanged.

Checkpointing follows quiesce → drain queues → snapshot → refill: in
deterministic mode snapshots land every ``checkpoint_every`` consumed
batches (in-flight sampled batches are discarded by a crash and re-sampled
identically on resume); in the default racy mode the pipeline only reaches
a consistent cut once the epoch's queues are joined, so snapshots land at
epoch boundaries.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from ..api import registry as job_registry
from ..core.sampler import DenseSampler
from ..graph.csr import AdjacencyIndex
from ..nn.loss import link_prediction_loss
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from .checkpoint import (SnapshotError, SnapshotManager, _config_to_dict,
                         dataset_fingerprint, pack_model, pack_optimizer,
                         resolve_snapshot, rng_state, set_rng_state,
                         unpack_model, unpack_optimizer, validate_meta)
from .evaluation import EpochRecord, RankingMetrics
from .hooks import ListenerHooks, ProgressListener
from .link_prediction import (LinkPredictionConfig, LinkPredictionTrainer,
                              TrainResult, _EmbeddingTable, evaluate_model)
from .negative_sampling import UniformNegativeSampler

_STOP = object()


@dataclass
class PipelineStats:
    """Observed pipeline behaviour for one epoch."""

    sample_wait_seconds: float = 0.0    # main thread starved for batches
    update_backlog_max: int = 0         # deepest write-back queue seen
    batches: int = 0


class PipelinedLinkPredictionTrainer(ListenerHooks):
    """Link prediction trainer with a multi-threaded mini-batch pipeline.

    Produces the same model family as :class:`LinkPredictionTrainer`; the
    training order differs only by pipeline-induced staleness (none when
    ``deterministic=True``).
    """

    KIND = job_registry.LP_PIPELINED

    def __init__(self, dataset, config: Optional[LinkPredictionConfig] = None,
                 num_sample_workers: int = 2, pipeline_depth: int = 4,
                 deterministic: bool = False,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        if num_sample_workers < 1:
            raise ValueError("need at least one sampling worker")
        if pipeline_depth < 1:
            raise ValueError("pipeline depth must be positive")
        self.dataset = dataset
        self.config = config or LinkPredictionConfig()
        self.num_sample_workers = num_sample_workers
        self.pipeline_depth = pipeline_depth
        self.deterministic = deterministic
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        graph = dataset.graph
        from .link_prediction import LinkPredictionModel
        self.model = LinkPredictionModel(cfg, graph.num_relations, rng=self.rng)
        self.embeddings = _EmbeddingTable(graph.num_nodes, cfg.embedding_dim,
                                          cfg.embedding_lr, self.rng)
        params = self.model.parameters()
        self.gnn_optimizer = Adam(params, lr=cfg.gnn_lr) if params else None
        self.pipeline_stats: List[PipelineStats] = []
        # The dual-sorted index over the (static) training graph is built
        # once and shared read-only by every sampler worker across epochs,
        # instead of each worker re-sorting the edge list per epoch.
        self._shared_index = AdjacencyIndex(graph, directions=cfg.directions)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)  # in consumed batches
        self._start_epoch = 0
        self._start_batch = 0
        self._resume_order: Optional[np.ndarray] = None
        self._since_snapshot = 0

    # ------------------------------------------------------------------
    def save_snapshot(self, epoch: int, next_batch: int, num_batches: int,
                      order: Optional[np.ndarray]) -> Path:
        """Snapshot at a consistent cut: batches ``< next_batch`` applied.

        Callers quiesce first — in deterministic mode updates are inline so
        any batch boundary is a cut; in racy mode the epoch's queues must be
        drained and joined (epoch boundary). In-flight sampled batches need
        no draining ever: per-batch seeding re-samples them identically.
        """
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        if next_batch >= num_batches:
            epoch, next_batch, order = epoch + 1, 0, None
        arrays = {"emb_table": self.embeddings.table.copy(),
                  "emb_state": self.embeddings.state.copy()}
        if next_batch > 0 and order is not None:
            # Mid-epoch cut: the epoch's shuffle was already drawn from the
            # trainer stream, so the resumed run reuses it verbatim.
            arrays["epoch_order"] = np.asarray(order, dtype=np.int64)
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.gnn_optimizer, arrays)
        meta = {"trainer": self.KIND, "epoch": int(epoch),
                "batch": int(next_batch), "rng": rng_state(self.rng),
                "deterministic": self.deterministic,
                "stores": {"dataset": dataset_fingerprint(self.dataset)},
                "config": _config_to_dict(self.config)}
        self._since_snapshot = 0
        path = self.snapshots.save(epoch * 1_000_000_000 + next_batch,
                                   meta, arrays)
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   epoch=int(epoch), batch=int(next_batch))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore the latest (or given) snapshot; next train() continues."""
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, config=self.config,
                      stores={"dataset": dataset_fingerprint(self.dataset)})
        if bool(meta.get("deterministic")) != self.deterministic:
            raise SnapshotError(
                "snapshot was written with deterministic="
                f"{meta.get('deterministic')} but this trainer runs "
                f"deterministic={self.deterministic}; the resumed run would "
                "not continue the recorded one — use matching modes")
        if int(meta["batch"]) > 0 and not self.deterministic:
            raise SnapshotError(
                "mid-epoch snapshots are only replayable in deterministic "
                "mode; resume with deterministic=True or from an epoch-"
                "boundary snapshot")
        self.embeddings.table[:] = arrays["emb_table"]
        self.embeddings.state[:] = arrays["emb_state"]
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.gnn_optimizer, arrays)
        set_rng_state(self.rng, meta["rng"])
        self._start_epoch = int(meta["epoch"])
        self._start_batch = int(meta["batch"])
        self._resume_order = arrays.get("epoch_order")
        if self._start_batch > 0 and self._resume_order is None:
            raise SnapshotError(
                "mid-epoch snapshot carries no epoch_order; cannot replay "
                "the interrupted epoch's shuffle")
        self._since_snapshot = 0
        return meta

    # ------------------------------------------------------------------
    def _sampler_worker(self, worker_id: int, epoch: int, edges: np.ndarray,
                        index_queue: "queue.Queue",
                        batch_queue: "queue.Queue") -> None:
        cfg = self.config
        num_nodes = self.dataset.graph.num_nodes
        # One stream per (run, epoch, worker): workers are re-spawned every
        # epoch and must NOT replay the same neighbor/negative draws — a
        # repeated negative-sample sequence lets the model overfit those
        # specific negatives (loss falls, ranking quality collapses).
        # Deterministic mode reseeds both streams per batch below.
        sampler = DenseSampler(None, list(cfg.fanouts),
                               rng=np.random.default_rng(
                                   [cfg.seed, 97, epoch, worker_id]),
                               index=self._shared_index)
        negatives = UniformNegativeSampler(
            num_nodes, cfg.num_negatives,
            rng=np.random.default_rng([cfg.seed, 131, epoch, worker_id]))
        while True:
            item = index_queue.get()
            if item is _STOP:
                batch_queue.put(_STOP)
                return
            seq, idx = item
            if self.deterministic:
                # Per-batch streams: draws depend only on (run, epoch,
                # batch), never on worker identity or scheduling — so every
                # batch is replayable on resume, and batches a crash caught
                # in flight are re-sampled identically. Reseeding (rather
                # than rebuilding the sampler) keeps the O(num_nodes)
                # scratch arrays across batches.
                sampler.reseed(np.random.default_rng([cfg.seed, 97, epoch, seq]))
                negatives = UniformNegativeSampler(
                    num_nodes, cfg.num_negatives,
                    rng=np.random.default_rng([cfg.seed, 131, epoch, seq]))
            chunk = edges[idx]
            src = chunk[:, 0]
            dst = chunk[:, -1]
            rel = (chunk[:, 1] if chunk.shape[1] == 3
                   else np.zeros(len(chunk), dtype=np.int64))
            neg = negatives.sample().nodes
            targets = np.unique(np.concatenate([src, dst, neg]))
            if cfg.num_layers > 0:
                batch = sampler.sample(targets)
            else:
                batch = sampler.sample_no_neighbors(targets)
            # Row lookups into the encoder output happen here on the worker
            # (off the compute thread's critical path): one concatenated
            # sorted search split three ways. For 0-layer models the output
            # rows ARE the h0 rows, so the same lookup selects both.
            rows = np.searchsorted(targets, np.concatenate([src, dst, neg]))
            rows_src = rows[: len(src)]
            rows_dst = rows[len(src) : len(src) + len(dst)]
            rows_neg = rows[len(src) + len(dst) :]
            # Step 3's gather happens on the main thread so it sees the
            # freshest embeddings the pipeline allows.
            batch_queue.put((seq, batch, src, rel, dst,
                             rows_src, rows_dst, rows_neg))

    def _updater_worker(self, update_queue: "queue.Queue",
                        stats: PipelineStats) -> None:
        while True:
            stats.update_backlog_max = max(stats.update_backlog_max,
                                           update_queue.qsize())
            item = update_queue.get()
            if item is _STOP:
                update_queue.task_done()
                return
            rows, grads = item
            self.embeddings.apply(rows, grads)
            update_queue.task_done()

    # ------------------------------------------------------------------
    def _compute_batch(self, item, record: EpochRecord,
                       stats: PipelineStats, losses: List[float],
                       update_queue: Optional["queue.Queue"]) -> None:
        _, batch, src, rel, dst, rows_src, rows_dst, rows_neg = item
        t0 = time.perf_counter()
        h0 = Tensor(self.embeddings.gather(batch.node_ids),
                    requires_grad=True)
        out = self.model.encode(h0, batch)
        src_repr = out.index_select(rows_src)
        dst_repr = out.index_select(rows_dst)
        neg_repr = out.index_select(rows_neg)
        pos = self.model.decoder.score_edges(src_repr, rel, dst_repr)
        negs = self.model.decoder.score_against(src_repr, rel, neg_repr)
        loss = link_prediction_loss(pos, negs)
        self.model.zero_grad()
        loss.backward()
        if self.gnn_optimizer is not None:
            self.gnn_optimizer.step()
        if h0.grad is not None:
            if update_queue is not None:
                update_queue.put((batch.node_ids, h0.grad))
            else:
                self.embeddings.apply(batch.node_ids, h0.grad)
        record.compute_seconds += time.perf_counter() - t0
        record.num_batches += 1
        stats.batches += 1
        losses.append(float(loss.data))

    def _train_epoch(self, epoch: int, edges: np.ndarray,
                     start_batch: int = 0,
                     order: Optional[np.ndarray] = None) -> EpochRecord:
        cfg = self.config
        record = EpochRecord(epoch=epoch, loss=0.0, seconds=0.0, metric=0.0)
        stats = PipelineStats()
        t_epoch = time.perf_counter()

        if order is None:
            order = self.rng.permutation(len(edges))
        starts = range(0, len(order), cfg.batch_size)
        num_batches = len(starts)
        index_queue: "queue.Queue" = queue.Queue()
        batch_queue: "queue.Queue" = queue.Queue(maxsize=self.pipeline_depth)
        update_queue: Optional["queue.Queue"] = (
            None if self.deterministic else queue.Queue())

        items = iter([(seq, order[start:start + cfg.batch_size])
                      for seq, start in enumerate(starts) if seq >= start_batch])

        def feed(n: int) -> None:
            for _ in range(n):
                item = next(items, None)
                if item is None:
                    return
                index_queue.put(item)

        if self.deterministic:
            # Feed the index queue a bounded window at a time (topped up as
            # batches are consumed): if the worker holding the next-in-order
            # batch stalls, the others cannot sample arbitrarily far ahead
            # and grow the out-of-order `pending` set without limit.
            feed(self.pipeline_depth + self.num_sample_workers)
        else:
            feed(num_batches)
            for _ in range(self.num_sample_workers):
                index_queue.put(_STOP)

        workers = [threading.Thread(
            target=self._sampler_worker,
            args=(w, epoch, edges, index_queue, batch_queue),
            daemon=True) for w in range(self.num_sample_workers)]
        updater = None
        if update_queue is not None:
            updater = threading.Thread(target=self._updater_worker,
                                       args=(update_queue, stats), daemon=True)
            updater.start()
        for w in workers:
            w.start()

        losses: List[float] = []
        if self.deterministic:
            pending: dict = {}
            next_seq = start_batch
            while next_seq < num_batches:
                if next_seq in pending:
                    item = pending.pop(next_seq)
                else:
                    t_wait = time.perf_counter()
                    item = batch_queue.get()
                    stats.sample_wait_seconds += time.perf_counter() - t_wait
                    if item[0] != next_seq:
                        pending[item[0]] = item
                        continue
                self._compute_batch(item, record, stats, losses, update_queue)
                next_seq += 1
                feed(1)
                self._since_snapshot += 1
                if (self.snapshots is not None and self.checkpoint_every
                        and self._since_snapshot >= self.checkpoint_every):
                    # Updates are inline, so "all batches < next_seq
                    # applied" already holds — quiesce is free and sampling
                    # continues undisturbed in the background.
                    self.save_snapshot(epoch, next_seq, num_batches, order)
            for _ in range(self.num_sample_workers):
                index_queue.put(_STOP)
            stops_seen = 0
            while stops_seen < self.num_sample_workers:
                if batch_queue.get() is _STOP:
                    stops_seen += 1
        else:
            stops_seen = 0
            while stops_seen < self.num_sample_workers:
                t_wait = time.perf_counter()
                item = batch_queue.get()
                stats.sample_wait_seconds += time.perf_counter() - t_wait
                if item is _STOP:
                    stops_seen += 1
                    continue
                self._compute_batch(item, record, stats, losses, update_queue)
                self._since_snapshot += 1

        if update_queue is not None and updater is not None:
            update_queue.join()          # drain Step-6 write-backs
            update_queue.put(_STOP)
            updater.join()
        for w in workers:
            w.join()

        record.seconds = time.perf_counter() - t_epoch
        record.loss = float(np.mean(losses)) if losses else 0.0
        self.pipeline_stats.append(stats)

        if (not self.deterministic and self.snapshots is not None
                and self.checkpoint_every
                and self._since_snapshot >= self.checkpoint_every):
            # Racy mode reaches a consistent cut only here, with the epoch's
            # queues drained and threads joined.
            self.save_snapshot(epoch, num_batches, num_batches, None)
        return record

    # ------------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainResult:
        cfg = self.config
        edges = self.dataset.split.train
        records: List[EpochRecord] = []
        for epoch in range(self._start_epoch, cfg.num_epochs):
            start_batch = 0
            order = None
            if epoch == self._start_epoch and self._start_batch > 0:
                start_batch = self._start_batch
                order = self._resume_order
            record = self._train_epoch(epoch, edges, start_batch=start_batch,
                                       order=order)
            if cfg.eval_every and (epoch + 1) % cfg.eval_every == 0:
                record.metric = self.evaluate().mrr
            records.append(record)
            self._emit("epoch", trainer=self.KIND, epoch=epoch,
                       loss=record.loss, seconds=record.seconds,
                       metric=record.metric)
            if verbose:
                stats = self.pipeline_stats[-1]
                print(f"[epoch {epoch}] loss={record.loss:.4f} "
                      f"time={record.seconds:.1f}s "
                      f"starved={stats.sample_wait_seconds:.2f}s "
                      f"backlog={stats.update_backlog_max}")
        self._start_epoch = 0
        self._start_batch = 0
        self._resume_order = None
        metrics = self.evaluate()
        return TrainResult(epochs=records, final_metrics=metrics,
                           model_name=f"{cfg.encoder}-pipelined")

    def evaluate(self, edges: Optional[np.ndarray] = None,
                 seed: int = 1234) -> RankingMetrics:
        cfg = self.config
        if edges is None:
            edges = self.dataset.split.test
        if len(edges) > cfg.eval_max_edges:
            pick = np.random.default_rng(seed).choice(
                len(edges), cfg.eval_max_edges, replace=False)
            edges = edges[pick]
        return evaluate_model(self.model, self.embeddings.table,
                              self.dataset.graph, edges, cfg, seed=seed)
