"""Shared progress/checkpoint listener hook for every trainer kind.

The unified job API (:mod:`repro.api`) observes training through one
callback shape instead of each trainer growing bespoke loop plumbing:
``listener(event, payload)`` where ``event`` is a short string and
``payload`` a JSON-able dict. Every trainer emits at least:

* ``"epoch"`` — after each completed epoch (``epoch``, ``loss``,
  ``seconds``, ``metric``);
* ``"snapshot"`` — after each atomic snapshot lands (``path`` plus the
  kind's cursor fields);

and the streaming :class:`~repro.stream.refresh.ContinualTrainer` adds
``"refresh"`` per fine-tuning pass. Listeners run synchronously on the
training thread between units of work — they must be cheap and must not
mutate trainer state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

ProgressListener = Callable[[str, Dict[str, Any]], None]


class ListenerHooks:
    """Mixin giving a trainer a listener registry and an ``_emit`` helper."""

    listeners: List[ProgressListener]

    def _init_hooks(self,
                    listeners: Optional[Iterable[ProgressListener]] = None
                    ) -> None:
        self.listeners = list(listeners or [])

    def add_listener(self, fn: ProgressListener) -> None:
        """Register ``fn(event, payload)`` for progress/snapshot events."""
        self.listeners.append(fn)

    def _emit(self, event: str, **payload: Any) -> None:
        for fn in list(self.listeners):
            fn(event, dict(payload))
