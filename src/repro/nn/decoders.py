"""Decoders: score functions for link prediction and the classification head.

The paper evaluates link prediction with the DistMult score function
(Yang et al. 2014) — ``score(s, r, d) = <h_s, w_r, h_d>`` — both as the
decoder on top of a GNN encoder (Tables 4, 5, 8) and as the specialized
decoder-only knowledge-graph-embedding model Marius supports (Table 8 "DM"
rows). Node classification feeds the final GNN representation into a linear
softmax layer (Section 2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import functional as F
from .init import glorot_uniform, uniform_embedding
from .layers import Linear
from .module import Module
from .tensor import Tensor


class DistMult(Module):
    """DistMult relation scoring with learned diagonal relation embeddings."""

    def __init__(self, num_relations: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.dim = dim
        rng = rng or np.random.default_rng()
        # Relations initialized near one so scores start close to a dot product.
        init = np.ones((num_relations, dim), dtype=np.float32)
        init += rng.uniform(-0.1, 0.1, size=init.shape).astype(np.float32)
        self.relations = self.register_parameter("relations", Tensor(init))

    def score_edges(self, src: Tensor, rel: np.ndarray, dst: Tensor) -> Tensor:
        """Score aligned (src, rel, dst) triples; returns shape (batch,)."""
        rel_emb = F.embedding(self.relations, rel)
        return (src * rel_emb * dst).sum(axis=1)

    def score_against(self, src: Tensor, rel: np.ndarray, candidates: Tensor) -> Tensor:
        """Score each (src, rel) pair against every candidate destination.

        Returns shape ``(batch, num_candidates)``. This is the batched-negatives
        formulation Marius/MariusGNN use: one shared pool of negative nodes is
        scored against every positive edge with a single dense matmul.
        """
        rel_emb = F.embedding(self.relations, rel)
        return (src * rel_emb).matmul(candidates.T)

    def target_query_rows(self, src: np.ndarray, rel: np.ndarray) -> np.ndarray:
        """The query vector ``q`` with ``score(s, r, d) = q . h_d``.

        Every decoder whose ``score_against`` is linear in the candidate
        row exposes this; the ANN index uses it to bound the best possible
        score of a cluster (``q . centroid + |q| * radius``) without
        scoring any member.
        """
        return src * self.relations.data[np.asarray(rel, dtype=np.int64)]


class DotProduct(Module):
    """Relation-free dot-product decoder (used for homogeneous graphs)."""

    def __init__(self) -> None:
        super().__init__()

    def score_edges(self, src: Tensor, rel: np.ndarray, dst: Tensor) -> Tensor:
        return (src * dst).sum(axis=1)

    def score_against(self, src: Tensor, rel: np.ndarray, candidates: Tensor) -> Tensor:
        return src.matmul(candidates.T)

    def target_query_rows(self, src: np.ndarray, rel: np.ndarray) -> np.ndarray:
        """``score(s, d) = s . d`` — the query vector is the source row."""
        return src


class ComplExDecoder(Module):
    """ComplEx score function (Trouillon et al. 2016); optional extension.

    Embeddings are interpreted as complex vectors of dimension ``dim/2``
    (first half real, second half imaginary). Included because Marius'
    decoder-only mode supports it; exercised in ablation benches.
    """

    def __init__(self, num_relations: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % 2 != 0:
            raise ValueError("ComplEx requires an even embedding dimension")
        self.num_relations = num_relations
        self.dim = dim
        self.half = dim // 2
        self.relations = self.register_parameter(
            "relations", uniform_embedding((num_relations, dim), rng=rng)
        )

    def score_edges(self, src: Tensor, rel: np.ndarray, dst: Tensor) -> Tensor:
        rel_emb = F.embedding(self.relations, rel)
        h = self.half
        sr, si = _col_split(src, h)
        rr, ri = _col_split(rel_emb, h)
        dr, di = _col_split(dst, h)
        # Re(<s, r, conj(d)>)
        return (
            (sr * rr * dr).sum(axis=1)
            + (si * rr * di).sum(axis=1)
            + (sr * ri * di).sum(axis=1)
            - (si * ri * dr).sum(axis=1)
        )

    def score_against(self, src: Tensor, rel: np.ndarray, candidates: Tensor) -> Tensor:
        rel_emb = F.embedding(self.relations, rel)
        h = self.half
        sr, si = _col_split(src, h)
        rr, ri = _col_split(rel_emb, h)
        cr, ci = _col_split(candidates, h)
        # Expand Re(<s, r, conj(c)>) into four dense matmuls.
        a = (sr * rr).matmul(cr.T)
        b = (si * rr).matmul(ci.T)
        c = (sr * ri).matmul(ci.T)
        d = (si * ri).matmul(cr.T)
        return a + b + c - d

    def target_query_rows(self, src: np.ndarray, rel: np.ndarray) -> np.ndarray:
        """Fold (src, rel) into one vector: ``Re(<s, r, conj(c)>) = q . c``
        with ``q = [sr*rr - si*ri, si*rr + sr*ri]`` against ``c = [cr, ci]``."""
        rel_emb = self.relations.data[np.asarray(rel, dtype=np.int64)]
        h = self.half
        sr, si = src[:, :h], src[:, h:]
        rr, ri = rel_emb[:, :h], rel_emb[:, h:]
        return np.concatenate([sr * rr - si * ri, si * rr + sr * ri], axis=1)


def _col_split(t: Tensor, half: int) -> Tuple[Tensor, Tensor]:
    """Split a (n, 2h) tensor into real/imaginary column halves with autograd."""
    data = t.data

    def make(start: int) -> Tensor:
        out_data = data[:, start : start + half]

        def backward(grad: np.ndarray) -> None:
            if t.requires_grad:
                acc = np.zeros_like(data)
                acc[:, start : start + half] = grad
                t._accumulate(acc)

        return Tensor._make(out_data, (t,), backward)

    return make(0), make(half)


class TransE(Module):
    """TransE score function (Bordes et al. 2013): ``-||h + r - t||_2``.

    The third decoder-only model class Marius supports. ``score_against``
    expands the squared distance into dense matmuls so the shared-negative
    formulation stays one GEMM.
    """

    def __init__(self, num_relations: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.dim = dim
        self.relations = self.register_parameter(
            "relations", uniform_embedding((num_relations, dim),
                                           scale=6.0 / np.sqrt(dim), rng=rng))

    def score_edges(self, src: Tensor, rel: np.ndarray, dst: Tensor) -> Tensor:
        rel_emb = F.embedding(self.relations, rel)
        diff = src + rel_emb - dst
        return -((diff * diff).sum(axis=1) + 1e-12) ** 0.5

    def score_against(self, src: Tensor, rel: np.ndarray, candidates: Tensor) -> Tensor:
        rel_emb = F.embedding(self.relations, rel)
        translated = src + rel_emb                       # (n, d)
        # ||a - c||^2 = |a|^2 + |c|^2 - 2 a.c, batched over the pool.
        a_sq = (translated * translated).sum(axis=1).reshape(len(rel), 1)
        c_sq = (candidates * candidates).sum(axis=1).reshape(1, candidates.data.shape[0])
        cross = translated.matmul(candidates.T)
        sq = (a_sq + c_sq - 2.0 * cross).clamp_min(1e-12)
        return -(sq ** 0.5)


class ClassificationHead(Module):
    """Fully-connected + softmax layer for node classification (Section 2)."""

    def __init__(self, in_dim: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_dim, num_classes, rng=rng)

    def forward(self, h: Tensor) -> Tensor:
        return self.linear(h)

    def predict(self, h: Tensor) -> np.ndarray:
        return self.linear(h).data.argmax(axis=1)


DECODER_REGISTRY = {
    "distmult": DistMult,
    "complex": ComplExDecoder,
    "transe": TransE,
}


def make_decoder(kind: str, num_relations: int, dim: int, **kwargs) -> Module:
    if kind.lower() == "dot":
        return DotProduct()
    try:
        cls = DECODER_REGISTRY[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown decoder {kind!r}; expected one of {sorted(DECODER_REGISTRY) + ['dot']}")
    return cls(num_relations, dim, **kwargs)
