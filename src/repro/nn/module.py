"""Minimal ``Module`` base class with parameter traversal.

Mirrors the small subset of ``torch.nn.Module`` that the GNN stack needs:
named parameter registration (including nested submodules and lists of
submodules), ``parameters()`` for optimizers, and a train/eval flag that
controls dropout.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Module:
    """Base class for neural network modules."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    def register_parameter(self, name: str, param: Tensor) -> Tensor:
        param.requires_grad = True
        param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and name not in ("_modules",):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state_dict missing parameters: {sorted(missing)}")
        for name, value in state.items():
            if name not in params:
                raise KeyError(f"unexpected parameter in state_dict: {name}")
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {value.shape}"
                )
            params[name].data = value.astype(params[name].data.dtype).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class ModuleList(Module):
    """A list of submodules that registers each for parameter traversal."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._list)), module)
        self._list.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]
