"""Functional ops used by the GNN layers, including the segment kernels.

The paper's Algorithm 3 computes neighborhood aggregation with a *dense
segment sum*: neighbor representations are stored contiguously per node, so
aggregation is a sum over variable-length contiguous segments delimited by
``nbr_offsets``. These kernels (``segment_sum``, ``segment_mean``,
``segment_softmax``) are the reproduction of that computation model, built on
``np.add.reduceat`` which is the CPU analogue of the fused GPU segment kernels
MariusGNN uses.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, concat

__all__ = [
    "segment_ids_from_offsets",
    "segment_counts",
    "segment_sum",
    "segment_mean",
    "segment_max_detached",
    "segment_softmax",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "dropout",
    "linear",
    "embedding",
]


def segment_ids_from_offsets(offsets: np.ndarray, total: int) -> np.ndarray:
    """Expand segment ``offsets`` into a per-element segment-id array.

    ``offsets[i]`` is the start index of segment ``i`` within a flat array of
    length ``total``. Empty segments are allowed.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    ids = np.zeros(total, dtype=np.int64)
    if len(offsets) == 0:
        return ids
    # Mark segment starts (skipping duplicates from empty segments handled below)
    np.add.at(ids, offsets[offsets < total], 1)
    ids = np.cumsum(ids) - 1
    # Elements before the first offset (should not happen when offsets[0] == 0)
    np.clip(ids, 0, len(offsets) - 1, out=ids)
    return ids


def segment_counts(offsets: np.ndarray, total: int) -> np.ndarray:
    """Number of elements in each contiguous segment."""
    offsets = np.asarray(offsets, dtype=np.int64)
    bounds = np.concatenate([offsets, [total]])
    return np.diff(bounds)


def segment_sum(values: Tensor, offsets: np.ndarray, num_segments: Optional[int] = None) -> Tensor:
    """Sum contiguous segments of ``values`` rows.

    ``offsets`` holds segment start indices; segment ``i`` spans
    ``values[offsets[i] : offsets[i+1]]`` (last segment runs to the end).
    Matches the dense ``segment_sum`` of the paper's Algorithm 3 line 2.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = values.data.shape[0]
    if num_segments is None:
        num_segments = len(offsets)
    if num_segments == 0:
        out_shape = (0,) + values.data.shape[1:]
        return Tensor(np.zeros(out_shape, dtype=values.data.dtype))

    counts = segment_counts(offsets, n)
    # reduceat misbehaves on empty segments (equal or out-of-range indices),
    # so reduce only over the non-empty ones: their offsets are strictly
    # increasing and each non-empty segment's range ends exactly where the
    # next non-empty segment begins.
    out_data = np.zeros((num_segments,) + values.data.shape[1:], dtype=values.data.dtype)
    nonempty = counts > 0
    if n > 0 and nonempty.any():
        out_data[nonempty] = np.add.reduceat(values.data, offsets[nonempty], axis=0)

    seg_ids = segment_ids_from_offsets(offsets, n)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[seg_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(values: Tensor, offsets: np.ndarray, num_segments: Optional[int] = None) -> Tensor:
    """Mean over contiguous segments; empty segments produce zero vectors."""
    n = values.data.shape[0]
    if num_segments is None:
        num_segments = len(offsets)
    sums = segment_sum(values, offsets, num_segments)
    counts = segment_counts(np.asarray(offsets, dtype=np.int64), n).astype(values.data.dtype)
    denom = np.maximum(counts, 1.0)
    if sums.data.ndim == 2:
        denom = denom[:, None]
    return sums * Tensor(1.0 / denom)


def segment_max_detached(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment max of a 1-D array, computed outside the autograd tape.

    Used only for numerical stabilization of :func:`segment_softmax` (the
    softmax output is invariant to a per-segment constant shift, so the shift
    can be treated as a constant in backward).
    """
    n = len(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    if n == 0 or len(offsets) == 0:
        return np.zeros(len(offsets), dtype=values.dtype)
    safe_offsets = np.minimum(offsets, n - 1)
    out = np.maximum.reduceat(values, safe_offsets)
    counts = segment_counts(offsets, n)
    out[counts == 0] = 0.0
    return out


def segment_softmax(scores: Tensor, offsets: np.ndarray) -> Tensor:
    """Softmax over variable-length contiguous segments (GAT attention).

    Composed from differentiable primitives: ``exp``, :func:`segment_sum` and a
    gather, with a detached per-segment max subtracted for stability.
    """
    n = scores.data.shape[0]
    offsets = np.asarray(offsets, dtype=np.int64)
    seg_ids = segment_ids_from_offsets(offsets, n)
    maxes = segment_max_detached(scores.data, offsets)
    shifted = scores - Tensor(maxes[seg_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, offsets)
    denom = denom.clamp_min(1e-12)
    return exp / denom.index_select(seg_ids)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp_sum = shifted.exp().sum(axis=axis, keepdims=True)
    return shifted - exp_sum.log()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log likelihood of integer ``targets`` rows."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.data.shape[0]
    if n == 0:
        return Tensor(np.zeros(()))
    picked_data = log_probs.data[np.arange(n), targets]

    def backward(grad: np.ndarray) -> None:
        if log_probs.requires_grad:
            acc = np.zeros_like(log_probs.data)
            acc[np.arange(n), targets] = grad
            log_probs._accumulate(acc)

    picked = Tensor._make(picked_data, (log_probs,), backward)
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross entropy with integer class ``targets`` (mean reduction)."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def dropout(values: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return values
    rng = rng or np.random.default_rng()
    mask = (rng.random(values.data.shape) >= p).astype(values.data.dtype) / (1.0 - p)
    return values * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight + bias`` with ``weight`` of shape (in_dim, out_dim)."""
    out = x.matmul(weight)
    if bias is not None:
        out = out + bias
    return out


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding ``table`` (gather with scatter-add grad)."""
    return table.index_select(np.asarray(indices, dtype=np.int64))
