"""GNN layers that operate on the DENSE neighborhood layout.

Each layer consumes:

* ``h`` — a ``Tensor`` of input representations for *all* node IDs currently
  in DENSE (ordered ``[delta_0, delta_1, ..., delta_k]``), and
* ``view`` — a :class:`DenseLayerView` describing the current DENSE arrays.

and produces output representations for the nodes after
``node_id_offsets[1]`` (the paper's Step 1 in Section 4.2). Aggregation uses
the dense ``segment_sum`` kernel of Algorithm 3 — neighbors of each output
node are contiguous in memory, so per-node aggregation reduces to a segmented
reduction, the property that lets MariusGNN avoid sparse-matrix kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import functional as F
from .init import glorot_uniform, zeros_init
from .module import Module
from .tensor import Tensor


@dataclass
class DenseLayerView:
    """The slice of DENSE a single GNN layer needs.

    Attributes
    ----------
    repr_map:
        For each entry of the DENSE ``nbrs`` array belonging to this layer's
        output nodes, the row index in ``h`` holding that neighbor's input
        representation (paper Section 4.2).
    nbr_offsets:
        Start offset of each output node's neighbor run within ``repr_map``.
    self_start:
        Row in ``h`` where the output nodes' own representations begin
        (``node_id_offsets[1]``); output nodes are ``h[self_start:]``.
    num_outputs:
        Number of output nodes (= ``len(h) - self_start``).
    """

    repr_map: np.ndarray
    nbr_offsets: np.ndarray
    self_start: int
    num_outputs: int


class Linear(Module):
    """Dense affine layer ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = self.register_parameter("weight", glorot_uniform((in_dim, out_dim), rng))
        self.bias = self.register_parameter("bias", zeros_init((out_dim,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class GraphSageLayer(Module):
    """GraphSage aggregation (Hamilton et al. 2017) over a DENSE view.

    ``h_v' = act(W_self h_v + W_nbr mean({h_u : u in sampled N(v)}))``

    This is the model used in the paper's node classification and link
    prediction experiments (Tables 3-6, 8).
    """

    def __init__(self, in_dim: int, out_dim: int, activation: Optional[str] = "relu",
                 dropout: float = 0.0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dropout = dropout
        self.w_self = self.register_parameter("w_self", glorot_uniform((in_dim, out_dim), rng))
        self.w_nbr = self.register_parameter("w_nbr", glorot_uniform((in_dim, out_dim), rng))
        self.bias = self.register_parameter("bias", zeros_init((out_dim,))) if bias else None
        self._rng = rng or np.random.default_rng()

    def forward(self, h: Tensor, view: DenseLayerView) -> Tensor:
        h = F.dropout(h, self.dropout, self.training, self._rng)
        # Algorithm 3 line 1: gather neighbor representations via repr_map.
        nbr_repr = h.index_select(view.repr_map)
        # Algorithm 3 line 2: dense segmented reduction (mean aggregator).
        nbr_aggr = F.segment_mean(nbr_repr, view.nbr_offsets, view.num_outputs)
        # Algorithm 3 line 3: self representations are the tail of h.
        self_repr = h.narrow(view.self_start, view.num_outputs)
        out = self_repr.matmul(self.w_self) + nbr_aggr.matmul(self.w_nbr)
        if self.bias is not None:
            out = out + self.bias
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        return out


class PoolGraphSageLayer(Module):
    """GraphSage with the max-pooling aggregator (Hamilton et al., eq. 3).

    Each neighbor representation passes through a learned projection + ReLU
    and the element-wise *max* over the neighbor segment replaces the mean.
    Exercises the segment-max reduction path of the DENSE layout.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: Optional[str] = "relu",
                 dropout: float = 0.0, pool_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dropout = dropout
        pool_dim = pool_dim or in_dim
        self.w_pool = self.register_parameter("w_pool", glorot_uniform((in_dim, pool_dim), rng))
        self.b_pool = self.register_parameter("b_pool", zeros_init((pool_dim,)))
        self.w_self = self.register_parameter("w_self", glorot_uniform((in_dim, out_dim), rng))
        self.w_nbr = self.register_parameter("w_nbr", glorot_uniform((pool_dim, out_dim), rng))
        self.bias = self.register_parameter("bias", zeros_init((out_dim,)))
        self._rng = rng or np.random.default_rng()

    def forward(self, h: Tensor, view: DenseLayerView) -> Tensor:
        h = F.dropout(h, self.dropout, self.training, self._rng)
        nbr_repr = h.index_select(view.repr_map)
        pooled_in = (nbr_repr.matmul(self.w_pool) + self.b_pool).relu()
        nbr_aggr = _segment_max(pooled_in, view.nbr_offsets, view.num_outputs)
        self_repr = h.narrow(view.self_start, view.num_outputs)
        out = self_repr.matmul(self.w_self) + nbr_aggr.matmul(self.w_nbr) + self.bias
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        return out


def _segment_max(values: Tensor, offsets: np.ndarray, num_segments: int) -> Tensor:
    """Differentiable per-segment elementwise max (zero for empty segments)."""
    n = values.data.shape[0]
    counts = F.segment_counts(np.asarray(offsets, dtype=np.int64), n)
    out_data = np.zeros((num_segments,) + values.data.shape[1:],
                        dtype=values.data.dtype)
    nonempty = counts > 0
    if n and nonempty.any():
        out_data[nonempty] = np.maximum.reduceat(
            values.data, np.asarray(offsets)[nonempty], axis=0)
    seg_ids = F.segment_ids_from_offsets(np.asarray(offsets), n)

    def backward(grad: np.ndarray) -> None:
        if not values.requires_grad:
            return
        # Route gradient to the arg-max entry of each segment/column.
        expanded = out_data[seg_ids]
        mask = values.data == expanded
        # Split ties evenly, mirroring Tensor.max.
        tie_counts = np.zeros_like(out_data)
        np.add.at(tie_counts, seg_ids, mask.astype(values.data.dtype))
        denom = np.maximum(tie_counts[seg_ids], 1.0)
        values._accumulate(grad[seg_ids] * mask / denom)

    return Tensor._make(out_data, (values,), backward)


class GINLayer(Module):
    """Graph Isomorphism Network layer (Xu et al. 2019).

    ``h_v' = MLP((1 + eps) * h_v + sum_u h_u)`` with a learnable eps —
    included as the expressiveness-oriented member of the layer zoo; runs on
    the same DENSE segment-sum kernel as GraphSage.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: Optional[str] = "relu",
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dropout = dropout
        self.eps = self.register_parameter("eps", zeros_init((1,)))
        self.w1 = self.register_parameter("w1", glorot_uniform((in_dim, out_dim), rng))
        self.b1 = self.register_parameter("b1", zeros_init((out_dim,)))
        self.w2 = self.register_parameter("w2", glorot_uniform((out_dim, out_dim), rng))
        self.b2 = self.register_parameter("b2", zeros_init((out_dim,)))
        self._rng = rng or np.random.default_rng()

    def forward(self, h: Tensor, view: DenseLayerView) -> Tensor:
        h = F.dropout(h, self.dropout, self.training, self._rng)
        nbr_repr = h.index_select(view.repr_map)
        nbr_sum = F.segment_sum(nbr_repr, view.nbr_offsets, view.num_outputs)
        self_repr = h.narrow(view.self_start, view.num_outputs)
        combined = self_repr * (1.0 + self.eps) + nbr_sum
        out = (combined.matmul(self.w1) + self.b1).relu().matmul(self.w2) + self.b2
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        return out


class GCNLayer(Module):
    """Kipf-Welling style convolution adapted to sampled neighborhoods.

    Uses symmetric-free normalization ``(h_v + sum_u h_u) / (|N(v)| + 1)``
    followed by a single weight matrix, the standard sampled-GCN variant.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: Optional[str] = "relu",
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.dropout = dropout
        self.weight = self.register_parameter("weight", glorot_uniform((in_dim, out_dim), rng))
        self.bias = self.register_parameter("bias", zeros_init((out_dim,)))
        self._rng = rng or np.random.default_rng()

    def forward(self, h: Tensor, view: DenseLayerView) -> Tensor:
        h = F.dropout(h, self.dropout, self.training, self._rng)
        nbr_repr = h.index_select(view.repr_map)
        nbr_sum = F.segment_sum(nbr_repr, view.nbr_offsets, view.num_outputs)
        self_repr = h.narrow(view.self_start, view.num_outputs)
        counts = F.segment_counts(view.nbr_offsets, len(view.repr_map)).astype(np.float32)
        norm = Tensor(1.0 / (counts + 1.0)[:, None])
        out = (nbr_sum + self_repr) * norm
        out = out.matmul(self.weight) + self.bias
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        return out


class GATLayer(Module):
    """Graph attention layer (Velickovic et al. 2018) over a DENSE view.

    Attention coefficients are computed per (node, neighbor) pair and
    normalized with a *segment softmax* over each node's contiguous neighbor
    run; the node's self-loop participates in the softmax, matching standard
    GAT. Multi-head attention averages head outputs (the paper uses GAT as its
    "computationally expensive" model in Table 5).
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 1,
                 activation: Optional[str] = "relu", dropout: float = 0.0,
                 negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.activation = activation
        self.dropout = dropout
        self.negative_slope = negative_slope
        rng = rng or np.random.default_rng()
        self._rng = rng
        self.weights = []
        self.attn_l = []
        self.attn_r = []
        for head in range(num_heads):
            self.weights.append(self.register_parameter(f"w{head}", glorot_uniform((in_dim, out_dim), rng)))
            self.attn_l.append(self.register_parameter(f"al{head}", glorot_uniform((out_dim, 1), rng)))
            self.attn_r.append(self.register_parameter(f"ar{head}", glorot_uniform((out_dim, 1), rng)))
        self.bias = self.register_parameter("bias", zeros_init((out_dim,)))

    def _head(self, h: Tensor, view: DenseLayerView, head: int) -> Tensor:
        z = h.matmul(self.weights[head])
        z_self = z.narrow(view.self_start, view.num_outputs)
        z_nbr = z.index_select(view.repr_map)

        # a_l . z_j for neighbors, a_r . z_i for the destination node.
        s_nbr = z_nbr.matmul(self.attn_l[head]).reshape(len(view.repr_map))
        s_self_l = z_self.matmul(self.attn_l[head]).reshape(view.num_outputs)
        s_self_r = z_self.matmul(self.attn_r[head]).reshape(view.num_outputs)

        seg_ids = F.segment_ids_from_offsets(view.nbr_offsets, len(view.repr_map))
        e_nbr = (s_nbr + s_self_r.index_select(seg_ids)).leaky_relu(self.negative_slope)
        e_self = (s_self_l + s_self_r).leaky_relu(self.negative_slope)

        # Stable softmax over {neighbors of v} ∪ {v} per segment.
        seg_max = F.segment_max_detached(e_nbr.data, view.nbr_offsets)
        seg_max = np.maximum(seg_max, e_self.data)
        exp_nbr = (e_nbr - Tensor(seg_max[seg_ids])).exp()
        exp_self = (e_self - Tensor(seg_max)).exp()
        denom = F.segment_sum(exp_nbr, view.nbr_offsets, view.num_outputs) + exp_self
        denom = denom.clamp_min(1e-12)

        alpha_nbr = exp_nbr / denom.index_select(seg_ids)
        alpha_self = exp_self / denom
        weighted = z_nbr * alpha_nbr.reshape(len(view.repr_map), 1)
        aggr = F.segment_sum(weighted, view.nbr_offsets, view.num_outputs)
        return aggr + z_self * alpha_self.reshape(view.num_outputs, 1)

    def forward(self, h: Tensor, view: DenseLayerView) -> Tensor:
        h = F.dropout(h, self.dropout, self.training, self._rng)
        out = self._head(h, view, 0)
        for head in range(1, self.num_heads):
            out = out + self._head(h, view, head)
        if self.num_heads > 1:
            out = out * (1.0 / self.num_heads)
        out = out + self.bias
        if self.activation == "relu":
            out = out.relu()
        elif self.activation == "tanh":
            out = out.tanh()
        return out


LAYER_REGISTRY = {
    "graphsage": GraphSageLayer,
    "graphsage-pool": PoolGraphSageLayer,
    "gcn": GCNLayer,
    "gat": GATLayer,
    "gin": GINLayer,
}


def make_layer(kind: str, in_dim: int, out_dim: int, **kwargs) -> Module:
    """Construct a GNN layer by registry name (``graphsage``/``gcn``/``gat``)."""
    try:
        cls = LAYER_REGISTRY[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown GNN layer kind {kind!r}; expected one of {sorted(LAYER_REGISTRY)}")
    return cls(in_dim, out_dim, **kwargs)
