"""Loss functions for node classification and link prediction training.

Link prediction follows the Marius/DGL-KE formulation: every positive edge is
scored against a pool of negative destination (and optionally source) nodes,
and the loss is softmax cross entropy with the positive in class 0 — i.e. a
ranking loss over ``1 + num_negatives`` candidates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor, concat

__all__ = ["softmax_cross_entropy", "link_prediction_loss", "bce_with_logits"]


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross entropy over integer class targets."""
    return F.cross_entropy(logits, targets)


def link_prediction_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Ranking loss: positive edge vs. its negative candidates.

    Parameters
    ----------
    pos_scores:
        Shape ``(batch,)`` — score of each true edge.
    neg_scores:
        Shape ``(batch, num_negatives)`` — scores against negative candidates.
    """
    batch = pos_scores.data.shape[0]
    logits = concat([pos_scores.reshape(batch, 1), neg_scores], axis=1)
    targets = np.zeros(batch, dtype=np.int64)
    return F.cross_entropy(logits, targets)


def _softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))`` with exact gradient (sigmoid)."""
    out_data = np.logaddexp(0.0, x.data).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 / (1.0 + np.exp(-x.data))))

    return Tensor._make(out_data, (x,), backward)


def bce_with_logits(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Numerically stable binary cross entropy on raw scores.

    Uses the identity ``BCE(x, y) = softplus(x) - x * y`` (mean reduction).
    """
    labels_t = Tensor(np.asarray(labels, dtype=np.float32))
    return (_softplus(logits) - logits * labels_t).mean()
