"""NumPy neural-network substrate: autograd tensors, GNN layers, optimizers.

This package replaces the PyTorch dependency of the original MariusGNN with a
self-contained reverse-mode autodiff engine exposing the dense kernel set
(Algorithm 3 of the paper): gather (``index_select``), ``segment_sum`` /
``segment_softmax``, and matmul.
"""

from . import functional
from .decoders import (ClassificationHead, ComplExDecoder, DistMult,
                       DotProduct, TransE, make_decoder)
from .init import glorot_uniform, kaiming_uniform, uniform_embedding, zeros_init
from .layers import (DenseLayerView, GATLayer, GCNLayer, GINLayer,
                     GraphSageLayer, Linear, PoolGraphSageLayer, make_layer)
from .loss import bce_with_logits, link_prediction_loss, softmax_cross_entropy
from .module import Module, ModuleList
from .optim import SGD, Adagrad, Adam, Optimizer, RowAdagrad, make_optimizer
from .tensor import Tensor, concat, no_grad, ones, tensor, zeros

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "concat", "no_grad",
    "Module", "ModuleList", "functional",
    "Linear", "GraphSageLayer", "PoolGraphSageLayer", "GCNLayer", "GATLayer",
    "GINLayer", "DenseLayerView", "make_layer",
    "DistMult", "DotProduct", "ComplExDecoder", "TransE", "ClassificationHead", "make_decoder",
    "softmax_cross_entropy", "link_prediction_loss", "bce_with_logits",
    "SGD", "Adagrad", "Adam", "RowAdagrad", "Optimizer", "make_optimizer",
    "glorot_uniform", "kaiming_uniform", "uniform_embedding", "zeros_init",
]
