"""Parameter initializers (Glorot/Kaiming/uniform) used across the GNN stack."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor


def glorot_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> Tensor:
    """Glorot/Xavier uniform initialization, the default for GNN weight matrices."""
    rng = rng or np.random.default_rng()
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return Tensor(rng.uniform(-limit, limit, size=shape).astype(np.float32))


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> Tensor:
    rng = rng or np.random.default_rng()
    fan_in = shape[0]
    limit = float(np.sqrt(3.0 / fan_in))
    return Tensor(rng.uniform(-limit, limit, size=shape).astype(np.float32))


def uniform_embedding(shape: Tuple[int, ...], scale: Optional[float] = None,
                      rng: Optional[np.random.Generator] = None) -> Tensor:
    """Uniform init for embedding tables; default scale matches Marius (1/dim)."""
    rng = rng or np.random.default_rng()
    if scale is None:
        scale = 1.0 / shape[-1]
    return Tensor(rng.uniform(-scale, scale, size=shape).astype(np.float32))


def zeros_init(shape: Tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32))
