"""A small reverse-mode automatic differentiation engine over NumPy.

This module is the compute substrate of the reproduction. The original
MariusGNN implementation runs its forward pass on PyTorch GPU tensors; the
paper's algorithmic contribution (Algorithms 1-3) only requires a tensor
library with dense kernels for ``matmul``, ``index_select`` (gather) and
``segment_sum``. :class:`Tensor` provides exactly that op set with reverse-mode
gradients so the GNN layers in :mod:`repro.nn.layers` transfer verbatim from
the paper's pseudocode.

Design notes
------------
* Tensors wrap ``numpy.ndarray`` data (float32 by default) and record a
  backward closure plus parent tensors, forming a dynamic tape.
* ``backward()`` runs a topological sort of the tape and accumulates
  gradients into ``.grad`` of leaf tensors with ``requires_grad=True``.
* Broadcasting is supported for elementwise ops; gradients are un-broadcast
  by summing over broadcast axes.
* Gather gradients use ``np.add.at`` (scatter-add), which is the same
  semantics as PyTorch's ``index_select`` backward.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

_grad_enabled = True


class no_grad:
    """Context manager that disables gradient recording (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    return _grad_enabled


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array data. Converted to ``float32`` unless already a float array.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):  # defensive: unwrap
            data = data.data
        if isinstance(data, np.ndarray) and data.dtype in (np.float32, np.float64):
            self.data = data
        else:
            self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._backward = _backward
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _backward=backward, _parents=parents)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (for scalar losses just call
        ``loss.backward()``).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)
        # Topological order over the tape.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out, axis=axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient among ties, matching NumPy-style subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer ``indices`` (first axis). Backward is scatter-add."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                np.add.at(acc, indices, grad)
                self._accumulate(acc)

        return Tensor._make(out_data, (self,), backward)

    def narrow(self, start: int, length: int) -> "Tensor":
        """Contiguous row slice ``[start : start+length]`` along the first axis."""
        out_data = self.data[start : start + length]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                acc[start : start + length] = grad
                self._accumulate(acc)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        if isinstance(key, slice) and (key.step is None or key.step == 1):
            start = key.start or 0
            if start < 0:
                start += self.data.shape[0]
            stop = key.stop if key.stop is not None else self.data.shape[0]
            if stop < 0:
                stop += self.data.shape[0]
            return self.narrow(start, max(0, stop - start))
        if isinstance(key, (np.ndarray, list)):
            return self.index_select(np.asarray(key))
        raise TypeError(f"Unsupported Tensor index: {key!r}")

    # ------------------------------------------------------------------
    # Nonlinearities (pointwise)
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(self.data > 0, 1.0, negative_slope).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def clamp_min(self, lo: float) -> "Tensor":
        out_data = np.maximum(self.data, lo)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data >= lo))

        return Tensor._make(out_data, (self,), backward)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (convenience, mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(stop))
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack_params(params: Iterable[Tensor]) -> List[Tensor]:
    """Flatten an iterable of parameters into a list (helper for optimizers)."""
    return list(params)
