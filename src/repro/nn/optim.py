"""Optimizers: SGD, Adam, Adagrad, plus a row-sparse Adagrad for embeddings.

MariusGNN (like Marius) keeps learnable base node representations in a large
lookup table and updates only the rows touched by each mini batch, with
per-row Adagrad state stored alongside the partitioned table. The
:class:`RowAdagrad` class implements that update rule for use by the storage
layer (the dense optimizers handle the GNN weights on the "GPU").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no parameters requiring grad")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Snapshot support: every optimizer can export/restore its slot state
    # as a flat dict of numpy arrays (what the checkpoint subsystem stores).
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        expected = self.state_dict()
        missing = set(expected) - set(state)
        if missing:
            raise KeyError(f"optimizer state missing entries: {sorted(missing)}")

    @staticmethod
    def _load_slots(slots: List[np.ndarray], state: Dict[str, np.ndarray],
                    prefix: str) -> None:
        for i, slot in enumerate(slots):
            value = state[f"{prefix}{i}"]
            if slot.shape != value.shape:
                raise ValueError(
                    f"optimizer slot {prefix}{i} shape mismatch: "
                    f"{slot.shape} vs {value.shape}")
            slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data -= self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        if self._velocity is None:
            return {}
        return {f"velocity_{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        if self._velocity is not None:
            self._load_slots(self._velocity, state, "velocity_")


class Adagrad(Optimizer):
    """Adagrad (the optimizer Marius uses for embedding training)."""

    def __init__(self, params: Iterable[Tensor], lr: float, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self._accum[i] += p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(self._accum[i]) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {f"accum_{i}": a.copy() for i, a in enumerate(self._accum)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._load_slots(self._accum, state, "accum_")


class Adam(Optimizer):
    """Adam with bias correction (used for GNN weights)."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {"t": np.asarray(self._t, dtype=np.int64)}
        for i, m in enumerate(self._m):
            out[f"m_{i}"] = m.copy()
        for i, v in enumerate(self._v):
            out[f"v_{i}"] = v.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self._load_slots(self._m, state, "m_")
        self._load_slots(self._v, state, "v_")


class RowAdagrad:
    """Row-sparse Adagrad for learnable base representations.

    The caller gathers rows from the (possibly disk-backed) lookup table,
    computes gradients for just those rows, and calls :meth:`update` with the
    row indices. Optimizer state is an array parallel to the table, which the
    storage layer keeps partitioned next to the embeddings — the same layout
    Marius uses so optimizer state pages in and out with its partition.
    """

    def __init__(self, lr: float, eps: float = 1e-10) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.eps = eps

    def update(self, table: np.ndarray, state: np.ndarray,
               rows: np.ndarray, grads: np.ndarray) -> None:
        """Apply Adagrad to ``table[rows]`` in place.

        Duplicate rows in a batch are merged (gradient accumulation) before the
        state update so the result is independent of duplicate ordering.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return
        unique, inverse = np.unique(rows, return_inverse=True)
        if len(unique) != len(rows):
            merged = np.zeros((len(unique), grads.shape[1]), dtype=grads.dtype)
            np.add.at(merged, inverse, grads)
            grads = merged
            rows = unique
        state[rows] += grads**2
        table[rows] -= self.lr * grads / (np.sqrt(state[rows]) + self.eps)


OPTIMIZER_REGISTRY = {"sgd": SGD, "adagrad": Adagrad, "adam": Adam}


def make_optimizer(kind: str, params: Iterable[Tensor], lr: float, **kwargs) -> Optimizer:
    try:
        cls = OPTIMIZER_REGISTRY[kind.lower()]
    except KeyError:
        raise ValueError(f"unknown optimizer {kind!r}; expected one of {sorted(OPTIMIZER_REGISTRY)}")
    return cls(params, lr, **kwargs)
