"""Disk-backed partitioned node representation store.

Base vector representations are "stored sequentially in a lookup table split
into p physical partitions on disk" (paper Section 3). :class:`NodeStore`
implements that table with a real ``numpy.memmap`` file: partition ``i`` is
the contiguous row range given by the :class:`~repro.graph.partition.
PartitionScheme`, so loading a partition is one sequential read — the
property the auto-tuning rules in Section 6 rely on when comparing partition
size to the disk block size.

Learnable representations carry per-row Adagrad state in a second memmap that
pages in and out with its partition (as in Marius).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..graph.partition import PartitionScheme
from .io_stats import IOStats


class NodeStore:
    """Partitioned on-disk array of per-node vectors.

    Parameters
    ----------
    path:
        Backing file location (created/overwritten).
    scheme:
        Node-to-partition assignment; partitions are contiguous row ranges.
    dim:
        Vector dimension.
    learnable:
        If True, an Adagrad state file is kept alongside the table.
    stats:
        Shared :class:`IOStats` to account traffic against.
    """

    def __init__(self, path: os.PathLike, scheme: PartitionScheme, dim: int,
                 learnable: bool = True, stats: Optional[IOStats] = None) -> None:
        self.path = Path(path)
        self.scheme = scheme
        self.dim = int(dim)
        self.learnable = learnable
        self.stats = stats if stats is not None else IOStats()
        shape = (scheme.num_nodes, self.dim)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._table = np.memmap(self.path, dtype=np.float32, mode="w+", shape=shape)
        self._state: Optional[np.memmap] = None
        if learnable:
            state_path = self.path.with_suffix(self.path.suffix + ".state")
            self._state = np.memmap(state_path, dtype=np.float32, mode="w+", shape=shape)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.scheme.num_nodes

    @property
    def num_partitions(self) -> int:
        return self.scheme.num_partitions

    def partition_bytes(self, part: int) -> int:
        return self.scheme.partition_size(part) * self.dim * 4

    # ------------------------------------------------------------------
    def initialize(self, values: Optional[np.ndarray] = None,
                   scale: Optional[float] = None,
                   rng: Optional[np.random.Generator] = None) -> None:
        """Fill the table: either copy ``values`` or uniform-random init."""
        if values is not None:
            if values.shape != self._table.shape:
                raise ValueError(f"initializer shape {values.shape} != {self._table.shape}")
            self._table[:] = values.astype(np.float32)
        else:
            rng = rng or np.random.default_rng()
            if scale is None:
                scale = 1.0 / self.dim
            chunk = 1 << 16
            for start in range(0, self.num_nodes, chunk):
                stop = min(start + chunk, self.num_nodes)
                self._table[start:stop] = rng.uniform(
                    -scale, scale, size=(stop - start, self.dim)).astype(np.float32)
        self._table.flush()

    # ------------------------------------------------------------------
    def read_partition(self, part: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Read one partition (and its optimizer state) into fresh RAM arrays."""
        lo, hi = int(self.scheme.boundaries[part]), int(self.scheme.boundaries[part + 1])
        data = np.array(self._table[lo:hi])
        self.stats.record_read(data.nbytes)
        self.stats.partition_loads += 1
        state = None
        if self._state is not None:
            state = np.array(self._state[lo:hi])
            self.stats.record_read(state.nbytes)
        return data, state

    def write_partition(self, part: int, data: np.ndarray,
                        state: Optional[np.ndarray] = None) -> None:
        """Write a partition (and optimizer state) back to disk."""
        lo, hi = int(self.scheme.boundaries[part]), int(self.scheme.boundaries[part + 1])
        if data.shape != (hi - lo, self.dim):
            raise ValueError(f"partition {part} expects shape {(hi - lo, self.dim)}, got {data.shape}")
        self._table[lo:hi] = data
        self.stats.record_write(data.nbytes)
        self.stats.partition_evictions += 1
        if state is not None:
            if self._state is None:
                raise ValueError("store has no optimizer state file")
            self._state[lo:hi] = state
            self.stats.record_write(state.nbytes)

    # ------------------------------------------------------------------
    def read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Direct (unbuffered) row gather — used only for evaluation."""
        rows = np.asarray(rows, dtype=np.int64)
        data = np.array(self._table[rows])
        self.stats.record_read(data.nbytes)
        return data

    def read_all(self) -> np.ndarray:
        """Load the entire table (in-memory training mode)."""
        data = np.array(self._table)
        self.stats.record_read(data.nbytes)
        return data

    def read_all_state(self) -> Optional[np.ndarray]:
        """Full optimizer-state table (``None`` for fixed-feature stores)."""
        if self._state is None:
            return None
        data = np.array(self._state)
        self.stats.record_read(data.nbytes)
        return data

    def restore(self, table: np.ndarray,
                state: Optional[np.ndarray] = None) -> None:
        """Overwrite the whole store from a snapshot's table (+ state) copy.

        The workdir memmaps are scratch once checkpointing is on — a resume
        rewrites them wholesale from the snapshot, so partition writes torn
        by a crash after the snapshot cannot leak into training.
        """
        if table.shape != self._table.shape:
            raise ValueError(
                f"restore shape {table.shape} != store shape {self._table.shape}")
        self._table[:] = table
        self.stats.record_write(self._table.nbytes)
        if state is not None:
            if self._state is None:
                raise ValueError("store has no optimizer state file")
            if state.shape != self._state.shape:
                raise ValueError(
                    f"restore state shape {state.shape} != {self._state.shape}")
            self._state[:] = state
            self.stats.record_write(self._state.nbytes)
        self.flush()

    def fingerprint(self) -> str:
        """Layout identity (not contents): partition boundaries + dim.

        Snapshots record this so a resume against a store partitioned
        differently (or a different graph size) is rejected up front.
        """
        crc = zlib.crc32(np.ascontiguousarray(self.scheme.boundaries).tobytes())
        learnable = 1 if self._state is not None else 0
        return f"node:{self.num_nodes}:{self.dim}:{learnable}:{crc:08x}"

    def flush(self) -> None:
        self._table.flush()
        if self._state is not None:
            self._state.flush()

    def close(self) -> None:
        self.flush()
        # memmaps are released by dropping references
        del self._table
        if self._state is not None:
            del self._state
            self._state = None
