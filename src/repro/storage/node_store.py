"""Disk-backed partitioned node representation store.

Base vector representations are "stored sequentially in a lookup table split
into p physical partitions on disk" (paper Section 3). :class:`NodeStore`
implements that table with a real ``numpy.memmap`` file: partition ``i`` is
the contiguous row range given by the :class:`~repro.graph.partition.
PartitionScheme`, so loading a partition is one sequential read — the
property the auto-tuning rules in Section 6 rely on when comparing partition
size to the disk block size.

Learnable representations carry per-row Adagrad state in a second memmap that
pages in and out with its partition (as in Marius).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from ..graph.partition import PartitionScheme
from .io_stats import IOStats


class NodeStore:
    """Partitioned on-disk array of per-node vectors.

    Parameters
    ----------
    path:
        Backing file location (created/overwritten).
    scheme:
        Node-to-partition assignment; partitions are contiguous row ranges.
    dim:
        Vector dimension.
    learnable:
        If True, an Adagrad state file is kept alongside the table.
    stats:
        Shared :class:`IOStats` to account traffic against.
    """

    def __init__(self, path: os.PathLike, scheme: PartitionScheme, dim: int,
                 learnable: bool = True, stats: Optional[IOStats] = None) -> None:
        self.path = Path(path)
        self.scheme = scheme
        self.dim = int(dim)
        self.learnable = learnable
        self.stats = stats if stats is not None else IOStats()
        shape = (scheme.num_nodes, self.dim)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._table = np.memmap(self.path, dtype=np.float32, mode="w+", shape=shape)
        self._state: Optional[np.memmap] = None
        if learnable:
            state_path = self.path.with_suffix(self.path.suffix + ".state")
            self._state = np.memmap(state_path, dtype=np.float32, mode="w+", shape=shape)

    @classmethod
    def open(cls, path: os.PathLike, scheme: PartitionScheme, dim: int,
             learnable: bool = True, stats: Optional[IOStats] = None,
             truncate: bool = False) -> "NodeStore":
        """Reattach to an existing table file without overwriting it
        (stream-workdir resume). The file must match ``scheme`` x ``dim``;
        with ``truncate=True`` a *larger* file is cut back to the scheme's
        size — node growth is append-only, so rows past the target are
        exactly the post-snapshot additions a resume discards. Contents
        are validated downstream by the resuming trainer's snapshot
        fingerprints."""
        self = cls.__new__(cls)
        self.path = Path(path)
        self.scheme = scheme
        self.dim = int(dim)
        self.learnable = learnable
        self.stats = stats if stats is not None else IOStats()
        shape = (scheme.num_nodes, self.dim)
        expected = shape[0] * shape[1] * 4
        paths = [self.path]
        state_path = self.path.with_suffix(self.path.suffix + ".state")
        if learnable:
            paths.append(state_path)
        for target in paths:
            actual = target.stat().st_size
            if actual > expected and truncate:
                with open(target, "r+b") as fh:
                    fh.truncate(expected)
                actual = expected
            if actual != expected:
                raise ValueError(f"table file {target} is {actual} bytes, "
                                 f"scheme x dim expects {expected}")
        self._table = np.memmap(self.path, dtype=np.float32, mode="r+",
                                shape=shape)
        self._state = None
        if learnable:
            self._state = np.memmap(state_path, dtype=np.float32, mode="r+",
                                    shape=shape)
        return self

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.scheme.num_nodes

    @property
    def num_partitions(self) -> int:
        return self.scheme.num_partitions

    def partition_bytes(self, part: int) -> int:
        return self.scheme.partition_size(part) * self.dim * 4

    # ------------------------------------------------------------------
    def initialize(self, values: Optional[np.ndarray] = None,
                   scale: Optional[float] = None,
                   rng: Optional[np.random.Generator] = None) -> None:
        """Fill the table: either copy ``values`` or uniform-random init."""
        if values is not None:
            if values.shape != self._table.shape:
                raise ValueError(f"initializer shape {values.shape} != {self._table.shape}")
            self._table[:] = values.astype(np.float32)
        else:
            rng = rng or np.random.default_rng()
            if scale is None:
                scale = 1.0 / self.dim
            chunk = 1 << 16
            for start in range(0, self.num_nodes, chunk):
                stop = min(start + chunk, self.num_nodes)
                self._table[start:stop] = rng.uniform(
                    -scale, scale, size=(stop - start, self.dim)).astype(np.float32)
        self._table.flush()

    # ------------------------------------------------------------------
    def read_partition(self, part: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Read one partition (and its optimizer state) into fresh RAM arrays."""
        lo, hi = int(self.scheme.boundaries[part]), int(self.scheme.boundaries[part + 1])
        data = np.array(self._table[lo:hi])
        self.stats.record_read(data.nbytes)
        self.stats.partition_loads += 1
        state = None
        if self._state is not None:
            state = np.array(self._state[lo:hi])
            self.stats.record_read(state.nbytes)
        return data, state

    def write_partition(self, part: int, data: np.ndarray,
                        state: Optional[np.ndarray] = None) -> None:
        """Write a partition (and optimizer state) back to disk."""
        lo, hi = int(self.scheme.boundaries[part]), int(self.scheme.boundaries[part + 1])
        if data.shape != (hi - lo, self.dim):
            raise ValueError(f"partition {part} expects shape {(hi - lo, self.dim)}, got {data.shape}")
        self._table[lo:hi] = data
        self.stats.record_write(data.nbytes)
        self.stats.partition_evictions += 1
        if state is not None:
            if self._state is None:
                raise ValueError("store has no optimizer state file")
            self._state[lo:hi] = state
            self.stats.record_write(state.nbytes)

    def write_span(self, start_row: int, data: np.ndarray,
                   state: Optional[np.ndarray] = None) -> None:
        """Write a contiguous row span (buffer re-sync after table growth:
        the in-buffer copy of a grown partition covers only its old rows)."""
        stop = start_row + len(data)
        if start_row < 0 or stop > self.num_nodes:
            raise ValueError(f"span [{start_row}, {stop}) outside the table")
        self._table[start_row:stop] = data
        self.stats.record_write(data.nbytes)
        if state is not None:
            if self._state is None:
                raise ValueError("store has no optimizer state file")
            self._state[start_row:stop] = state
            self.stats.record_write(state.nbytes)

    # ------------------------------------------------------------------
    def read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Direct (unbuffered) row gather — used only for evaluation."""
        rows = np.asarray(rows, dtype=np.int64)
        data = np.array(self._table[rows])
        self.stats.record_read(data.nbytes)
        return data

    def read_all(self) -> np.ndarray:
        """Load the entire table (in-memory training mode)."""
        data = np.array(self._table)
        self.stats.record_read(data.nbytes)
        return data

    def read_all_state(self) -> Optional[np.ndarray]:
        """Full optimizer-state table (``None`` for fixed-feature stores)."""
        if self._state is None:
            return None
        data = np.array(self._state)
        self.stats.record_read(data.nbytes)
        return data

    def restore(self, table: np.ndarray,
                state: Optional[np.ndarray] = None) -> None:
        """Overwrite the whole store from a snapshot's table (+ state) copy.

        The workdir memmaps are scratch once checkpointing is on — a resume
        rewrites them wholesale from the snapshot, so partition writes torn
        by a crash after the snapshot cannot leak into training.
        """
        if table.shape != self._table.shape:
            raise ValueError(
                f"restore shape {table.shape} != store shape {self._table.shape}")
        self._table[:] = table
        self.stats.record_write(self._table.nbytes)
        if state is not None:
            if self._state is None:
                raise ValueError("store has no optimizer state file")
            if state.shape != self._state.shape:
                raise ValueError(
                    f"restore state shape {state.shape} != {self._state.shape}")
            self._state[:] = state
            self.stats.record_write(self._state.nbytes)
        self.flush()

    def grow(self, new_scheme: "PartitionScheme", values: np.ndarray,
             state: Optional[np.ndarray] = None) -> None:
        """Append new node rows: the streaming node-table growth path.

        ``new_scheme`` must extend this store's scheme by exactly
        ``len(values)`` nodes under the last-partition growth rule
        (:meth:`PartitionScheme.extended`), so existing rows keep their
        offsets and the append is a pure file extension: flush, release the
        memmap, ``truncate`` the backing file to the new size, remap, and
        write the new rows. Callers holding views into the old memmap (the
        partition buffer) must re-sync afterwards.
        """
        extra = new_scheme.num_nodes - self.num_nodes
        if extra != len(values):
            raise ValueError(f"scheme grows by {extra} nodes but {len(values)} "
                             f"rows were supplied")
        if (new_scheme.num_partitions != self.scheme.num_partitions
                or not np.array_equal(new_scheme.boundaries[:-1],
                                      self.scheme.boundaries[:-1])):
            raise ValueError("grow supports only last-partition extension")
        if values.shape != (extra, self.dim):
            raise ValueError(f"new rows must be ({extra}, {self.dim}), "
                             f"got {values.shape}")
        if extra == 0:
            return
        lo = self.num_nodes
        self.scheme = new_scheme
        shape = (new_scheme.num_nodes, self.dim)
        self._table = self._extend_memmap(self.path, self._table, shape)
        self._table[lo:] = values.astype(np.float32)
        self.stats.record_write(values.nbytes)
        if self._state is not None:
            state_path = self.path.with_suffix(self.path.suffix + ".state")
            self._state = self._extend_memmap(state_path, self._state, shape)
            self._state[lo:] = (state.astype(np.float32) if state is not None
                                else 0.0)
        self.flush()

    @staticmethod
    def _extend_memmap(path: Path, mm: np.memmap,
                       shape: Tuple[int, int]) -> np.memmap:
        mm.flush()
        del mm
        with open(path, "r+b") as fh:
            fh.truncate(shape[0] * shape[1] * 4)
            fh.flush()
            os.fsync(fh.fileno())
        return np.memmap(path, dtype=np.float32, mode="r+", shape=shape)

    def fingerprint(self) -> str:
        """Layout identity (not contents): partition boundaries + dim.

        Snapshots record this so a resume against a store partitioned
        differently (or a different graph size) is rejected up front.
        """
        crc = zlib.crc32(np.ascontiguousarray(self.scheme.boundaries).tobytes())
        learnable = 1 if self._state is not None else 0
        return f"node:{self.num_nodes}:{self.dim}:{learnable}:{crc:08x}"

    def flush(self) -> None:
        self._table.flush()
        if self._state is not None:
            self._state.flush()

    def close(self) -> None:
        self.flush()
        # memmaps are released by dropping references
        del self._table
        if self._state is not None:
            del self._state
            self._state = None
