"""Disk-backed edge bucket store.

The edge list is "organized according to edge buckets ... stored sequentially
on disk" (paper Section 3). :class:`EdgeBucketStore` materializes the
bucket-major edge array in a memmap file and serves contiguous bucket reads
with IO accounting, so the smallest-read analysis of Section 6 (edge bucket
size shrinking quadratically in p) is measurable for real.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.edge_list import Graph
from ..graph.partition import EdgeBuckets, PartitionScheme
from .atomic import atomic_write, fsync_dir
from .io_stats import IOStats, crc_file


def _crc_chunks(arrays) -> int:
    """Streamed CRC-32 over int64 array chunks (never the whole file at
    once — bucket files can be table-sized)."""
    crc = 0
    for arr in arrays:
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        step = max(1, (1 << 20) // max(arr.shape[-1] * 8, 1))
        for start in range(0, len(arr), step):
            crc = zlib.crc32(arr[start : start + step].tobytes(), crc)
    return crc


class EdgeBucketStore:
    """Edge buckets written bucket-major to a single on-disk file.

    ``fault_hook`` (test-only) is called with a named crash point around
    the compaction commit sequence so the fault-injection suite can kill
    the process at each boundary.
    """

    def __init__(self, path: os.PathLike, graph: Graph, scheme: PartitionScheme,
                 stats: Optional[IOStats] = None) -> None:
        self.path = Path(path)
        self.scheme = scheme
        self.stats = stats if stats is not None else IOStats()
        self.fault_hook = None
        self.compacted_seq = 0
        self.num_relations = graph.num_relations
        self.has_relations = graph.rel is not None
        buckets = EdgeBuckets(graph, scheme)
        self.bucket_offsets = buckets.bucket_offsets
        width = 3 if self.has_relations else 2
        self.width = width
        flat = np.empty((buckets.num_edges, width), dtype=np.int64)
        flat[:, 0] = buckets.src
        flat[:, -1] = buckets.dst
        if self.has_relations:
            flat[:, 1] = buckets.rel
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._edges = np.memmap(self.path, dtype=np.int64, mode="w+", shape=flat.shape)
        self._edges[:] = flat
        self._edges.flush()
        self.num_edges = len(flat)
        self._file_crc = _crc_chunks(iter([flat]))
        self._write_layout()

    def _fire(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _layout_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".layout.npz")

    def _staged_layout_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".layout.next")

    def _layout_arrays(self, offsets: np.ndarray, crc: int,
                       compacted_seq: int) -> dict:
        return dict(bucket_offsets=offsets,
                    width=np.int64(self.width),
                    num_relations=np.int64(self.num_relations),
                    has_relations=np.int64(1 if self.has_relations else 0),
                    file_crc=np.int64(crc),
                    compacted_seq=np.int64(compacted_seq))

    def _write_layout(self) -> None:
        """Persist the bucket offsets (they live only in memory otherwise)
        so :meth:`open` can reattach to the file after a process restart.

        The layout also records a CRC of the bucket file's bytes and the
        delta-log sequence number the file covers (``compacted_seq``):
        the CRC lets :meth:`open` detect a sidecar that describes a
        different file instead of serving bytes under wrong offsets, and
        ``compacted_seq`` is the durable compaction horizon the WAL
        replays from.
        """
        with atomic_write(self._layout_path()) as fh:
            np.savez(fh, **self._layout_arrays(self.bucket_offsets,
                                               self._file_crc,
                                               self.compacted_seq))

    @classmethod
    def open(cls, path: os.PathLike, scheme: PartitionScheme,
             stats: Optional[IOStats] = None) -> "EdgeBucketStore":
        """Reattach to an existing bucket file (stream-workdir resume).

        Reads the layout sidecar written at construction and after every
        compaction, and verifies the sidecar's recorded CRC against the
        bucket file's actual bytes: a crash between a compaction's
        bucket-file rename and its sidecar update leaves a sidecar
        describing the *previous* file, and serving the new bytes under
        the old offsets would silently return garbage edges — the CRC
        check turns that into a loud error instead.
        """
        self = cls.__new__(cls)
        self.path = Path(path)
        self.scheme = scheme
        self.stats = stats if stats is not None else IOStats()
        self.fault_hook = None
        self._heal_staged_layout()
        with np.load(self._layout_path()) as layout:
            self.bucket_offsets = layout["bucket_offsets"]
            self.width = int(layout["width"])
            self.num_relations = int(layout["num_relations"])
            self.has_relations = bool(layout["has_relations"])
            self._file_crc = int(layout["file_crc"])
            self.compacted_seq = (int(layout["compacted_seq"])
                                  if "compacted_seq" in layout.files else 0)
        if scheme.num_partitions ** 2 + 1 != len(self.bucket_offsets):
            raise ValueError(
                f"bucket file has {len(self.bucket_offsets) - 1} buckets, "
                f"scheme expects {scheme.num_partitions ** 2}")
        if crc_file(self.path) != self._file_crc:
            raise ValueError(
                f"bucket file {self.path} does not match its layout sidecar "
                f"(likely a crash between a compaction's rename and the "
                f"sidecar update); re-preprocess the stream workdir")
        self.num_edges = int(self.bucket_offsets[-1])
        self._edges = np.memmap(self.path, dtype=np.int64, mode="r+",
                                shape=(max(self.num_edges, 1), self.width))
        return self

    def _heal_staged_layout(self) -> None:
        """Resolve an interrupted compaction commit.

        :meth:`rewrite_buckets` stages the *new* layout as
        ``<path>.layout.next`` before renaming the new bucket file into
        place, and promotes it to the live sidecar afterwards. A crash in
        between leaves the staged sidecar on disk; whether the bucket-file
        rename happened decides which side of the commit point we are on:

        * staged CRC matches the bucket file → the rename happened, the
          compaction is durable — promote the staged sidecar (this also
          commits its ``compacted_seq`` horizon, so WAL replay does not
          double-apply events the compaction already merged);
        * staged CRC does not match → the rename never happened, the old
          file is still live — discard the staged sidecar.
        """
        staged = self._staged_layout_path()
        if not staged.exists():
            return
        try:
            with np.load(staged) as layout:
                staged_crc = int(layout["file_crc"])
        except Exception:
            staged.unlink(missing_ok=True)
            return
        if self.path.exists() and crc_file(self.path) == staged_crc:
            os.rename(staged, self._layout_path())
            fsync_dir(self.path.parent)
        else:
            staged.unlink(missing_ok=True)

    @property
    def num_partitions(self) -> int:
        return self.scheme.num_partitions

    def bucket_size(self, i: int, j: int) -> int:
        p = self.num_partitions
        b = i * p + j
        return int(self.bucket_offsets[b + 1] - self.bucket_offsets[b])

    def bucket_bytes(self, i: int, j: int) -> int:
        return self.bucket_size(i, j) * self.width * 8

    def read_bucket(self, i: int, j: int, record_io: bool = True) -> np.ndarray:
        """One contiguous disk read returning bucket (i, j) edges."""
        p = self.num_partitions
        b = i * p + j
        lo, hi = int(self.bucket_offsets[b]), int(self.bucket_offsets[b + 1])
        data = np.array(self._edges[lo:hi])
        if record_io:
            self.stats.record_read(data.nbytes)
        return data

    def bucket_endpoints(self, i: int, j: int,
                         record_io: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket ``(i, j)``'s ``(src, dst)`` endpoint arrays — the bucket
        source of a :class:`~repro.graph.csr.PartitionedAdjacencyIndex`, so
        a buffer swap reads only the *new* partitions' buckets from disk
        instead of re-reading all c^2 resident buckets."""
        data = self.read_bucket(i, j, record_io=record_io)
        return data[:, 0], data[:, -1]

    def read_buckets(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        parts = [self.read_bucket(i, j) for i, j in pairs]
        if not parts:
            return np.empty((0, self.width), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def subgraph_for_partitions(self, partitions: Sequence[int],
                                record_io: bool = True) -> Graph:
        """In-memory subgraph over all pairwise buckets of ``partitions``.

        ``record_io=False`` rebuilds the subgraph from already-resident data
        (e.g. after only the training-example set X_i changed), skipping the
        disk accounting.
        """
        pairs = [(i, j) for i in partitions for j in partitions]
        if record_io:
            edges = self.read_buckets(pairs)
        else:
            chunks = []
            p = self.num_partitions
            for i, j in pairs:
                b = i * p + j
                lo, hi = int(self.bucket_offsets[b]), int(self.bucket_offsets[b + 1])
                chunks.append(np.array(self._edges[lo:hi]))
            edges = (np.concatenate(chunks, axis=0) if chunks
                     else np.empty((0, self.width), dtype=np.int64))
        return Graph(
            num_nodes=self.scheme.num_nodes,
            src=edges[:, 0],
            dst=edges[:, -1],
            rel=edges[:, 1] if self.has_relations else None,
            num_relations=self.num_relations,
        )

    def rewrite_buckets(self, bucket_arrays: Iterable[np.ndarray],
                        scheme: Optional[PartitionScheme] = None,
                        compacted_seq: Optional[int] = None) -> None:
        """Atomically replace the whole bucket-major file (compaction).

        ``bucket_arrays`` yields one ``(n, width)`` int64 array per bucket
        in ascending bucket-major ``(i, j)`` order — p*p arrays in total,
        which are **streamed** to the staging file one bucket at a time
        (peak extra memory is one composed bucket, never the edge set —
        compaction must not defeat the out-of-core design it serves).

        The commit protocol makes the swap crash-atomic *including* its
        metadata: the new bytes are staged as ``<path>.tmp`` (fsync), the
        new layout sidecar is staged as ``<path>.layout.next`` (fsync),
        and only then is the bucket file renamed into place — that rename
        is the commit point. The staged sidecar is promoted to the live
        name afterwards; a crash anywhere in between is resolved by
        :meth:`_heal_staged_layout` on the next :meth:`open`, so a reader
        never observes new bytes under old offsets, or a compaction
        horizon that disagrees with the file it describes.

        ``scheme`` replaces the store's partition scheme (node growth since
        construction); the partition *count* must be unchanged — buckets
        are identified by partition pair, not by node ranges.
        ``compacted_seq`` records the delta-log horizon the new file
        covers; it becomes durable at the same commit point as the bytes.
        """
        if scheme is not None:
            if scheme.num_partitions != self.num_partitions:
                raise ValueError("compaction cannot change the partition count")
            self.scheme = scheme
        if compacted_seq is None:
            compacted_seq = self.compacted_seq
        p = self.num_partitions
        offsets = np.zeros(p * p + 1, dtype=np.int64)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        count = 0
        crc = 0
        with open(tmp, "wb") as fh:
            for b, arr in enumerate(bucket_arrays):
                arr = np.ascontiguousarray(arr, dtype=np.int64)
                if arr.ndim != 2 or arr.shape[1] != self.width:
                    raise ValueError(f"bucket {b} has shape {arr.shape}, "
                                     f"expected (n, {self.width})")
                offsets[b + 1] = offsets[b] + len(arr)
                payload = arr.tobytes()
                fh.write(payload)
                crc = zlib.crc32(payload, crc)
                count += 1
            if count != p * p:
                raise ValueError(f"expected {p * p} buckets, got {count}")
            total = int(offsets[-1])
            if total == 0:     # keep the file mappable (one zero row)
                pad = np.zeros((1, self.width), dtype=np.int64).tobytes()
                fh.write(pad)
                crc = zlib.crc32(pad, crc)
            fh.flush()
            os.fsync(fh.fileno())
        self.stats.record_write(total * self.width * 8)
        with atomic_write(self._staged_layout_path()) as fh:
            np.savez(fh, **self._layout_arrays(offsets, crc, compacted_seq))
        self._fire("rewrite-staged")
        self._edges.flush()
        del self._edges
        os.rename(tmp, self.path)
        fsync_dir(self.path.parent)
        self._fire("rewrite-post-rename")
        os.rename(self._staged_layout_path(), self._layout_path())
        fsync_dir(self.path.parent)
        self._edges = np.memmap(self.path, dtype=np.int64, mode="r+",
                                shape=(max(total, 1), self.width))
        self.bucket_offsets = offsets
        self.num_edges = total
        self._file_crc = crc
        self.compacted_seq = int(compacted_seq)

    def fingerprint(self) -> str:
        """Layout identity: bucket offsets + edge width.

        The edge store is immutable between compactions, so the fingerprint
        also pins its contents' shape — a snapshot taken against one bucket
        layout refuses to resume against another, and a compaction (which
        changes the offsets) deliberately invalidates older snapshots'
        store pins.
        """
        crc = zlib.crc32(np.ascontiguousarray(self.bucket_offsets).tobytes())
        return f"edge:{self.num_edges}:{self.width}:{crc:08x}"

    def close(self) -> None:
        self._edges.flush()
        del self._edges
