"""Disk-backed edge bucket store.

The edge list is "organized according to edge buckets ... stored sequentially
on disk" (paper Section 3). :class:`EdgeBucketStore` materializes the
bucket-major edge array in a memmap file and serves contiguous bucket reads
with IO accounting, so the smallest-read analysis of Section 6 (edge bucket
size shrinking quadratically in p) is measurable for real.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.edge_list import Graph
from ..graph.partition import EdgeBuckets, PartitionScheme
from .io_stats import IOStats


class EdgeBucketStore:
    """Edge buckets written bucket-major to a single on-disk file."""

    def __init__(self, path: os.PathLike, graph: Graph, scheme: PartitionScheme,
                 stats: Optional[IOStats] = None) -> None:
        self.path = Path(path)
        self.scheme = scheme
        self.stats = stats if stats is not None else IOStats()
        self.num_relations = graph.num_relations
        self.has_relations = graph.rel is not None
        buckets = EdgeBuckets(graph, scheme)
        self.bucket_offsets = buckets.bucket_offsets
        width = 3 if self.has_relations else 2
        self.width = width
        flat = np.empty((buckets.num_edges, width), dtype=np.int64)
        flat[:, 0] = buckets.src
        flat[:, -1] = buckets.dst
        if self.has_relations:
            flat[:, 1] = buckets.rel
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._edges = np.memmap(self.path, dtype=np.int64, mode="w+", shape=flat.shape)
        self._edges[:] = flat
        self._edges.flush()
        self.num_edges = len(flat)

    @property
    def num_partitions(self) -> int:
        return self.scheme.num_partitions

    def bucket_size(self, i: int, j: int) -> int:
        p = self.num_partitions
        b = i * p + j
        return int(self.bucket_offsets[b + 1] - self.bucket_offsets[b])

    def bucket_bytes(self, i: int, j: int) -> int:
        return self.bucket_size(i, j) * self.width * 8

    def read_bucket(self, i: int, j: int, record_io: bool = True) -> np.ndarray:
        """One contiguous disk read returning bucket (i, j) edges."""
        p = self.num_partitions
        b = i * p + j
        lo, hi = int(self.bucket_offsets[b]), int(self.bucket_offsets[b + 1])
        data = np.array(self._edges[lo:hi])
        if record_io:
            self.stats.record_read(data.nbytes)
        return data

    def bucket_endpoints(self, i: int, j: int,
                         record_io: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket ``(i, j)``'s ``(src, dst)`` endpoint arrays — the bucket
        source of a :class:`~repro.graph.csr.PartitionedAdjacencyIndex`, so
        a buffer swap reads only the *new* partitions' buckets from disk
        instead of re-reading all c^2 resident buckets."""
        data = self.read_bucket(i, j, record_io=record_io)
        return data[:, 0], data[:, -1]

    def read_buckets(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        parts = [self.read_bucket(i, j) for i, j in pairs]
        if not parts:
            return np.empty((0, self.width), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def subgraph_for_partitions(self, partitions: Sequence[int],
                                record_io: bool = True) -> Graph:
        """In-memory subgraph over all pairwise buckets of ``partitions``.

        ``record_io=False`` rebuilds the subgraph from already-resident data
        (e.g. after only the training-example set X_i changed), skipping the
        disk accounting.
        """
        pairs = [(i, j) for i in partitions for j in partitions]
        if record_io:
            edges = self.read_buckets(pairs)
        else:
            chunks = []
            p = self.num_partitions
            for i, j in pairs:
                b = i * p + j
                lo, hi = int(self.bucket_offsets[b]), int(self.bucket_offsets[b + 1])
                chunks.append(np.array(self._edges[lo:hi]))
            edges = (np.concatenate(chunks, axis=0) if chunks
                     else np.empty((0, self.width), dtype=np.int64))
        return Graph(
            num_nodes=self.scheme.num_nodes,
            src=edges[:, 0],
            dst=edges[:, -1],
            rel=edges[:, 1] if self.has_relations else None,
            num_relations=self.num_relations,
        )

    def fingerprint(self) -> str:
        """Layout identity: bucket offsets + edge width.

        The edge store is immutable after construction, so the fingerprint
        also pins its contents' shape — a snapshot taken against one bucket
        layout refuses to resume against another.
        """
        crc = zlib.crc32(np.ascontiguousarray(self.bucket_offsets).tobytes())
        return f"edge:{self.num_edges}:{self.width}:{crc:08x}"

    def close(self) -> None:
        self._edges.flush()
        del self._edges
