"""Partition prefetching: overlap disk IO with training (paper Steps A-D).

"When prefetching is used to mask the IO latency required to load S_{i+1}
during mini-batch training on S_i ..." (Section 5.1). :class:`Prefetcher`
reads the partitions of the *next* epoch step on a background thread while
the trainer works on the current one; when the swap arrives, already-staged
partitions are admitted from memory instead of disk.

The disk reads still happen (and are still counted by :class:`IOStats`) —
prefetching changes *when* they happen, which is what the balanced-workload
argument for COMET (Section 7.5) is about: a policy whose steps carry similar
amounts of training work gives the prefetcher time to finish; a front-loaded
policy exposes the tail IO.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .buffer import PartitionBuffer
from .node_store import NodeStore


class PrefetchError(RuntimeError):
    """A background prefetch worker died; the original error is chained."""


class Prefetcher:
    """Stages upcoming partitions in memory ahead of the buffer swap.

    A worker-thread exception is captured and re-raised from the next
    :meth:`wait` (hence from ``load_step``/``finish``) instead of dying
    silently inside the daemon thread — a prefetch that failed to read a
    partition must abort the swap that depended on it, not hand the trainer
    a silent miss.
    """

    def __init__(self, store: NodeStore) -> None:
        self.store = store
        self._staged: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.prefetch_hits = 0
        self.prefetch_misses = 0

    # ------------------------------------------------------------------
    def start(self, partitions: Sequence[int]) -> None:
        """Begin reading ``partitions`` in the background (non-blocking)."""
        self.wait()
        parts = [int(p) for p in partitions]

        def work() -> None:
            try:
                for part in parts:
                    data, state = self.store.read_partition(part)
                    with self._lock:
                        self._staged[part] = (data, state)
            except BaseException as exc:  # surfaced by the next wait()
                with self._lock:
                    self._error = exc

        self._thread = threading.Thread(target=work, daemon=True)
        self._thread.start()

    def wait(self) -> None:
        """Block until the in-flight prefetch (if any) completes.

        Raises :class:`PrefetchError` if the worker thread failed.
        """
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._lock:
            error, self._error = self._error, None
        if error is not None:
            raise PrefetchError(
                f"prefetch worker failed: {error!r}") from error

    def take(self, part: int) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """Hand over a staged partition, or ``None`` on a miss."""
        with self._lock:
            item = self._staged.pop(part, None)
        if item is not None:
            self.prefetch_hits += 1
        else:
            self.prefetch_misses += 1
        return item

    def drop_all(self) -> None:
        with self._lock:
            self._staged.clear()


class PrefetchingBufferManager:
    """Drives a :class:`PartitionBuffer` through an epoch plan with prefetch.

    Usage: call :meth:`load_step` for each step; the manager swaps the buffer
    (using staged data when the prefetcher finished in time) and immediately
    starts prefetching the next step's incoming partitions.

    ``fault_hook`` is a test-only crash-injection point, called with a
    crash-point name at the swap's I/O boundaries (``swap-evicted`` between
    the eviction and admission halves of a swap, ``prefetch-staged`` between
    taking staged prefetch data and applying it to the buffer).
    """

    def __init__(self, buffer: PartitionBuffer, enabled: bool = True,
                 fault_hook: Optional[Callable[[str], None]] = None) -> None:
        self.buffer = buffer
        self.enabled = enabled
        self.prefetcher = Prefetcher(buffer.store)
        self.fault_hook = fault_hook

    def _fire(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def load_step(self, partitions: Sequence[int],
                  next_partitions: Optional[Sequence[int]] = None) -> int:
        """Swap the buffer to ``partitions``; start prefetching the next set.

        Returns the number of partitions moved (reads + evictions).
        """
        wanted = set(int(x) for x in partitions)
        if len(wanted) > self.buffer.capacity:
            raise ValueError(
                f"requested {len(wanted)} partitions, capacity {self.buffer.capacity}")
        if self.enabled:
            self.prefetcher.wait()
        removed = []
        added = []
        for part in [q for q in self.buffer.resident if q not in wanted]:
            self.buffer.evict(part)
            removed.append(part)
        self._fire("swap-evicted")
        for part in sorted(wanted):
            if self.buffer.is_resident(part):
                continue
            staged = self.prefetcher.take(part) if self.enabled else None
            if staged is not None:
                self._fire("prefetch-staged")
                self.buffer.admit_preloaded(part, *staged)
            else:
                self.buffer.admit(part)
            added.append(part)
        moved = len(added) + len(removed)
        self.buffer.notify_swap(added, removed)
        if self.enabled and next_partitions is not None:
            incoming = [p for p in next_partitions
                        if not self.buffer.is_resident(int(p))]
            if incoming:
                self.prefetcher.start(incoming)
        return moved

    def finish(self) -> None:
        """Flush dirty partitions and drop any staged data.

        Raises :class:`PrefetchError` if a prefetch worker died since the
        last ``load_step`` — shutdown must not swallow worker failures.
        """
        self.prefetcher.wait()
        self.prefetcher.drop_all()
        self.buffer.flush()

    def reset(self) -> None:
        """Discard in-flight and staged prefetch data (resume path).

        A pending worker error is also cleared: after a restore the staged
        data would be dropped anyway, so a failure to produce it is moot.
        """
        try:
            self.prefetcher.wait()
        except PrefetchError:
            pass
        self.prefetcher.drop_all()

    @property
    def hits(self) -> int:
        return self.prefetcher.prefetch_hits

    @property
    def misses(self) -> int:
        return self.prefetcher.prefetch_misses
