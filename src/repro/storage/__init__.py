"""Storage layer: memmap-backed node/edge stores, partition buffer, IO stats."""

from .atomic import (atomic_write, atomic_write_bytes, atomic_write_json,
                     atomic_write_npz, fsync_dir)
from .buffer import PartitionBuffer
from .edge_store import EdgeBucketStore
from .io_stats import IOStats
from .node_store import NodeStore
from .prefetch import PrefetchError, Prefetcher, PrefetchingBufferManager

__all__ = ["IOStats", "NodeStore", "EdgeBucketStore", "PartitionBuffer",
           "Prefetcher", "PrefetchingBufferManager", "PrefetchError",
           "atomic_write", "atomic_write_bytes", "atomic_write_json",
           "atomic_write_npz", "fsync_dir"]
