"""Storage layer: memmap-backed node/edge stores, partition buffer, IO stats."""

from .buffer import PartitionBuffer
from .edge_store import EdgeBucketStore
from .io_stats import IOStats
from .node_store import NodeStore
from .prefetch import PrefetchError, Prefetcher, PrefetchingBufferManager

__all__ = ["IOStats", "NodeStore", "EdgeBucketStore", "PartitionBuffer",
           "Prefetcher", "PrefetchingBufferManager", "PrefetchError"]
