"""Atomic, durable file writes shared across the storage layer.

Every on-disk artifact that must survive a crash follows the same
discipline — **write-temp + flush + fsync + rename + directory fsync** —
so a reader only ever observes the old file or the complete new one,
never a torn mix. The idiom grew up independently in the snapshot
subsystem (:class:`~repro.train.checkpoint.SnapshotManager`), the edge
store's compaction rewrite, and the delta log's spill path; this module
is the single shared implementation.

``atomic_write`` is the primitive (a context manager yielding the staged
file handle); ``atomic_write_bytes`` / ``atomic_write_json`` /
``atomic_write_npz`` are the common payloads. ``fsync_dir`` makes a
rename itself durable — without it the new directory entry can be lost
even though the file's bytes were fsynced.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator

import numpy as np

__all__ = ["fsync_dir", "atomic_write", "atomic_write_bytes",
           "atomic_write_json", "atomic_write_npz"]


def fsync_dir(path: os.PathLike) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(path: os.PathLike, suffix: str = ".tmp") -> Iterator[Any]:
    """Stage a replacement for ``path``: yields a binary handle open on
    ``<path><suffix>``; on clean exit the staged bytes are flushed,
    fsynced, renamed over ``path`` in one atomic step, and the parent
    directory is fsynced. On error the temp file is removed and ``path``
    is untouched."""
    path = Path(path)
    tmp = path.with_name(path.name + suffix)
    try:
        with open(tmp, "wb") as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: os.PathLike, payload: bytes) -> None:
    with atomic_write(path) as fh:
        fh.write(payload)


def atomic_write_json(path: os.PathLike, payload: Dict[str, Any]) -> None:
    atomic_write_bytes(path, (json.dumps(payload, indent=2) + "\n").encode())


def atomic_write_npz(path: os.PathLike, arrays: Dict[str, np.ndarray]) -> None:
    with atomic_write(path) as fh:
        np.savez(fh, **arrays)
