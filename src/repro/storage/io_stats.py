"""Disk IO accounting shared by the node store, edge store, and buffer.

Section 6 of the paper reasons about three quantities that drive epoch time:
total bytes transferred disk->CPU (``IO``), the number of partition sets per
epoch (``|S|``), and the smallest disk read size (``R``) relative to the
device block size. :class:`IOStats` measures all three from the real memmap
traffic our storage layer performs.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List


def crc_file(path: os.PathLike, chunk: int = 1 << 20) -> int:
    """CRC-32 of a file, streamed in 1 MiB chunks — the payloads this
    layer validates (snapshot archives, bucket files) can be table-sized,
    so neither side may hold the whole file in memory. Shared by the
    checkpoint subsystem and the edge store's layout sidecar."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


@dataclass
class IOStats:
    """Counters for disk traffic (bytes are payload bytes, reads are calls)."""

    bytes_read: int = 0
    bytes_written: int = 0
    num_reads: int = 0
    num_writes: int = 0
    partition_loads: int = 0
    partition_evictions: int = 0
    read_sizes: List[int] = field(default_factory=list)

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += int(nbytes)
        self.num_reads += 1
        self.read_sizes.append(int(nbytes))

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += int(nbytes)
        self.num_writes += 1

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def smallest_read(self) -> int:
        """The paper's quantity R: the smallest disk read size in bytes."""
        return min(self.read_sizes) if self.read_sizes else 0

    def as_dict(self) -> Dict[str, int]:
        """Counter export for telemetry (the unbounded per-read size list
        collapses to the paper's quantity R, smallest_read)."""
        return {"bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "reads": self.num_reads,
                "writes": self.num_writes,
                "partition_loads": self.partition_loads,
                "partition_evictions": self.partition_evictions,
                "smallest_read": self.smallest_read}

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.num_reads = 0
        self.num_writes = 0
        self.partition_loads = 0
        self.partition_evictions = 0
        self.read_sizes.clear()

    def snapshot(self) -> "IOStats":
        return IOStats(
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            num_reads=self.num_reads,
            num_writes=self.num_writes,
            partition_loads=self.partition_loads,
            partition_evictions=self.partition_evictions,
            read_sizes=list(self.read_sizes),
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Traffic since an earlier snapshot."""
        return IOStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            num_reads=self.num_reads - earlier.num_reads,
            num_writes=self.num_writes - earlier.num_writes,
            partition_loads=self.partition_loads - earlier.partition_loads,
            partition_evictions=self.partition_evictions - earlier.partition_evictions,
            read_sizes=self.read_sizes[len(earlier.read_sizes):],
        )
