"""The partition buffer: in-CPU-memory cache of node partitions.

MariusGNN "uses a buffer with capacity of c physical node partitions"
(Section 3). :class:`PartitionBuffer` holds partitions read from the
:class:`~repro.storage.node_store.NodeStore`, provides a global-id gather for
mini-batch construction, applies row-sparse Adagrad updates in place (Step 6
of the mini-batch lifecycle), and writes dirty partitions back on eviction.

Resident partitions live in one flat *slab* array of ``capacity`` equal
slots; ``_slab_row`` maps each resident global node ID to its slab row.
:meth:`gather` and :meth:`apply_gradients` are therefore a single vectorized
fancy-index over the slab — no per-partition Python loop on the mini-batch
hot path.

Swapping to the next partition set is a diff: only partitions leaving the
buffer are written back and only arriving ones are read — one logical-
partition swap per step under COMET (Steps A-D in Figure 2). Registered
*swap listeners* receive that diff (``fn(added, removed)``) after every
swap, which is how samplers keep their partition-aware adjacency index
incremental instead of re-sorting the in-buffer edge list.

Inference serving reuses the same buffer in **read-only mode**
(``read_only=True``): gradient application is refused, eviction never
writes back, and residency is driven by the live query stream through
:meth:`ensure_resident` — victims are picked by a pluggable
``replacement_policy`` (e.g. :class:`~repro.policies.query_lru.QueryLRU`)
instead of a precomputed epoch plan.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..nn.optim import RowAdagrad
from ..obs.registry import get_registry
from .io_stats import IOStats
from .node_store import NodeStore

SwapListener = Callable[[List[int], List[int]], None]


class PartitionBuffer:
    """Holds up to ``capacity`` physical node partitions in memory."""

    def __init__(self, store: NodeStore, capacity: int,
                 optimizer: Optional[RowAdagrad] = None,
                 read_only: bool = False,
                 replacement_policy=None) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        if capacity > store.num_partitions:
            raise ValueError(
                f"capacity {capacity} exceeds partition count {store.num_partitions}"
            )
        if read_only and optimizer is not None:
            raise ValueError("a read-only buffer cannot carry an optimizer")
        self.store = store
        self.capacity = capacity
        self.optimizer = optimizer
        self.read_only = bool(read_only)
        # Picks eviction victims for ensure_resident(); must expose
        # choose_victims(candidates, count) -> list of partition ids.
        self.replacement_policy = replacement_policy
        self.stats: IOStats = store.stats
        # One flat slab of `capacity` fixed-size slots; `_data[part]` values
        # are views into it so eviction write-back needs no extra copies.
        self._slot_size = int(store.scheme.sizes().max())
        self._slab = np.empty((capacity * self._slot_size, store.dim),
                              dtype=np.float32)
        self._state_slab: Optional[np.ndarray] = None
        self._free_slots = list(range(capacity - 1, -1, -1))
        self._slot_of: Dict[int, int] = {}
        self._data: Dict[int, np.ndarray] = {}
        self._state: Dict[int, Optional[np.ndarray]] = {}
        self._dirty: Dict[int, bool] = {}
        # Global node id -> row in the slab; -1 if not resident.
        self._slab_row = np.full(store.num_nodes, -1, dtype=np.int64)
        self._partition_of_row = np.full(store.num_nodes, -1, dtype=np.int32)
        self._swap_listeners: List[SwapListener] = []

    # ------------------------------------------------------------------
    @property
    def resident(self) -> List[int]:
        return sorted(self._data)

    def is_resident(self, part: int) -> bool:
        return part in self._data

    def dirty_partitions(self) -> List[int]:
        """Resident partitions holding updates not yet written back."""
        return sorted(p for p, dirty in self._dirty.items() if dirty)

    def node_mask(self) -> np.ndarray:
        """Boolean mask over all nodes: resident in the buffer or not."""
        return self._slab_row >= 0

    def add_swap_listener(self, fn: SwapListener) -> None:
        """Register ``fn(added, removed)`` to observe buffer-swap diffs."""
        self._swap_listeners.append(fn)

    def notify_swap(self, added: Sequence[int], removed: Sequence[int]) -> None:
        """Report a completed swap diff to the registered listeners."""
        if not (added or removed):
            return
        added = sorted(int(p) for p in added)
        removed = sorted(int(p) for p in removed)
        for fn in self._swap_listeners:
            fn(added, removed)

    # ------------------------------------------------------------------
    def _install(self, part: int, data: np.ndarray,
                 state: Optional[np.ndarray]) -> None:
        """Copy a partition's arrays into a free slab slot and map its rows."""
        slot = self._free_slots.pop()
        size = len(data)
        base = slot * self._slot_size
        self._slab[base : base + size] = data
        self._data[part] = self._slab[base : base + size]
        if state is not None:
            if self._state_slab is None:
                self._state_slab = np.zeros_like(self._slab)
            self._state_slab[base : base + size] = state
            self._state[part] = self._state_slab[base : base + size]
        else:
            self._state[part] = None
        self._slot_of[part] = slot
        self._dirty[part] = False
        lo = int(self.store.scheme.boundaries[part])
        hi = int(self.store.scheme.boundaries[part + 1])
        self._slab_row[lo:hi] = np.arange(base, base + (hi - lo), dtype=np.int64)
        self._partition_of_row[lo:hi] = part

    def admit(self, part: int) -> None:
        """Read a partition from disk into the buffer (must have room)."""
        if part in self._data:
            return
        if len(self._data) >= self.capacity:
            raise RuntimeError(
                f"buffer full ({self.capacity}); evict before admitting {part}"
            )
        t0 = time.perf_counter()
        data, state = self.store.read_partition(part)
        obs = get_registry()
        obs.histogram("storage.swap.load_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        obs.counter("storage.swaps").inc()
        self._install(part, data, state)

    def admit_preloaded(self, part: int, data: np.ndarray,
                        state: Optional[np.ndarray]) -> None:
        """Admit a partition whose bytes were already read (by a prefetcher).

        The disk read was performed — and accounted — when the prefetcher
        fetched it; this call only installs the arrays.
        """
        if part in self._data:
            return
        if len(self._data) >= self.capacity:
            raise RuntimeError(
                f"buffer full ({self.capacity}); evict before admitting {part}"
            )
        expected = (self.store.scheme.partition_size(part), self.store.dim)
        if data.shape != expected:
            raise ValueError(f"preloaded partition {part} has shape {data.shape},"
                             f" expected {expected}")
        self._install(part, data, state)

    def evict(self, part: int) -> None:
        """Write a partition back (if dirty) and drop it from the buffer."""
        if part not in self._data:
            raise KeyError(f"partition {part} is not resident")
        if self._dirty[part] and not self.read_only:
            self.store.write_partition(part, self._data[part], self._state[part])
        del self._data[part]
        del self._state[part]
        del self._dirty[part]
        self._free_slots.append(self._slot_of.pop(part))
        lo = int(self.store.scheme.boundaries[part])
        hi = int(self.store.scheme.boundaries[part + 1])
        self._slab_row[lo:hi] = -1
        self._partition_of_row[lo:hi] = -1

    def set_partitions(self, parts: Sequence[int]) -> int:
        """Swap the buffer contents to exactly ``parts``; returns #partitions moved.

        Registered swap listeners are called with the (added, removed) diff
        after the swap completes.
        """
        wanted = set(int(x) for x in parts)
        if len(wanted) > self.capacity:
            raise ValueError(f"requested {len(wanted)} partitions, capacity {self.capacity}")
        removed = []
        added = []
        for part in [q for q in self._data if q not in wanted]:
            self.evict(part)
            removed.append(part)
        for part in sorted(wanted):
            if part not in self._data:
                self.admit(part)
                added.append(part)
        self.notify_swap(added, removed)
        return len(added) + len(removed)

    def ensure_resident(self, parts: Sequence[int],
                        protect: Sequence[int] = ()) -> int:
        """Admit ``parts`` (if absent), evicting policy-chosen victims.

        The query-driven counterpart of :meth:`set_partitions`: instead of
        swapping to an exact plan step, the caller names only the partitions
        the current query batch needs. Victims come from
        ``replacement_policy.choose_victims(candidates, count)`` when one is
        set (falling back to lowest-id-first), never from ``parts`` itself,
        and partitions in ``protect`` (needed later in the same batch) are
        spared while any other candidate remains. Returns the number of
        partitions admitted; swap listeners see the usual diff.
        """
        wanted = sorted(set(int(x) for x in parts))
        if len(wanted) > self.capacity:
            raise ValueError(
                f"query batch needs {len(wanted)} partitions at once, "
                f"capacity {self.capacity}")
        missing = [q for q in wanted if q not in self._data]
        if not missing:
            return 0
        removed: List[int] = []
        need = len(missing) - len(self._free_slots)
        if need > 0:
            keep = set(wanted)
            shielded = set(protect)
            candidates = [q for q in self._data if q not in keep]
            spared = [q for q in candidates if q not in shielded]
            fallback = [q for q in candidates if q in shielded]

            def pick(pool: List[int], count: int) -> List[int]:
                if self.replacement_policy is not None:
                    return self.replacement_policy.choose_victims(pool, count)
                return sorted(pool)[:count]

            # Unprotected candidates go first, all of them if necessary;
            # protected ones are touched only for the remainder.
            victims = pick(spared, min(need, len(spared)))
            if len(victims) < need:
                victims += pick(fallback, need - len(victims))
            for victim in victims[:need]:
                self.evict(int(victim))
                removed.append(int(victim))
        for part in missing:
            self.admit(part)
        self.notify_swap(missing, removed)
        return len(missing)

    def partition_view(self, part: int) -> np.ndarray:
        """Zero-copy view of a resident partition's rows in the slab.

        Serving's blockwise scoring reads whole partitions; handing out the
        slab view avoids a per-block copy of the candidate matrix. Callers
        must treat it as read-only and not hold it across an eviction.
        """
        try:
            return self._data[part]
        except KeyError:
            raise KeyError(f"partition {part} is not resident") from None

    def drop_all(self) -> None:
        """Discard every resident partition WITHOUT write-back.

        The crash-recovery path: whatever the buffer holds is about to be
        superseded by a snapshot restore, so flushing it would overwrite the
        store with post-snapshot (possibly corrupt) state. Swap listeners
        are notified so partition-aware sampler indexes drop the partitions
        too.
        """
        dropped = sorted(self._data)
        for part in dropped:
            self._dirty[part] = False
            self.evict(part)
        self.notify_swap([], dropped)

    def flush(self) -> None:
        """Write every dirty resident partition back without evicting."""
        for part, dirty in list(self._dirty.items()):
            if dirty:
                self.store.write_partition(part, self._data[part], self._state[part])
                self._dirty[part] = False

    def refresh_from_store(self, parts: Optional[Sequence[int]] = None) -> None:
        """Re-sync with a store whose table changed underneath the buffer.

        The invalidate-on-compact/growth listener of the streaming
        subsystem: after the node table grows (new streamed nodes extend
        the last partition) or a compaction rewrites rows, resident
        in-buffer copies are stale. ``parts`` names the partitions whose
        contents changed (``None`` = all of them — the conservative
        compaction default); only resident ones among them are re-read.
        Dirty partitions are written back *first* (row-span writes, since
        a grown partition's in-buffer copy covers only its old rows), the
        node-to-slab maps are extended to the store's current
        ``num_nodes``, and the slab is reallocated — with every resident
        partition reinstalled — only if the largest partition outgrew the
        slot size. Swap listeners are not notified: residency is
        unchanged, only contents.
        """
        new_slot = int(self.store.scheme.sizes().max())
        stale = sorted(self._data) if parts is None else sorted(
            int(q) for q in parts if int(q) in self._data)
        if new_slot > self._slot_size:
            # Slot geometry changed: every view into the slab moves.
            stale = sorted(self._data)
        for part in stale:
            if self._dirty[part] and not self.read_only:
                lo = int(self.store.scheme.boundaries[part])
                self.store.write_span(lo, self._data[part], self._state[part])
            self._dirty[part] = False
            self.evict(part)
        num_nodes = self.store.num_nodes
        if num_nodes > len(self._slab_row):
            pad = num_nodes - len(self._slab_row)
            self._slab_row = np.concatenate(
                [self._slab_row, np.full(pad, -1, dtype=np.int64)])
            self._partition_of_row = np.concatenate(
                [self._partition_of_row, np.full(pad, -1, dtype=np.int32)])
        if new_slot > self._slot_size:
            self._slot_size = new_slot
            self._slab = np.empty((self.capacity * new_slot, self.store.dim),
                                  dtype=np.float32)
            if self._state_slab is not None:
                self._state_slab = np.zeros_like(self._slab)
            self._slab_row.fill(-1)
            self._partition_of_row.fill(-1)
            self._free_slots = list(range(self.capacity - 1, -1, -1))
            self._slot_of.clear()
        for part in stale:
            self.admit(part)

    # ------------------------------------------------------------------
    def gather(self, node_ids: np.ndarray) -> np.ndarray:
        """Copy the rows of ``node_ids`` (global IDs; must all be resident)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        rows = self._slab_row[node_ids]
        if (rows < 0).any():
            missing = node_ids[rows < 0][:5]
            raise KeyError(f"nodes not resident in buffer (first few: {missing.tolist()})")
        return self._slab[rows]

    def apply_gradients(self, node_ids: np.ndarray, grads: np.ndarray) -> None:
        """Row-sparse optimizer update for learnable representations (Step 6)."""
        if self.read_only:
            raise RuntimeError("buffer is read-only (inference serving mode)")
        if self.optimizer is None:
            raise RuntimeError("buffer was built without an embedding optimizer")
        node_ids = np.asarray(node_ids, dtype=np.int64)
        rows = self._slab_row[node_ids]
        if (rows < 0).any():
            raise KeyError("gradient rows must be resident in the buffer")
        parts = [int(p) for p in np.unique(self._partition_of_row[node_ids])]
        for part in parts:
            if self._state[part] is None:
                raise RuntimeError(f"partition {part} has no optimizer state")
        self.optimizer.update(self._slab, self._state_slab, rows, grads)
        for part in parts:
            self._dirty[part] = True

    def resident_nodes(self) -> np.ndarray:
        """All node IDs currently resident (for in-memory negative sampling)."""
        parts = sorted(self._data)
        ranges = [np.arange(self.store.scheme.boundaries[p],
                            self.store.scheme.boundaries[p + 1], dtype=np.int64)
                  for p in parts]
        return np.concatenate(ranges) if ranges else np.empty(0, dtype=np.int64)
