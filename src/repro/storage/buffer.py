"""The partition buffer: in-CPU-memory cache of node partitions.

MariusGNN "uses a buffer with capacity of c physical node partitions"
(Section 3). :class:`PartitionBuffer` holds partitions read from the
:class:`~repro.storage.node_store.NodeStore`, provides a global-id gather for
mini-batch construction, applies row-sparse Adagrad updates in place (Step 6
of the mini-batch lifecycle), and writes dirty partitions back on eviction.

Swapping to the next partition set is a diff: only partitions leaving the
buffer are written back and only arriving ones are read — one logical-
partition swap per step under COMET (Steps A-D in Figure 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.optim import RowAdagrad
from .io_stats import IOStats
from .node_store import NodeStore


class PartitionBuffer:
    """Holds up to ``capacity`` physical node partitions in memory."""

    def __init__(self, store: NodeStore, capacity: int,
                 optimizer: Optional[RowAdagrad] = None) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        if capacity > store.num_partitions:
            raise ValueError(
                f"capacity {capacity} exceeds partition count {store.num_partitions}"
            )
        self.store = store
        self.capacity = capacity
        self.optimizer = optimizer
        self.stats: IOStats = store.stats
        self._data: Dict[int, np.ndarray] = {}
        self._state: Dict[int, Optional[np.ndarray]] = {}
        self._dirty: Dict[int, bool] = {}
        # Global node id -> local row in its partition's buffer array; -1 if absent.
        self._local_row = np.full(store.num_nodes, -1, dtype=np.int64)
        self._partition_of_row = np.full(store.num_nodes, -1, dtype=np.int32)

    # ------------------------------------------------------------------
    @property
    def resident(self) -> List[int]:
        return sorted(self._data)

    def is_resident(self, part: int) -> bool:
        return part in self._data

    def node_mask(self) -> np.ndarray:
        """Boolean mask over all nodes: resident in the buffer or not."""
        return self._local_row >= 0

    # ------------------------------------------------------------------
    def admit(self, part: int) -> None:
        """Read a partition from disk into the buffer (must have room)."""
        if part in self._data:
            return
        if len(self._data) >= self.capacity:
            raise RuntimeError(
                f"buffer full ({self.capacity}); evict before admitting {part}"
            )
        data, state = self.store.read_partition(part)
        self._data[part] = data
        self._state[part] = state
        self._dirty[part] = False
        lo = int(self.store.scheme.boundaries[part])
        hi = int(self.store.scheme.boundaries[part + 1])
        self._local_row[lo:hi] = np.arange(hi - lo, dtype=np.int64)
        self._partition_of_row[lo:hi] = part

    def admit_preloaded(self, part: int, data: np.ndarray,
                        state: Optional[np.ndarray]) -> None:
        """Admit a partition whose bytes were already read (by a prefetcher).

        The disk read was performed — and accounted — when the prefetcher
        fetched it; this call only installs the arrays.
        """
        if part in self._data:
            return
        if len(self._data) >= self.capacity:
            raise RuntimeError(
                f"buffer full ({self.capacity}); evict before admitting {part}"
            )
        expected = (self.store.scheme.partition_size(part), self.store.dim)
        if data.shape != expected:
            raise ValueError(f"preloaded partition {part} has shape {data.shape},"
                             f" expected {expected}")
        self._data[part] = data
        self._state[part] = state
        self._dirty[part] = False
        lo = int(self.store.scheme.boundaries[part])
        hi = int(self.store.scheme.boundaries[part + 1])
        self._local_row[lo:hi] = np.arange(hi - lo, dtype=np.int64)
        self._partition_of_row[lo:hi] = part

    def evict(self, part: int) -> None:
        """Write a partition back (if dirty) and drop it from the buffer."""
        if part not in self._data:
            raise KeyError(f"partition {part} is not resident")
        if self._dirty[part]:
            self.store.write_partition(part, self._data[part], self._state[part])
        del self._data[part]
        del self._state[part]
        del self._dirty[part]
        lo = int(self.store.scheme.boundaries[part])
        hi = int(self.store.scheme.boundaries[part + 1])
        self._local_row[lo:hi] = -1
        self._partition_of_row[lo:hi] = -1

    def set_partitions(self, parts: Sequence[int]) -> int:
        """Swap the buffer contents to exactly ``parts``; returns #partitions moved."""
        wanted = set(int(x) for x in parts)
        if len(wanted) > self.capacity:
            raise ValueError(f"requested {len(wanted)} partitions, capacity {self.capacity}")
        moved = 0
        for part in [q for q in self._data if q not in wanted]:
            self.evict(part)
            moved += 1
        for part in sorted(wanted):
            if part not in self._data:
                self.admit(part)
                moved += 1
        return moved

    def flush(self) -> None:
        """Write every dirty resident partition back without evicting."""
        for part, dirty in list(self._dirty.items()):
            if dirty:
                self.store.write_partition(part, self._data[part], self._state[part])
                self._dirty[part] = False

    # ------------------------------------------------------------------
    def gather(self, node_ids: np.ndarray) -> np.ndarray:
        """Copy the rows of ``node_ids`` (global IDs; must all be resident)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        local = self._local_row[node_ids]
        if (local < 0).any():
            missing = node_ids[local < 0][:5]
            raise KeyError(f"nodes not resident in buffer (first few: {missing.tolist()})")
        out = np.empty((len(node_ids), self.store.dim), dtype=np.float32)
        parts = self._partition_of_row[node_ids]
        for part in np.unique(parts):
            mask = parts == part
            out[mask] = self._data[int(part)][local[mask]]
        return out

    def apply_gradients(self, node_ids: np.ndarray, grads: np.ndarray) -> None:
        """Row-sparse optimizer update for learnable representations (Step 6)."""
        if self.optimizer is None:
            raise RuntimeError("buffer was built without an embedding optimizer")
        node_ids = np.asarray(node_ids, dtype=np.int64)
        local = self._local_row[node_ids]
        if (local < 0).any():
            raise KeyError("gradient rows must be resident in the buffer")
        parts = self._partition_of_row[node_ids]
        for part in np.unique(parts):
            mask = parts == part
            part = int(part)
            state = self._state[part]
            if state is None:
                raise RuntimeError(f"partition {part} has no optimizer state")
            self.optimizer.update(self._data[part], state, local[mask], grads[mask])
            self._dirty[part] = True

    def resident_nodes(self) -> np.ndarray:
        """All node IDs currently resident (for in-memory negative sampling)."""
        parts = sorted(self._data)
        ranges = [np.arange(self.store.scheme.boundaries[p],
                            self.store.scheme.boundaries[p + 1], dtype=np.int64)
                  for p in parts]
        return np.concatenate(ranges) if ranges else np.empty(0, dtype=np.int64)
