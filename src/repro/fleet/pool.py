"""Per-worker connection pools for the gateway.

The wire protocol is strictly request/response per connection, so one
shared connection would serialize every request to a worker — and a
serialized stream never gives the worker's :class:`~repro.serve.batcher.
RequestBatcher` more than one waiting request, defeating micro-batching
entirely. The pool checks a private connection out per in-flight request
(growing on demand, up to a cap) so concurrent gateway handler threads
reach the worker concurrently and their queries coalesce into one engine
call there.

A connection that errors is closed and dropped, never returned; the next
checkout dials fresh. :meth:`ConnectionPool.close` poisons the pool for
shutdown — subsequent checkouts raise :class:`~repro.fleet.protocol.
WorkerUnavailable` immediately.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from .protocol import WorkerClient, WorkerUnavailable

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """A grow-on-demand pool of :class:`WorkerClient` connections."""

    def __init__(self, host: str, port: int, max_idle: int = 8,
                 timeout: Optional[float] = None) -> None:
        self.host, self.port = host, int(port)
        self.max_idle = int(max_idle)
        self.timeout = timeout
        self._idle: Deque[WorkerClient] = deque()
        self._lock = threading.Lock()
        self._closed = False

    def checkout(self) -> WorkerClient:
        with self._lock:
            if self._closed:
                raise WorkerUnavailable(
                    f"pool for {self.host}:{self.port} is closed (draining)")
            if self._idle:
                return self._idle.popleft()
        return WorkerClient(self.host, self.port, timeout=self.timeout)

    def checkin(self, client: WorkerClient) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(client)
                return
        client.close()

    def discard(self, client: WorkerClient) -> None:
        client.close()

    def request(self, op: str, **fields):
        """Checkout / request / checkin, with error connections dropped."""
        client = self.checkout()
        try:
            response = client.request(op, **fields)
        except Exception:
            self.discard(client)
            raise
        self.checkin(client)
        return response

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = list(self._idle), deque()
        for client in idle:
            client.close()
