"""The fleet orchestrator: spawn workers, route, serve, drain.

:class:`Fleet` owns the whole serving topology for one snapshot:

1. **Workers** — ``fleet.workers`` processes (``multiprocessing`` spawn
   context, so the entry point is picklable and the children never
   inherit torn state) each build a private read-only engine over the
   shared snapshot and report ``(port, partition boundaries, …)``
   through a ready queue.
2. **Router** — the ready info's partition boundaries seed an
   :class:`~repro.fleet.affinity.AffinityRouter`; every worker serves
   the same table, so ownership is purely a locality assignment.
3. **Gateway** — an HTTP front door (:class:`~repro.fleet.gateway.
   Gateway`) that routes each request's lead node id through the router
   and speaks the frame protocol to the owning worker through a
   per-worker :class:`~repro.fleet.pool.ConnectionPool`.

A worker whose process has died is marked dead: requests routed to its
range fail fast with 503 and ``/healthz`` reports ``degraded``. There is
no failover — every worker holds a full copy of the snapshot, but
re-assigning ranges on crash is a policy decision left to
:meth:`~repro.fleet.affinity.AffinityRouter.set_assignment` callers.

:meth:`stop` is drain-ordered: the gateway stops accepting and joins
in-flight handlers (which still need live pools and workers), then each
worker is asked to drain (protocol ``drain`` op, SIGTERM as fallback) —
rejecting new submits while finishing queued batches — then pools close
and processes are joined.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .affinity import AffinityRouter
from .gateway import Gateway
from .pool import ConnectionPool
from .protocol import WorkerUnavailable
from .worker import WorkerConfig, worker_main

__all__ = ["Fleet"]


class Fleet:
    """N serving workers + router + HTTP gateway over one snapshot."""

    def __init__(self, spec: Dict[str, Any], workdir: Path,
                 ready_timeout: float = 180.0) -> None:
        self.spec = spec
        self.workdir = Path(workdir)
        self.ready_timeout = float(ready_timeout)
        fleet = spec.get("fleet", {})
        self.num_workers = int(fleet.get("workers", 2))
        if self.num_workers < 1:
            raise ValueError("fleet.workers must be at least 1")
        self.host = str(fleet.get("host", "127.0.0.1"))
        self.gateway_port = int(fleet.get("port", 0))
        self.affinity = str(fleet.get("affinity", "range"))
        tele = spec.get("telemetry", {})
        self.telemetry = tele.get("sink", "none") != "none"
        self.flush_every = int(tele.get("flush_every", 25))

        self.router: Optional[AffinityRouter] = None
        self.gateway: Optional[Gateway] = None
        self.worker_info: List[Dict[str, Any]] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._pools: List[ConnectionPool] = []
        self._dead: set = set()
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> "Fleet":
        """Spawn workers, wait for all ready reports, open the gateway."""
        if self._started:
            return self
        ctx = multiprocessing.get_context("spawn")
        ready: Any = ctx.Queue()
        self.workdir.mkdir(parents=True, exist_ok=True)
        for i in range(self.num_workers):
            cfg = WorkerConfig(index=i, spec=self.spec,
                               workdir=str(self.workdir), host=self.host,
                               telemetry=self.telemetry,
                               flush_every=self.flush_every)
            proc = ctx.Process(target=worker_main, args=(cfg, ready),
                               name=f"fleet-worker-{i}")
            proc.start()
            self._procs.append(proc)
        infos: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + self.ready_timeout
        try:
            while len(infos) < self.num_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"only {len(infos)}/{self.num_workers} fleet "
                        f"workers came up within {self.ready_timeout:.0f}s")
                try:
                    msg = ready.get(timeout=min(remaining, 1.0))
                except Exception:
                    dead = [p.name for p in self._procs if not p.is_alive()]
                    if dead and len(infos) < self.num_workers:
                        raise RuntimeError(
                            f"fleet workers died during startup: {dead}")
                    continue
                if "error" in msg:
                    raise RuntimeError(f"fleet worker {msg['worker']} "
                                       f"failed to build: {msg['error']}")
                infos[msg["worker"]] = msg
            self.worker_info = [infos[i] for i in range(self.num_workers)]
            first = self.worker_info[0]
            self.router = AffinityRouter(first["boundaries"],
                                         self.num_workers,
                                         policy=self.affinity)
            self._pools = [ConnectionPool(self.host, info["port"])
                           for info in self.worker_info]
            self.gateway = Gateway(self, host=self.host,
                                   port=self.gateway_port).start()
        except Exception:
            # A failure anywhere in startup (a worker died, the gateway
            # port is taken, ...) must not leak N live child processes.
            for pool in self._pools:
                pool.close()
            self._kill_all()
            raise
        self._started = True
        return self

    @property
    def url(self) -> str:
        if self.gateway is None:
            raise RuntimeError("fleet is not started")
        return self.gateway.url

    # ------------------------------------------------------------------
    # The surface the gateway drives.
    def route(self, node_id: int) -> int:
        return self.router.route(node_id)

    def request(self, worker: int, op: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            if worker in self._dead:
                raise WorkerUnavailable(f"worker {worker} is down")
        return self._pools[worker].request(op, **fields)

    def note_unavailable(self, worker: int) -> None:
        """Called on a connection failure: a dead process means the range
        is down; a live process just lost one connection (the pool
        already discarded it)."""
        if not self._procs[worker].is_alive():
            with self._lock:
                self._dead.add(worker)

    def owned_range(self, worker: int) -> str:
        parts = self.router.ranges().get(worker, [])
        if not parts:
            return "none"
        return f"{parts[0]}-{parts[-1]}" if len(parts) > 1 else str(parts[0])

    def health(self) -> List[Dict[str, Any]]:
        out = []
        for i, proc in enumerate(self._procs):
            entry: Dict[str, Any] = {"worker": i,
                                     "partitions": self.owned_range(i)}
            with self._lock:
                dead = i in self._dead
            if dead or not proc.is_alive():
                self.note_unavailable(i)
                entry.update(alive=False, status="down")
                out.append(entry)
                continue
            try:
                reply = self._pools[i].request("health")
                entry.update(alive=True,
                             status=reply.get("status", "ok"),
                             pid=reply.get("pid"))
            except WorkerUnavailable:
                self.note_unavailable(i)
                entry.update(alive=proc.is_alive(), status="unreachable")
            out.append(entry)
        return out

    def worker_stats(self) -> List[Dict[str, Any]]:
        out = []
        for i in range(self.num_workers):
            try:
                reply = self.request(i, "stats")
                out.append({k: v for k, v in reply.items() if k != "ok"})
            except WorkerUnavailable:
                out.append({"worker": i, "alive": False})
        return out

    # ------------------------------------------------------------------
    def stop(self) -> List[Optional[int]]:
        """Drain-ordered shutdown; returns worker exit codes."""
        if self._stopped:
            return [p.exitcode for p in self._procs]
        self._stopped = True
        if self.gateway is not None:
            self.gateway.stop()
        for i, proc in enumerate(self._procs):
            if not proc.is_alive():
                continue
            try:
                self._pools[i].request("drain")
            except (WorkerUnavailable, IndexError):
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (OSError, TypeError):
                    pass
        for pool in self._pools:
            pool.close()
        deadline = time.monotonic() + 15.0
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        return [p.exitcode for p in self._procs]

    def _kill_all(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
