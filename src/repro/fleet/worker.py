"""One fleet worker: a serving engine + batcher behind a socket server.

``worker_main`` is the ``multiprocessing`` (spawn-safe, module-level)
entry point. The worker builds its own read-only
:class:`~repro.serve.engine.ServingEngine` from the shared snapshot
(each worker pages the same table through a private partition buffer),
fronts it with a :class:`~repro.serve.batcher.RequestBatcher`, and
answers length-prefixed JSON requests (:mod:`~repro.fleet.protocol`) on
an ephemeral port it reports back through the ready queue. Every
connection gets a handler thread; concurrent connections therefore reach
the batcher as concurrent submissions and coalesce into one engine call
— the same micro-batching win as in-process serving, per worker.

Shutdown is drain-first, from either trigger (SIGTERM/SIGINT via
:class:`~repro.serve.lifecycle.GracefulDrain`, or the gateway's
``drain`` op): stop accepting connections, stop the batcher (new
submits are rejected, queued requests finish and their responses are
sent), let handler threads retire, write the final telemetry record,
exit 0. A request the worker has accepted is never dropped without a
response.

With telemetry on, each worker writes its own run log
(``<workdir>/worker-<i>/telemetry.jsonl``) through a private
:class:`~repro.obs.sinks.Recorder` — one event per protocol request,
periodic metrics with engine/buffer/batcher pull sources. ``repro top
<workdir>`` merges the per-worker logs.
"""

from __future__ import annotations

import os
import socket
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict

import numpy as np

from ..serve.batcher import Overloaded, RequestBatcher, RequestTimeout
from ..serve.lifecycle import GracefulDrain
from .protocol import ProtocolError, recv_frame, send_frame

__all__ = ["WorkerConfig", "worker_main"]

#: Protocol ops answered by a worker.
OPS = ("embed", "score", "topk", "encode", "health", "stats", "drain")


@dataclass
class WorkerConfig:
    """Everything a spawned worker needs, in picklable form."""

    index: int
    spec: Dict[str, Any]          # resolved serve-fleet JobSpec, as a dict
    workdir: str                  # fleet workdir; the worker uses worker-<i>/
    host: str = "127.0.0.1"
    telemetry: bool = False
    flush_every: int = 25

    @property
    def worker_dir(self) -> Path:
        return Path(self.workdir) / f"worker-{self.index}"


def _error(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"code": code, "message": message}}


def _int_list(value: Any, name: str) -> np.ndarray:
    if not isinstance(value, list) or not all(
            isinstance(x, int) and not isinstance(x, bool) for x in value):
        raise ValueError(f"{name!r} must be a list of integers")
    return np.asarray(value, dtype=np.int64)


class _Dispatcher:
    """Maps protocol ops onto the worker's batcher/engine."""

    def __init__(self, cfg: WorkerConfig, engine, batcher: RequestBatcher,
                 drain: GracefulDrain, recorder=None) -> None:
        self.cfg = cfg
        self.engine = engine
        self.batcher = batcher
        self.drain = drain
        self.recorder = recorder

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op not in OPS:
            return _error("bad_request",
                          f"unknown op {op!r} (expected one of {list(OPS)})")
        if self.recorder is not None:
            self.recorder.listener("request", {"op": op,
                                               "worker": self.cfg.index})
        try:
            return getattr(self, f"_op_{op}")(request)
        except (ValueError, KeyError, TypeError) as exc:
            return _error("bad_request", str(exc))
        except Overloaded as exc:
            return _error("overloaded", str(exc))
        except RequestTimeout as exc:
            return _error("timeout", str(exc))
        except RuntimeError as exc:
            if "stopping" in str(exc):
                return _error("draining", "worker is draining")
            return _error("internal", str(exc))
        except Exception as exc:      # answer, never kill the connection
            return _error("internal", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _op_embed(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ids = _int_list(request.get("ids"), "ids")
        rows = self.batcher.get_embeddings(ids)
        return {"ok": True, "embeddings": rows.tolist()}

    def _op_score(self, request: Dict[str, Any]) -> Dict[str, Any]:
        pairs = request.get("pairs")
        if (not isinstance(pairs, list) or not pairs
                or not all(isinstance(p, list) and len(p) in (2, 3)
                           and all(isinstance(x, int) and
                                   not isinstance(x, bool) for x in p)
                           for p in pairs)):
            raise ValueError("'pairs' must be a non-empty list of "
                             "[src, dst] or [src, rel, dst] integer rows")
        width = len(pairs[0])
        if any(len(p) != width for p in pairs):
            raise ValueError("'pairs' rows must all be the same width")
        scores = self.batcher.score_edges(np.asarray(pairs, dtype=np.int64))
        return {"ok": True, "scores": scores.tolist()}

    def _op_topk(self, request: Dict[str, Any]) -> Dict[str, Any]:
        src = request.get("source")
        k = request.get("k")
        if not isinstance(src, int) or isinstance(src, bool):
            raise ValueError("'source' must be an integer node id")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError("'k' must be a positive integer")
        rel = request.get("rel", 0)
        if not isinstance(rel, int) or isinstance(rel, bool):
            raise ValueError("'rel' must be an integer relation id")
        exact = bool(request.get("exact", False))
        exclude = _int_list(request.get("exclude", []), "exclude")
        ids, scores = self.batcher.topk_targets(src, k, rel=rel, exact=exact,
                                                exclude=exclude)
        return {"ok": True, "ids": ids.tolist(), "scores": scores.tolist()}

    def _op_encode(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ids = _int_list(request.get("ids"), "ids")
        seed = request.get("seed")
        if seed is not None and (not isinstance(seed, int)
                                 or isinstance(seed, bool)):
            raise ValueError("'seed' must be an integer or null")
        rows = self.batcher.encode_nodes(ids, seed=seed)
        return {"ok": True, "embeddings": rows.tolist()}

    def _op_health(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True,
                "status": "draining" if self.drain.triggered else "ok",
                "worker": self.cfg.index, "pid": os.getpid()}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "worker": self.cfg.index,
                "serve": self.engine.stats.as_dict(),
                "storage": self.engine.buffer.stats.as_dict(),
                "batcher": self.batcher.stats(),
                "latency": self.batcher.latency_percentiles()}

    def _op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Reply first setting only the flag: the batcher is stopped by the
        # main loop after the listener closes, so queued requests finish.
        self.drain.request_drain()
        return {"ok": True, "draining": True}


def _serve_connection(conn: socket.socket, dispatcher: _Dispatcher) -> None:
    """One connection's request loop: answer until EOF or drain."""
    conn.settimeout(0.5)
    try:
        while True:
            try:
                request = recv_frame(conn)
            except socket.timeout:
                if dispatcher.drain.triggered:
                    break
                continue
            except (ProtocolError, ConnectionError):
                break
            if request is None:
                break
            try:
                send_frame(conn, dispatcher.handle(request))
            except OSError:
                break
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _build_engine(cfg: WorkerConfig):
    """The worker-side engine build: same path as ``repro serve``."""
    from ..api.jobs import build_serving_engine
    from ..api.specs import JobSpec
    spec = JobSpec.from_dict(cfg.spec)
    worker_dir = cfg.worker_dir
    worker_dir.mkdir(parents=True, exist_ok=True)
    return build_serving_engine(spec, worker_dir)


def _make_recorder(cfg: WorkerConfig):
    if not cfg.telemetry:
        return None
    from ..obs.sinks import JsonlSink, Recorder
    return Recorder(JsonlSink(cfg.worker_dir / "telemetry.jsonl"),
                    flush_every=cfg.flush_every)


def worker_main(cfg: WorkerConfig, ready_queue) -> None:
    """The spawned worker process body (module-level for pickling)."""
    drain = GracefulDrain(exit_after=False)
    try:
        snap, kind, engine = _build_engine(cfg)
    except Exception as exc:
        ready_queue.put({"worker": cfg.index,
                         "error": f"{type(exc).__name__}: {exc}"})
        return
    fleet = cfg.spec.get("fleet", {})
    batcher = RequestBatcher(
        engine,
        max_batch=int(fleet.get("max_batch", 256)),
        max_wait_ms=float(fleet.get("max_wait_ms", 2.0)),
        max_queue=int(fleet.get("max_queue", 0)) or None,
        timeout_ms=float(fleet.get("timeout_ms", 0.0)) or None)
    recorder = _make_recorder(cfg)
    if recorder is not None:
        recorder.add_source("serve", engine.stats.as_dict)
        recorder.add_source("storage", engine.buffer.stats.as_dict)
        recorder.add_source("batcher", batcher.stats)
    dispatcher = _Dispatcher(cfg, engine, batcher, drain, recorder)

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((cfg.host, 0))
    listener.listen(128)
    listener.settimeout(0.2)
    port = listener.getsockname()[1]

    threads = []
    with drain, batcher:
        ready_queue.put({"worker": cfg.index, "port": port,
                         "pid": os.getpid(),
                         "num_nodes": int(engine.store.num_nodes),
                         "num_partitions": int(engine.scheme.num_partitions),
                         "dim": int(engine.store.dim),
                         "boundaries": [int(b) for b in
                                        engine.scheme.boundaries],
                         "kind": kind})
        parent = os.getppid()
        while not drain.triggered:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                if os.getppid() != parent:
                    # Orphaned: the fleet parent died without draining us
                    # (crash, SIGKILL). Serving with no gateway is useless
                    # — drain and exit instead of leaking forever.
                    drain.request_drain()
                    break
                continue
            except OSError:
                break
            t = threading.Thread(target=_serve_connection,
                                 args=(conn, dispatcher),
                                 name=f"fleet-worker-{cfg.index}-conn")
            t.start()
            threads.append(t)
        listener.close()
        # The with-block's batcher.stop() drains queued requests before the
        # worker thread exits; handler threads then observe the drain flag
        # on their next receive timeout and retire.
    for t in threads:
        t.join(timeout=5.0)
    if recorder is not None:
        recorder.close()
