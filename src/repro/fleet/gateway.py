"""HTTP/JSON front door for a serving fleet.

A stdlib ``ThreadingHTTPServer`` (no third-party deps) exposing the four
query families as POST endpoints::

    POST /v1/embeddings  {"ids": [0, 1, 2]}
    POST /v1/score       {"pairs": [[0, 5], [1, 9]]}       # or [s, r, d]
    POST /v1/topk        {"source": 0, "k": 5, "rel": 0,
                          "exact": false, "exclude": [0]}
    POST /v1/encode      {"ids": [0, 1], "seed": null}

plus ``GET /healthz`` (``ok`` / ``degraded``, HTTP 503 when degraded)
and ``GET /statz`` (per-worker engine/buffer/batcher stats, gateway
counters, the router's ownership ranges).

The gateway validates just enough to *route* — the body must be a JSON
object carrying the request's lead node id (first looked-up id, first
source, the top-k source). Everything else is validated by the owning
worker, whose structured error DTO ``{"error": {"code", "message"}}``
forwards unchanged with the matching HTTP status (``bad_request`` → 400,
``draining``/``unavailable``/``overloaded`` → 503, ``timeout`` → 504).
A worker whose socket is gone and whose process is dead yields 503 for
its partition range and flips ``/healthz`` to ``degraded``; other
ranges keep serving.

Each HTTP handler thread checks a private worker connection out of the
per-worker pool, so concurrent HTTP requests hit the worker's batcher
concurrently and coalesce there.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .protocol import MAX_FRAME, WorkerUnavailable

__all__ = ["Gateway"]

#: worker error code -> HTTP status for forwarded error DTOs.
_ERROR_STATUS = {"bad_request": 400, "not_found": 404, "draining": 503,
                 "unavailable": 503, "overloaded": 503, "timeout": 504,
                 "internal": 500}


def _error_body(code: str, message: str) -> Dict[str, Any]:
    return {"error": {"code": code, "message": message}}


class _LeadIdError(ValueError):
    """The body lacks the lead node id the router needs."""


def _lead_id(path: str, body: Dict[str, Any]) -> int:
    """The routing key: the node id the request is 'about'."""
    if path in ("/v1/embeddings", "/v1/encode"):
        ids = body.get("ids")
        if (not isinstance(ids, list) or not ids
                or not isinstance(ids[0], int) or isinstance(ids[0], bool)):
            raise _LeadIdError("'ids' must be a non-empty list of integers")
        return ids[0]
    if path == "/v1/score":
        pairs = body.get("pairs")
        if (not isinstance(pairs, list) or not pairs
                or not isinstance(pairs[0], list) or not pairs[0]
                or not isinstance(pairs[0][0], int)
                or isinstance(pairs[0][0], bool)):
            raise _LeadIdError("'pairs' must be a non-empty list of "
                               "[src, dst] or [src, rel, dst] rows")
        return pairs[0][0]
    if path == "/v1/topk":
        src = body.get("source")
        if not isinstance(src, int) or isinstance(src, bool):
            raise _LeadIdError("'source' must be an integer node id")
        return src
    raise _LeadIdError(f"no route for {path}")


#: HTTP path -> worker protocol op.
_OPS = {"/v1/embeddings": "embed", "/v1/score": "score",
        "/v1/topk": "topk", "/v1/encode": "encode"}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # One TCP segment per response: Nagle off, and a buffered wfile so
    # status line + headers + body leave in a single write (the default
    # unbuffered wfile's small writes interact with delayed ACK into a
    # ~40ms per-request latency floor on loopback).
    disable_nagle_algorithm = True
    wbufsize = -1

    def log_message(self, fmt, *args):      # quiet: telemetry covers this
        pass

    def do_GET(self) -> None:
        self.server.gateway._dispatch(self, "GET")     # type: ignore[attr-defined]

    def do_POST(self) -> None:
        self.server.gateway._dispatch(self, "POST")    # type: ignore[attr-defined]


class _Server(ThreadingHTTPServer):
    daemon_threads = False      # join in-flight handlers on server_close
    block_on_close = True
    allow_reuse_address = True


class Gateway:
    """The fleet's HTTP server; routes each request to its owning worker."""

    def __init__(self, fleet, host: str = "127.0.0.1", port: int = 0) -> None:
        self.fleet = fleet
        self._server = _Server((host, port), _Handler)
        self._server.gateway = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> "Gateway":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="fleet-gateway", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and join in-flight handler threads."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _count(self, key: str) -> None:
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if method == "GET" and path == "/healthz":
                status, body = self._healthz()
            elif method == "GET" and path == "/statz":
                status, body = self._statz()
            elif method == "POST" and path in _OPS:
                status, body = self._query(path, handler)
            elif path in _OPS or path in ("/healthz", "/statz"):
                status = 405
                body = _error_body("bad_request",
                                   f"{method} not allowed on {path}")
            else:
                status = 404
                body = _error_body("not_found", f"no route for {path}")
        except Exception as exc:    # a gateway bug must still answer JSON
            status = 500
            body = _error_body("internal", f"{type(exc).__name__}: {exc}")
        self._count(f"http.{path}.{status}")
        payload = json.dumps(body).encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(payload)))
            handler.end_headers()
            handler.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass                    # client went away; nothing to salvage

    def _read_body(self, handler: BaseHTTPRequestHandler) -> Dict[str, Any]:
        length = int(handler.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _LeadIdError("request body required")
        if length > MAX_FRAME:
            raise _LeadIdError(f"request body of {length} bytes exceeds "
                               f"the {MAX_FRAME} byte limit")
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _LeadIdError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise _LeadIdError("request body must be a JSON object")
        return body

    def _query(self, path: str,
               handler: BaseHTTPRequestHandler) -> Tuple[int, Dict[str, Any]]:
        try:
            body = self._read_body(handler)
            lead = _lead_id(path, body)
        except _LeadIdError as exc:
            return 400, _error_body("bad_request", str(exc))
        worker = self.fleet.route(lead)
        self._count(f"routed.worker-{worker}")
        try:
            response = self.fleet.request(worker, _OPS[path], **body)
        except WorkerUnavailable as exc:
            self.fleet.note_unavailable(worker)
            return 503, _error_body(
                "unavailable",
                f"worker {worker} (partitions "
                f"{self.fleet.owned_range(worker)}) is unavailable: {exc}")
        if response.get("ok"):
            out = {k: v for k, v in response.items() if k != "ok"}
            out["worker"] = worker
            return 200, out
        error = response.get("error") or {}
        code = error.get("code", "internal")
        return (_ERROR_STATUS.get(code, 500),
                _error_body(code, error.get("message", "worker error")))

    # ------------------------------------------------------------------
    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        workers = self.fleet.health()
        degraded = any(not w["alive"] for w in workers)
        status = "degraded" if degraded else "ok"
        return (503 if degraded else 200,
                {"status": status, "workers": workers})

    def _statz(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            counters = dict(self.counters)
        return 200, {"gateway": counters,
                     "router": {"policy": self.fleet.router.policy,
                                "ranges": {str(w): parts for w, parts in
                                           self.fleet.router.ranges().items()}},
                     "workers": self.fleet.worker_stats()}
