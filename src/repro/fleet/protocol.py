"""Length-prefixed JSON frames: the gateway <-> worker wire protocol.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON. Requests are objects with an ``op`` field
(``embed`` / ``score`` / ``topk`` / ``encode`` / ``health`` / ``stats``
/ ``drain``); responses are ``{"ok": true, ...}`` or ``{"ok": false,
"error": {"code": ..., "message": ...}}`` — the same error DTO shape the
HTTP gateway returns, so a worker-side failure forwards without
translation.

Floats cross the wire as JSON numbers printed by Python's
shortest-round-trip ``repr``: a float32 table value widens exactly to
double, prints losslessly, parses back to the same double, and narrows
back to the identical float32 — which is what makes the fleet's HTTP
responses bit-identical to in-process engine results.

Framing is deliberately dumb: no pipelining, one response per request in
order, so a connection is a unit of mutual exclusion and the gateway's
per-worker :class:`~repro.fleet.pool.ConnectionPool` provides the
concurrency instead.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = ["MAX_FRAME", "ProtocolError", "WorkerUnavailable",
           "send_frame", "recv_frame", "WorkerClient"]

#: Upper bound on one frame's JSON payload. Generous for real batches
#: (a 64 MiB frame is ~2M embedding floats) while refusing a corrupt or
#: hostile length prefix before allocating anything.
MAX_FRAME = 64 << 20

_LEN = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """A malformed frame: bad length prefix, oversized, or invalid JSON."""


class WorkerUnavailable(ConnectionError):
    """The worker's socket is gone (crashed, draining, or never up)."""


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    data = json.dumps(payload).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the "
                            f"{MAX_FRAME} byte limit")
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """``n`` bytes or ``None`` on clean EOF at a frame boundary; EOF
    mid-frame is a torn peer and raises."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise WorkerUnavailable("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """The next frame's payload, or ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds the "
                            f"{MAX_FRAME} byte limit")
    data = _recv_exact(sock, length)
    if data is None:
        raise WorkerUnavailable("connection closed between header and body")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


class WorkerClient:
    """One blocking request/response connection to a worker.

    Not thread-safe by design — the gateway keeps a pool of these per
    worker and checks one out per in-flight request, which is also what
    lets concurrent HTTP requests reach the worker's batcher *as*
    concurrent submissions and coalesce into one engine call.
    """

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0,
                 timeout: Optional[float] = None) -> None:
        self.host, self.port = host, int(port)
        try:
            self._sock = socket.create_connection((host, self.port),
                                                  timeout=connect_timeout)
        except OSError as exc:
            raise WorkerUnavailable(
                f"cannot connect to worker at {host}:{port}: {exc}") from exc
        self._sock.settimeout(timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op, block for its response frame."""
        payload = {"op": op, **fields}
        try:
            send_frame(self._sock, payload)
            response = recv_frame(self._sock)
        except (OSError, WorkerUnavailable) as exc:
            self.close()
            raise WorkerUnavailable(
                f"worker at {self.host}:{self.port} dropped the "
                f"connection: {exc}") from exc
        if response is None:
            self.close()
            raise WorkerUnavailable(
                f"worker at {self.host}:{self.port} closed the connection")
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
