"""Serving fleet: N engine workers behind a partition-affinity gateway.

One :class:`~repro.fleet.fleet.Fleet` runs the paper's out-of-core
serving engine as a deployable service: worker processes each own a
read-only :class:`~repro.serve.engine.ServingEngine` plus a
:class:`~repro.serve.batcher.RequestBatcher` over the same snapshot,
speaking a length-prefixed JSON protocol (:mod:`~repro.fleet.protocol`);
an HTTP/JSON gateway (:mod:`~repro.fleet.gateway`, stdlib
``ThreadingHTTPServer``) exposes the four query families as POST
endpoints plus ``/healthz`` and ``/statz``; and the
:class:`~repro.fleet.affinity.AffinityRouter` maps each request's lead
node id to the worker owning its partition range, so micro-batches
coalesce per worker and buffer swaps stay near the single-engine floor.
Run it as the ``serve-fleet`` job kind (``repro serve-fleet`` /
``repro run``); see ``docs/serving.md``.
"""

from .affinity import AffinityRouter
from .fleet import Fleet
from .gateway import Gateway
from .pool import ConnectionPool
from .protocol import (MAX_FRAME, ProtocolError, WorkerClient,
                       WorkerUnavailable, recv_frame, send_frame)
from .worker import WorkerConfig, worker_main

__all__ = ["AffinityRouter", "Fleet", "Gateway", "ConnectionPool",
           "ProtocolError", "WorkerClient", "WorkerUnavailable",
           "WorkerConfig", "worker_main", "send_frame", "recv_frame",
           "MAX_FRAME"]
