"""Partition-affinity request routing.

Every query family leads with a node id (the looked-up node, the scored
source, the top-k source). The router maps that id to its partition
(the same uniform boundaries the served store uses) and the partition to
the worker *owning* it, so queries against one partition always land on
the same worker — its buffer keeps that partition hot and micro-batches
coalesce per worker, which is the whole reason the fleet's swaps/1k
stays near the single-engine floor instead of multiplying by N.

Ownership starts as a static contiguous range split: worker ``w`` of
``W`` owns partitions ``[floor(w*p/W), floor((w+1)*p/W))`` — contiguous
because the store's partitions are contiguous id ranges, so range
queries and locality-ordered sweeps stay within one owner.
:meth:`AffinityRouter.set_assignment` is the rebalance hook: a future
load balancer (or an operator) can install any partition->worker map
atomically between requests; the bounded-history principle the roadmap
cites (QueryLRU) applies to *that* policy's bookkeeping, not to this
table, which is O(p) and exact.

``policy="random"`` ignores ids and deals workers round-robin — the
control arm the benchmark compares against.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["AffinityRouter", "range_assignment"]


def range_assignment(num_partitions: int, num_workers: int) -> List[int]:
    """The static contiguous split: partition -> owning worker."""
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    bounds = [(w * num_partitions) // num_workers
              for w in range(num_workers + 1)]
    out = []
    for w in range(num_workers):
        out.extend([w] * (bounds[w + 1] - bounds[w]))
    return out


class AffinityRouter:
    """Maps a request's lead node id to the worker owning its partition."""

    def __init__(self, boundaries: Sequence[int], num_workers: int,
                 policy: str = "range") -> None:
        if policy not in ("range", "random"):
            raise ValueError(f"unknown affinity policy {policy!r} "
                             f"(expected 'range' or 'random')")
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        self.num_partitions = len(self.boundaries) - 1
        self.num_workers = int(num_workers)
        self.policy = policy
        self._lock = threading.Lock()
        self._assignment = range_assignment(self.num_partitions,
                                            self.num_workers)
        self._rr = itertools.count()

    # ------------------------------------------------------------------
    def partition_of(self, node_id: int) -> int:
        """The served store's partition holding ``node_id`` (clamped, so
        an out-of-range id still routes somewhere and the worker returns
        the real validation error)."""
        i = int(np.searchsorted(self.boundaries, int(node_id),
                                side="right")) - 1
        return min(max(i, 0), self.num_partitions - 1)

    def owner(self, partition: int) -> int:
        """The worker currently owning ``partition``."""
        with self._lock:
            return self._assignment[int(partition)]

    def route(self, node_id: int) -> int:
        """Worker index for a request led by ``node_id``."""
        if self.policy == "random":
            return next(self._rr) % self.num_workers
        return self.owner(self.partition_of(node_id))

    # ------------------------------------------------------------------
    def assignment(self) -> List[int]:
        with self._lock:
            return list(self._assignment)

    def set_assignment(self, assignment: Sequence[int]) -> None:
        """Rebalance hook: install a new partition->worker map atomically.

        Future routes see the new owners immediately; requests already in
        flight complete against the old owner (both hold a correct copy
        of the snapshot — ownership is a locality optimization, never a
        correctness requirement).
        """
        assignment = [int(w) for w in assignment]
        if len(assignment) != self.num_partitions:
            raise ValueError(f"assignment must cover all "
                             f"{self.num_partitions} partitions")
        bad = [w for w in assignment if not 0 <= w < self.num_workers]
        if bad:
            raise ValueError(f"assignment names unknown workers {bad[:5]}")
        with self._lock:
            self._assignment = assignment

    def ranges(self) -> Dict[int, List[int]]:
        """worker -> owned partitions (diagnostics / ``/statz``)."""
        out: Dict[int, List[int]] = {w: [] for w in range(self.num_workers)}
        for part, w in enumerate(self.assignment()):
            out[w].append(part)
        return out
