"""Command-line interface: config-driven training runs, Marius-style.

Usage (also via ``python -m repro``)::

    python -m repro info                      # dataset registry
    python -m repro autotune --dataset freebase86m --memory-gb 61
    python -m repro train-lp --dataset fb15k237 --scale 0.1 --epochs 3
    python -m repro train-lp --dataset fb15k237 --disk --policy comet
    python -m repro train-nc --epochs 5
    python -m repro train-lp --config run.json   # JSON overrides CLI defaults
    python -m repro serve --snapshot ckpt/ --topk 5 10
    python -m repro serve --snapshot ckpt/ --bench 2000 --mix zipf
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .graph import (PAPER_DATASETS, load_fb15k237, load_freebase86m_mini,
                    load_papers100m_mini, load_wikikg90m_mini, paper_stats)
from .policies import autotune_from_dataset
from .train import (DiskConfig, DiskLinkPredictionTrainer,
                    DiskNodeClassificationConfig,
                    DiskNodeClassificationTrainer, LinkPredictionConfig,
                    LinkPredictionTrainer, NodeClassificationConfig,
                    NodeClassificationTrainer,
                    PipelinedLinkPredictionTrainer)

LP_DATASETS = {
    "fb15k237": lambda scale: load_fb15k237(scale=scale),
    "freebase86m-mini": lambda scale: load_freebase86m_mini(
        num_nodes=max(500, int(20000 * scale * 5))),
    "wikikg90m-mini": lambda scale: load_wikikg90m_mini(
        num_nodes=max(500, int(24000 * scale * 5))),
}


def _apply_config_file(args: argparse.Namespace) -> argparse.Namespace:
    if getattr(args, "config", None):
        overrides = json.loads(Path(args.config).read_text())
        for key, value in overrides.items():
            if not hasattr(args, key):
                raise SystemExit(f"unknown config key: {key}")
            setattr(args, key, value)
    return args


def cmd_info(args: argparse.Namespace) -> int:
    print(f"{'dataset':<16} {'nodes':>14} {'edges':>16} {'feat':>5} "
          f"{'total GB':>9} {'task':>5}")
    for name, stats in sorted(PAPER_DATASETS.items()):
        print(f"{name:<16} {stats.num_nodes:>14,} {stats.num_edges:>16,} "
              f"{stats.feat_dim:>5} {stats.total_gb:>9.1f} {stats.task:>5}")
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    stats = paper_stats(args.dataset)
    result = autotune_from_dataset(stats.num_nodes, stats.num_edges,
                                   args.dim or (stats.feat_dim or 50),
                                   args.memory_gb,
                                   max_physical=args.max_physical)
    print(f"dataset {stats.name}: {stats.num_nodes:,} nodes, "
          f"{stats.num_edges:,} edges, {args.memory_gb} GB CPU memory")
    print(f"  physical partitions p = {result.num_physical}")
    print(f"  logical partitions  l = {result.num_logical}")
    print(f"  buffer capacity     c = {result.buffer_capacity} "
          f"({result.buffer_fraction:.0%} resident)")
    print(f"  partition size        = {result.partition_bytes / (1 << 20):.0f} MiB")
    return 0


def cmd_train_lp(args: argparse.Namespace) -> int:
    args = _apply_config_file(args)
    if args.dataset not in LP_DATASETS:
        raise SystemExit(f"unknown LP dataset {args.dataset!r}; "
                         f"choose from {sorted(LP_DATASETS)}")
    data = LP_DATASETS[args.dataset](args.scale)
    fanouts = tuple(args.fanouts) if args.encoder != "none" else ()
    config = LinkPredictionConfig(
        embedding_dim=args.dim, encoder=args.encoder,
        num_layers=len(fanouts), fanouts=fanouts, decoder=args.decoder,
        batch_size=args.batch_size, num_negatives=args.negatives,
        num_epochs=args.epochs, eval_every=1, seed=args.seed)
    if args.disk and args.pipelined:
        raise SystemExit("--disk and --pipelined select different trainers; "
                         "pass one of them")
    if args.deterministic and not args.pipelined:
        raise SystemExit("--deterministic only applies to --pipelined "
                         "(the other trainers are already deterministic)")
    ckpt = _checkpoint_args(args)
    if args.disk:
        workdir = Path(args.workdir) if args.workdir else Path(
            tempfile.mkdtemp(prefix="repro-disk-"))
        disk = DiskConfig(workdir=workdir, num_partitions=args.partitions,
                          num_logical=args.logical, buffer_capacity=args.buffer,
                          policy=args.policy)
        trainer = DiskLinkPredictionTrainer(data, config, disk, **ckpt)
    elif args.pipelined:
        trainer = PipelinedLinkPredictionTrainer(
            data, config, num_sample_workers=args.workers,
            pipeline_depth=args.pipeline_depth,
            deterministic=args.deterministic, **ckpt)
    else:
        trainer = LinkPredictionTrainer(data, config, **ckpt)
    if args.resume_from:
        meta = trainer.resume(Path(args.resume_from))
        print(f"resumed from snapshot at epoch {meta['epoch']}"
              + (f", step {meta['step']}" if "step" in meta else "")
              + (f", batch {meta['batch']}" if "batch" in meta else ""))
    result = trainer.train(verbose=True)
    print(f"\nfinal MRR {result.final_mrr:.4f} "
          f"(hits@10 {result.final_metrics.hits_at_10:.4f}) "
          f"mean epoch {result.mean_epoch_seconds:.2f}s")
    if args.save:
        from .train.checkpoint import save_checkpoint
        embeddings = getattr(trainer, "embeddings", None)
        save_checkpoint(Path(args.save), trainer.model, config,
                        embeddings=embeddings.table if embeddings else None,
                        optimizer_state=embeddings.state if embeddings else None)
        print(f"checkpoint written to {args.save}")
    return 0


def _checkpoint_args(args: argparse.Namespace) -> dict:
    """Shared --checkpoint-every/--checkpoint-dir handling for trainers."""
    if not args.checkpoint_every and not args.checkpoint_dir:
        return {}
    checkpoint_dir = Path(args.checkpoint_dir) if args.checkpoint_dir else (
        Path(args.workdir) / "checkpoints" if args.workdir else
        Path(tempfile.mkdtemp(prefix="repro-ckpt-")))
    if args.checkpoint_every:
        print(f"checkpointing every {args.checkpoint_every} to {checkpoint_dir}")
    else:
        print(f"checkpoint dir {checkpoint_dir} (no --checkpoint-every: "
              f"snapshots are read for resume but none will be written)")
    return {"checkpoint_dir": checkpoint_dir,
            "checkpoint_every": args.checkpoint_every}


def cmd_train_nc(args: argparse.Namespace) -> int:
    args = _apply_config_file(args)
    data = load_papers100m_mini(num_nodes=args.nodes, num_edges=args.nodes * 9,
                                feat_dim=args.dim, seed=args.seed)
    fanouts = tuple(args.fanouts)
    config = NodeClassificationConfig(
        hidden_dim=args.dim, num_layers=len(fanouts), fanouts=fanouts,
        batch_size=args.batch_size, num_epochs=args.epochs, eval_every=1,
        seed=args.seed)
    ckpt = _checkpoint_args(args)
    if args.disk:
        workdir = Path(args.workdir) if args.workdir else Path(
            tempfile.mkdtemp(prefix="repro-nc-"))
        disk = DiskNodeClassificationConfig(workdir=workdir,
                                            num_partitions=args.partitions,
                                            buffer_capacity=args.buffer)
        trainer = DiskNodeClassificationTrainer(data, config, disk, **ckpt)
    else:
        trainer = NodeClassificationTrainer(data, config, **ckpt)
    if args.resume_from:
        meta = trainer.resume(Path(args.resume_from))
        print(f"resumed from snapshot at epoch {meta['epoch']}"
              + (f", step {meta['step']}" if "step" in meta else ""))
    result = trainer.train(verbose=True)
    print(f"\nfinal accuracy {result.final_accuracy:.4f} "
          f"mean epoch {result.mean_epoch_seconds:.2f}s")
    return 0


def _parse_ids(text: str) -> "np.ndarray":
    import numpy as np
    return np.array([int(x) for x in text.split(",") if x], dtype=np.int64)


def cmd_serve(args: argparse.Namespace) -> int:
    """Query a trained snapshot out-of-core (see docs/serving.md)."""
    import json as _json
    import numpy as np
    from .serve import serve_link_prediction, serve_node_classification
    from .train import SnapshotManager

    args = _apply_config_file(args)
    snap = Path(args.snapshot)
    if not (snap / "manifest.json").is_file():
        latest = SnapshotManager(snap).latest()
        if latest is None:
            raise SystemExit(f"no snapshots under {snap}")
        snap = latest
    meta = _json.loads((snap / "manifest.json").read_text())["meta"]
    kind = meta["trainer"]
    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="repro-serve-"))
    if kind.startswith("nc"):
        data = load_papers100m_mini(num_nodes=args.nc_nodes,
                                    num_edges=args.nc_nodes * 9,
                                    feat_dim=args.nc_dim, seed=args.nc_seed)
        engine = serve_node_classification(snap, data, workdir,
                                           num_partitions=args.partitions,
                                           buffer_capacity=args.buffer)
    else:
        graph = None
        if meta.get("config", {}).get("encoder", "none") != "none":
            # Encoder snapshots sample neighborhoods on read; the CLI
            # regenerates the training graph the same way train-lp does.
            if not args.dataset:
                raise SystemExit(
                    "this snapshot has a GNN encoder: pass --dataset/--scale "
                    "(the training data) so encode-on-read can sample "
                    "neighborhoods")
            if args.dataset not in LP_DATASETS:
                raise SystemExit(f"unknown LP dataset {args.dataset!r}; "
                                 f"choose from {sorted(LP_DATASETS)}")
            from .graph import Graph
            data = LP_DATASETS[args.dataset](args.scale)
            edges = data.split.train
            graph = Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                          dst=edges[:, -1],
                          rel=edges[:, 1] if edges.shape[1] == 3 else None,
                          num_relations=data.graph.num_relations)
        engine = serve_link_prediction(snap, workdir,
                                       num_partitions=args.partitions,
                                       buffer_capacity=args.buffer,
                                       graph=graph)
    print(f"serving {kind} snapshot {snap.name}: "
          f"{engine.store.num_nodes:,} nodes x {engine.store.dim}, "
          f"{engine.scheme.num_partitions} partitions, "
          f"buffer {engine.buffer.capacity}")

    if args.embed:
        ids = _parse_ids(args.embed)
        rows = engine.get_embeddings(ids)
        for node, row in zip(ids, rows):
            head = ", ".join(f"{v:+.4f}" for v in row[:6])
            more = ", ..." if len(row) > 6 else ""
            print(f"  node {node}: [{head}{more}]")
    if args.score:
        rows = []
        for spec in args.score:
            fields = [int(x) for x in spec.split(":")]
            if len(fields) == 2:            # S:D — relation 0
                fields = [fields[0], 0, fields[1]]
            elif len(fields) != 3:
                raise SystemExit(f"bad --score spec {spec!r}: expected "
                                 f"SRC:DST or SRC:REL:DST")
            rows.append(fields)
        pairs = np.array(rows, dtype=np.int64)
        for spec, score in zip(args.score, engine.score_edges(pairs)):
            print(f"  score({spec}) = {score:.6f}")
    if args.topk:
        src, k = int(args.topk[0]), int(args.topk[1])
        try:
            ids, scores = engine.topk_targets(src, k, rel=args.rel,
                                              exclude=[src])
        except RuntimeError as exc:    # e.g. encoder snapshots refuse top-k
            raise SystemExit(f"--topk: {exc}")
        print(f"  top-{k} targets for source {src} (rel {args.rel}):")
        for rank, (node, score) in enumerate(zip(ids, scores), 1):
            print(f"    #{rank:<3} node {node:<10} score {score:.6f}")
    if args.classify:
        preds = engine.classify(_parse_ids(args.classify), seed=0)
        print("  predicted classes:", preds.tolist())
    if args.bench:
        _serve_bench(engine, args)
    s = engine.stats
    print(f"engine stats: {s.lookups} lookups, {s.edges_scored} edges scored, "
          f"{s.topk_queries} topk, {s.swaps} partition swaps")
    return 0


def _serve_bench(engine, args: argparse.Namespace) -> None:
    """Quick QPS probe over a random or Zipf-skewed single-lookup stream
    (the same workload definition the committed benchmark baseline uses)."""
    import time as _time
    from .serve import make_query_stream
    queries = make_query_stream(args.mix, args.bench, engine.store.num_nodes,
                                seed=args.seed)
    swaps0 = engine.stats.swaps
    t0 = _time.perf_counter()
    for start in range(0, len(queries), args.max_batch):
        engine.get_embeddings(queries[start : start + args.max_batch])
    seconds = _time.perf_counter() - t0
    swaps = engine.stats.swaps - swaps0
    print(f"  bench: {len(queries)} {args.mix} lookups in {seconds:.2f}s = "
          f"{len(queries) / seconds:,.0f} QPS "
          f"({1000 * swaps / len(queries):.1f} swaps/1k queries, "
          f"batch {args.max_batch})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MariusGNN reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list the paper dataset registry")

    p = sub.add_parser("autotune", help="apply the Section 6 tuning rules")
    p.add_argument("--dataset", required=True)
    p.add_argument("--memory-gb", type=float, default=61.0)
    p.add_argument("--dim", type=int, default=None)
    p.add_argument("--max-physical", type=int, default=4096)

    p = sub.add_parser("train-lp", help="train link prediction")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--dataset", default="fb15k237")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--encoder", default="graphsage",
                   choices=["none", "graphsage", "gcn", "gat"])
    p.add_argument("--decoder", default="distmult",
                   choices=["distmult", "complex", "transe", "dot"])
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10])
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--negatives", type=int, default=64)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--policy", default="comet", choices=["comet", "beta"])
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--logical", type=int, default=8)
    p.add_argument("--buffer", type=int, default=4)
    p.add_argument("--workdir", default=None)
    p.add_argument("--save", default=None, help="checkpoint directory")
    p.add_argument("--pipelined", action="store_true",
                   help="threaded mini-batch pipeline trainer (in-memory)")
    p.add_argument("--workers", type=int, default=2,
                   help="sampling workers for --pipelined")
    p.add_argument("--pipeline-depth", type=int, default=4)
    p.add_argument("--deterministic", action="store_true",
                   help="ordered, replayable pipeline (bit-exact resume)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="snapshot cadence: epochs (in-memory), plan steps "
                        "(--disk), or consumed batches (--pipelined "
                        "--deterministic; without --deterministic the racy "
                        "pipeline only snapshots at epoch boundaries); 0 = off")
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot root (default: <workdir>/checkpoints)")
    p.add_argument("--resume-from", default=None,
                   help="snapshot dir (or checkpoint root) to resume from")

    p = sub.add_parser("serve", help="query a trained snapshot out-of-core")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--snapshot", required=True,
                   help="snapshot dir (or checkpoint root; latest wins)")
    p.add_argument("--workdir", default=None,
                   help="serving workdir for the paged table (default: temp)")
    p.add_argument("--dataset", default=None,
                   help="LP training dataset (required for encoder "
                        "snapshots: enables encode-on-read sampling)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="dataset scale used at training time")
    p.add_argument("--partitions", type=int, default=None,
                   help="partition count (default: the snapshot's layout)")
    p.add_argument("--buffer", type=int, default=4,
                   help="partitions held in memory at once")
    p.add_argument("--embed", default=None, metavar="IDS",
                   help="comma-separated node ids to look up")
    p.add_argument("--score", nargs="*", default=None, metavar="S:D|S:R:D",
                   help="edges to score, e.g. 12:340 or 12:7:340")
    p.add_argument("--topk", nargs=2, default=None, metavar=("SRC", "K"),
                   help="best-K destinations for a source node")
    p.add_argument("--rel", type=int, default=0, help="relation for --topk")
    p.add_argument("--classify", default=None, metavar="IDS",
                   help="comma-separated node ids to classify (NC snapshots)")
    p.add_argument("--bench", type=int, default=0, metavar="N",
                   help="run an N-query lookup throughput probe")
    p.add_argument("--mix", default="zipf", choices=["zipf", "random"],
                   help="query mix for --bench")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size for --bench")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nc-nodes", type=int, default=4000,
                   help="NC snapshots: dataset size to regenerate (must "
                        "match training)")
    p.add_argument("--nc-dim", type=int, default=32)
    p.add_argument("--nc-seed", type=int, default=0)

    p = sub.add_parser("train-nc", help="train node classification")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--nodes", type=int, default=4000)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10, 5])
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--buffer", type=int, default=8)
    p.add_argument("--workdir", default=None)
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="snapshot cadence: epochs (in-memory) or epoch-plan "
                        "steps (--disk); 0 = off")
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot root (default: <workdir>/checkpoints)")
    p.add_argument("--resume-from", default=None,
                   help="snapshot dir (or checkpoint root) to resume from")

    return parser


COMMANDS = {"info": cmd_info, "autotune": cmd_autotune,
            "train-lp": cmd_train_lp, "train-nc": cmd_train_nc,
            "serve": cmd_serve}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
