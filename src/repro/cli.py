"""Command-line interface: every subcommand is a thin shim over the
unified job API (:mod:`repro.api`) — flags build a typed
:class:`~repro.api.specs.JobSpec`, and ``repro.api.run`` executes it.

Usage (also via ``python -m repro``)::

    python -m repro info                      # dataset registry
    python -m repro info --jobs               # job kinds + spec schema
    python -m repro autotune --dataset freebase86m --memory-gb 61
    python -m repro train-lp --dataset fb15k237 --scale 0.1 --epochs 3
    python -m repro train-lp --dataset fb15k237 --disk --policy comet
    python -m repro train-nc --epochs 5
    python -m repro train-lp --config run.json   # flags beat config values
    python -m repro train-lp --dump-spec         # resolved JobSpec, no run
    python -m repro run job.json                 # execute any job kind
    python -m repro serve --snapshot ckpt/ --topk 5 10
    python -m repro serve --snapshot ckpt/ --bench 2000 --mix zipf
    python -m repro stream --events 20000 --compact-every 4000 --refresh
    python -m repro stream --repl --verify
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from . import api
from .api import (CheckpointSpec, DataSpec, FleetSpec, JobSpec, ModelSpec,
                  ServeSpec, StorageSpec, StreamSpec, TrainSpec)
from .api import registry as job_registry
from .graph import PAPER_DATASETS, paper_stats
from .policies import autotune_from_dataset


def cmd_info(args: argparse.Namespace) -> int:
    if args.jobs:
        print(f"{len(api.JOB_KINDS)} registered job kinds "
              f"(run any of them with `repro run <spec.json>`):\n")
        for kind in api.job_kinds():
            info = api.kind_info(kind)
            print(f"{kind:<14} {info.description}")
            for line in api.schema_lines(kind):
                print(f"  {line}")
            print()
        return 0
    print(f"{'dataset':<16} {'nodes':>14} {'edges':>16} {'feat':>5} "
          f"{'total GB':>9} {'task':>5}")
    for name, stats in sorted(PAPER_DATASETS.items()):
        print(f"{name:<16} {stats.num_nodes:>14,} {stats.num_edges:>16,} "
              f"{stats.feat_dim:>5} {stats.total_gb:>9.1f} {stats.task:>5}")
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    stats = paper_stats(args.dataset)
    result = autotune_from_dataset(stats.num_nodes, stats.num_edges,
                                   args.dim or (stats.feat_dim or 50),
                                   args.memory_gb,
                                   max_physical=args.max_physical)
    print(f"dataset {stats.name}: {stats.num_nodes:,} nodes, "
          f"{stats.num_edges:,} edges, {args.memory_gb} GB CPU memory")
    print(f"  physical partitions p = {result.num_physical}")
    print(f"  logical partitions  l = {result.num_logical}")
    print(f"  buffer capacity     c = {result.buffer_capacity} "
          f"({result.buffer_fraction:.0%} resident)")
    print(f"  partition size        = {result.partition_bytes / (1 << 20):.0f} MiB")
    return 0


# ---------------------------------------------------------------------------
# Flag -> JobSpec shims (behaviour-preserving: same defaults as the legacy
# subcommands, resolved through the registry's per-kind defaults)
# ---------------------------------------------------------------------------

def _checkpoint_spec(args: argparse.Namespace,
                     workdir_fallback: bool = False) -> CheckpointSpec:
    """Checkpoint flags -> spec. ``workdir_fallback`` routes the legacy
    in-memory-trainer behaviour where ``--workdir`` (a flag without a
    storage section to live in) supplies the ``<workdir>/checkpoints``
    default; disk kinds resolve that from ``storage.workdir`` at build.
    The fallback applies only when checkpointing was actually requested
    (a cadence or an explicit dir) — bare ``--workdir`` must not enable
    the snapshot subsystem, exactly like the legacy commands."""
    ckpt_dir = args.checkpoint_dir
    if (ckpt_dir is None and workdir_fallback and args.checkpoint_every
            and getattr(args, "workdir", None)):
        ckpt_dir = api.default_checkpoint_dir(args.workdir)
    return CheckpointSpec(every=args.checkpoint_every, dir=ckpt_dir,
                          compress=args.checkpoint_compress,
                          resume_from=args.resume_from,
                          incremental=getattr(args, "checkpoint_incremental",
                                              False))


def _train_lp_spec(args: argparse.Namespace) -> JobSpec:
    if args.disk and args.pipelined:
        raise SystemExit("--disk and --pipelined select different trainers; "
                         "pass one of them")
    if args.deterministic and not args.pipelined:
        raise SystemExit("--deterministic only applies to --pipelined "
                         "(the other trainers are already deterministic)")
    kind = (job_registry.LP_DISK if args.disk else
            job_registry.LP_PIPELINED if args.pipelined else
            job_registry.LP_MEM)
    spec = JobSpec(
        kind=kind,
        data=DataSpec(dataset=args.dataset, scale=args.scale),
        model=ModelSpec(dim=args.dim, encoder=args.encoder,
                        decoder=args.decoder, fanouts=tuple(args.fanouts)),
        train=TrainSpec(batch_size=args.batch_size, negatives=args.negatives,
                        epochs=args.epochs, seed=args.seed,
                        workers=args.workers,
                        pipeline_depth=args.pipeline_depth,
                        deterministic=args.deterministic, save=args.save),
        checkpoint=_checkpoint_spec(args, workdir_fallback=not args.disk))
    if args.disk:
        spec.storage = StorageSpec(workdir=args.workdir,
                                   partitions=args.partitions,
                                   logical=args.logical, buffer=args.buffer,
                                   policy=args.policy)
    return spec


def _train_nc_spec(args: argparse.Namespace) -> JobSpec:
    kind = job_registry.NC_DISK if args.disk else job_registry.NC_MEM
    spec = JobSpec(
        kind=kind,
        data=DataSpec(nodes=args.nodes),
        model=ModelSpec(dim=args.dim, fanouts=tuple(args.fanouts)),
        train=TrainSpec(batch_size=args.batch_size, epochs=args.epochs,
                        seed=args.seed),
        checkpoint=_checkpoint_spec(args, workdir_fallback=not args.disk))
    if args.disk:
        spec.storage = StorageSpec(workdir=args.workdir,
                                   partitions=args.partitions,
                                   buffer=args.buffer)
    return spec


def _serve_spec(args: argparse.Namespace) -> JobSpec:
    topk = None
    if args.topk:
        topk = (int(args.topk[0]), int(args.topk[1]))
    return JobSpec(
        kind=job_registry.SERVE,
        data=DataSpec(dataset=args.dataset, scale=args.scale,
                      nodes=args.nc_nodes, feat_dim=args.nc_dim,
                      seed=args.nc_seed),
        storage=StorageSpec(workdir=args.workdir, partitions=args.partitions,
                            buffer=args.buffer),
        serve=ServeSpec(snapshot=args.snapshot, embed=args.embed,
                        score=tuple(args.score) if args.score else (),
                        topk=topk, rel=args.rel,
                        ann=False if args.no_ann else None,
                        ann_cluster_size=args.ann_cluster_size,
                        exact=args.exact, classify=args.classify,
                        bench=args.bench, mix=args.mix,
                        max_batch=args.max_batch, seed=args.seed))


def _serve_fleet_spec(args: argparse.Namespace) -> JobSpec:
    return JobSpec(
        kind=job_registry.SERVE_FLEET,
        data=DataSpec(dataset=args.dataset, scale=args.scale,
                      nodes=args.nc_nodes, feat_dim=args.nc_dim,
                      seed=args.nc_seed),
        storage=StorageSpec(workdir=args.workdir, partitions=args.partitions,
                            buffer=args.buffer),
        serve=ServeSpec(snapshot=args.snapshot,
                        ann=False if args.no_ann else None,
                        ann_cluster_size=args.ann_cluster_size),
        fleet=FleetSpec(workers=args.workers, host=args.host, port=args.port,
                        affinity=args.affinity, max_batch=args.max_batch,
                        max_wait_ms=args.max_wait_ms,
                        max_queue=args.max_queue, timeout_ms=args.timeout_ms,
                        duration=args.duration))


def _stream_spec(args: argparse.Namespace) -> JobSpec:
    return JobSpec(
        kind=job_registry.STREAM,
        data=DataSpec(dataset=args.dataset, scale=args.scale),
        model=ModelSpec(dim=args.dim),
        train=TrainSpec(batch_size=args.batch_size, negatives=args.negatives,
                        seed=args.seed),
        storage=StorageSpec(workdir=args.workdir, partitions=args.partitions,
                            buffer=args.buffer,
                            spill_threshold=args.spill_threshold),
        stream=StreamSpec(events=args.events, event_batch=args.event_batch,
                          delete_fraction=args.delete_fraction,
                          add_nodes_every=args.add_nodes_every,
                          compact_every=args.compact_every,
                          refresh=args.refresh, verify=args.verify,
                          repl=args.repl, wal=args.wal,
                          fsync_every=args.fsync_every,
                          background_compaction=args.background_compaction,
                          lock_stripes=args.lock_stripes),
        checkpoint=_checkpoint_spec(args))


def _execute(spec: JobSpec, args: argparse.Namespace) -> int:
    """Dump the resolved spec (``--dump-spec``) or run it verbosely.

    Only :class:`~repro.api.JobError` (user configuration errors) becomes
    a clean traceback-free exit; any other exception out of the run is a
    real defect and propagates with its stack."""
    try:
        resolved = spec.resolve()
        if getattr(args, "dump_spec", False):
            print(json.dumps(resolved.to_dict(), indent=2))
            return 0
        api.run(resolved, verbose=True)
    except api.JobError as exc:
        raise SystemExit(str(exc)) from exc
    return 0


def cmd_train_lp(args: argparse.Namespace) -> int:
    return _execute(_train_lp_spec(args), args)


def cmd_train_nc(args: argparse.Namespace) -> int:
    return _execute(_train_nc_spec(args), args)


def cmd_serve(args: argparse.Namespace) -> int:
    return _execute(_serve_spec(args), args)


def cmd_serve_fleet(args: argparse.Namespace) -> int:
    return _execute(_serve_fleet_spec(args), args)


def cmd_stream(args: argparse.Namespace) -> int:
    return _execute(_stream_spec(args), args)


def cmd_run(args: argparse.Namespace) -> int:
    """Execute any job kind from a JobSpec JSON file."""
    try:
        spec = api.load_spec(args.spec)
    except api.JobError as exc:
        raise SystemExit(str(exc)) from exc
    if args.telemetry is not None:
        # --telemetry forces a JSONL run log on top of whatever the spec
        # says; a non-empty value overrides the log path too.
        if spec.telemetry.sink == "none":
            spec.telemetry.sink = "jsonl"
        if args.telemetry:
            spec.telemetry.path = args.telemetry
    return _execute(spec, args)


def _last_metrics(records: List[dict]) -> Dict[str, Any]:
    """The metrics dict of the last metrics record (cumulative deltas)."""
    last = None
    for record in records:
        if record.get("type") == "metrics":
            last = record
    return {} if last is None else (last.get("metrics") or {})


def _span_rows(records: List[dict]) -> List[Tuple[str, dict]]:
    """(name, summary) histogram rows of the last metrics record."""
    return [(name, value)
            for name, value in sorted(_last_metrics(records).items())
            if isinstance(value, dict) and value.get("count")]


def _scalar_metrics(records: List[dict]) -> Dict[str, float]:
    """Numeric (counter / gauge / source) entries of the last metrics
    record."""
    return {name: value for name, value in _last_metrics(records).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)}


def _top_logs(raw: str) -> List[Path]:
    """Resolve a ``repro top`` target: a log file, a directory searched
    recursively, or a glob pattern (e.g. ``work/worker-*/telemetry.jsonl``)."""
    import glob as globlib
    target = Path(raw)
    if target.is_dir():
        logs = sorted(target.rglob("telemetry.jsonl"))
        if not logs:
            raise SystemExit(f"no telemetry.jsonl under {target} "
                             f"(run with --telemetry or telemetry.sink=jsonl)")
        return logs
    if target.is_file():
        return [target]
    if any(ch in raw for ch in "*?["):
        logs = sorted(Path(p) for p in globlib.glob(raw, recursive=True)
                      if Path(p).is_file())
        if not logs:
            raise SystemExit(f"no run logs match {raw!r}")
        return logs
    raise SystemExit(f"no such file or directory: {target}")


def _render_sections(header: str, seconds: float, record_count: int,
                     events: Dict[str, int], rows: List[Tuple[str, dict]],
                     scalars: Dict[str, float]) -> None:
    print(f"{header} — {record_count} records over {seconds:.1f}s")
    if events:
        line = ", ".join(f"{name} x{count}"
                         for name, count in sorted(events.items()))
        print(f"  events: {line}")
    if rows:
        print(f"  {'metric':<36} {'count':>7} {'total':>12} "
              f"{'p50':>10} {'p99':>10} {'max':>10}")
        for name, h in rows:
            print(f"  {name:<36} {h['count']:>7} {h['sum']:>12.1f} "
                  f"{h['p50']:>10.3f} {h['p99']:>10.3f} "
                  f"{h['max']:>10.3f}")
    if scalars:
        print(f"  {'counter':<36} {'value':>12} {'per sec':>10}")
        for name, value in sorted(scalars.items()):
            rate = value / seconds if seconds > 0 else 0.0
            print(f"  {name:<36} {value:>12,.0f} {rate:>10,.1f}")
    scanned = scalars.get("serve.topk_parts_scanned", 0)
    pruned = scalars.get("serve.topk_parts_pruned", 0)
    if scanned or pruned:
        ratio = pruned / (scanned + pruned)
        print(f"  ann prune ratio: {ratio:.1%} "
              f"({pruned:.0f} of {scanned + pruned:.0f} candidate "
              f"partitions skipped)")
    print()


def cmd_top(args: argparse.Namespace) -> int:
    """Render telemetry run logs: event counts, duration tails, counters.

    Multiple logs (a directory of per-worker fleet logs, or a glob) each
    render individually and then as one merged view — counters summed,
    histograms merged exactly by bucket addition."""
    from .obs import read_jsonl
    logs = _top_logs(args.run_dir)
    merged_events: Dict[str, int] = {}
    merged_scalars: Dict[str, float] = {}
    merged_hists: Dict[str, List[dict]] = {}
    merged_records = 0
    m_lo = m_hi = None
    for path in logs:
        try:
            records = read_jsonl(path)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        events: Dict[str, int] = {}
        t_lo = t_hi = None
        for record in records:
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                t_lo = ts if t_lo is None else min(t_lo, ts)
                t_hi = ts if t_hi is None else max(t_hi, ts)
            if record.get("type") == "event":
                name = record.get("event", "?")
                events[name] = events.get(name, 0) + 1
        seconds = (t_hi - t_lo) if (t_lo is not None and t_hi is not None) \
            else 0.0
        scalars = _scalar_metrics(records)
        _render_sections(str(path), seconds, len(records), events,
                         _span_rows(records), scalars)
        if len(logs) > 1:
            merged_records += len(records)
            if t_lo is not None:
                m_lo = t_lo if m_lo is None else min(m_lo, t_lo)
                m_hi = t_hi if m_hi is None else max(m_hi, t_hi)
            for name, count in events.items():
                merged_events[name] = merged_events.get(name, 0) + count
            for name, value in scalars.items():
                merged_scalars[name] = merged_scalars.get(name, 0) + value
            for name, state in _last_metrics(records).items():
                if isinstance(state, dict) and state.get("count"):
                    merged_hists.setdefault(name, []).append(state)
    if len(logs) > 1:
        from .obs import merge_histogram_states, summarize_histogram
        rows = [(name, summarize_histogram(merge_histogram_states(states)))
                for name, states in sorted(merged_hists.items())]
        seconds = (m_hi - m_lo) if (m_lo is not None and m_hi is not None) \
            else 0.0
        _render_sections(f"merged ({len(logs)} logs)", seconds,
                         merged_records, merged_events, rows, merged_scalars)
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_checkpoint_flags(p: argparse.ArgumentParser, every_help: str,
                          incremental: bool = False) -> None:
    """The snapshot flags shared by every training-ish subcommand."""
    p.add_argument("--checkpoint-every", type=int, default=0, help=every_help)
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot root (default: <workdir>/checkpoints)")
    p.add_argument("--checkpoint-compress", action="store_true",
                   help="zlib-compress snapshot array payloads")
    p.add_argument("--resume-from", default=None,
                   help="snapshot dir (or checkpoint root) to resume from")
    if incremental:
        p.add_argument("--checkpoint-incremental", action="store_true",
                       help="dirty-partition-only snapshots chained to a "
                            "full base (disk trainers)")


def build_parser() -> Tuple[argparse.ArgumentParser,
                            Dict[str, argparse.ArgumentParser]]:
    parser = argparse.ArgumentParser(
        prog="repro", description="MariusGNN reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)
    subparsers: Dict[str, argparse.ArgumentParser] = {}

    def subparser(name: str, **kwargs) -> argparse.ArgumentParser:
        subparsers[name] = sub.add_parser(name, **kwargs)
        return subparsers[name]

    p = subparser("info", help="list the paper dataset registry")
    p.add_argument("--jobs", action="store_true",
                   help="list registered job kinds with their spec schema")

    p = subparser("autotune", help="apply the Section 6 tuning rules")
    p.add_argument("--dataset", required=True)
    p.add_argument("--memory-gb", type=float, default=61.0)
    p.add_argument("--dim", type=int, default=None)
    p.add_argument("--max-physical", type=int, default=4096)

    p = subparser("run", help="execute any job kind from a JobSpec file")
    p.add_argument("spec", help="JobSpec JSON file (see `repro info --jobs` "
                                "and docs/api.md)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved spec and exit without running")
    p.add_argument("--telemetry", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="write a JSONL telemetry run log (optional PATH; "
                        "default <workdir>/telemetry.jsonl); overrides "
                        "the spec's telemetry.sink=none")

    p = subparser("top", help="render telemetry run logs (merging many)")
    p.add_argument("run_dir", help="run directory (searched recursively for "
                                   "telemetry.jsonl), a log file, or a glob; "
                                   "multiple logs also render a merged view")

    p = subparser("train-lp", help="train link prediction")
    p.add_argument("--config", help="JSON file of option defaults "
                                    "(explicit flags win)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved JobSpec and exit")
    p.add_argument("--dataset", default="fb15k237")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--encoder", default="graphsage",
                   choices=["none", "graphsage", "gcn", "gat"])
    p.add_argument("--decoder", default="distmult",
                   choices=["distmult", "complex", "transe", "dot"])
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10])
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--negatives", type=int, default=64)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--policy", default="comet", choices=["comet", "beta"])
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--logical", type=int, default=8)
    p.add_argument("--buffer", type=int, default=4)
    p.add_argument("--workdir", default=None)
    p.add_argument("--save", default=None, help="checkpoint directory")
    p.add_argument("--pipelined", action="store_true",
                   help="threaded mini-batch pipeline trainer (in-memory)")
    p.add_argument("--workers", type=int, default=2,
                   help="sampling workers for --pipelined")
    p.add_argument("--pipeline-depth", type=int, default=4)
    p.add_argument("--deterministic", action="store_true",
                   help="ordered, replayable pipeline (bit-exact resume)")
    _add_checkpoint_flags(
        p, every_help="snapshot cadence: epochs (in-memory), plan steps "
                      "(--disk), or consumed batches (--pipelined "
                      "--deterministic; without --deterministic the racy "
                      "pipeline only snapshots at epoch boundaries); 0 = off",
        incremental=True)

    p = subparser("stream", help="live-graph streaming: ingest, "
                                 "compact, refresh, query")
    p.add_argument("--config", help="JSON file of option defaults "
                                    "(explicit flags win)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved JobSpec and exit")
    p.add_argument("--dataset", default="freebase86m-mini")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--buffer", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--negatives", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workdir", default=None,
                   help="stream workdir for the live stores (default: temp)")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="run the synthetic event-stream driver for N events")
    p.add_argument("--event-batch", type=int, default=500,
                   help="events ingested per driver batch")
    p.add_argument("--delete-fraction", type=float, default=0.1,
                   help="fraction of driver events that are deletions")
    p.add_argument("--add-nodes-every", type=int, default=8,
                   help="driver batches between node additions (0 = never)")
    p.add_argument("--compact-every", type=int, default=4000,
                   help="compact when this many events are pending (0 = never)")
    p.add_argument("--refresh", action="store_true",
                   help="fine-tune delta-touched partitions after each compaction")
    p.add_argument("--spill-threshold", type=int, default=1 << 20,
                   help="in-memory delta events before the log spills to disk")
    p.add_argument("--verify", action="store_true",
                   help="check the live view against an offline rebuild")
    p.add_argument("--repl", action="store_true",
                   help="interactive ingest/compact/query loop")
    p.add_argument("--wal", action="store_true",
                   help="journal appends to <workdir>/wal and recover "
                        "acknowledged events after a crash")
    p.add_argument("--fsync-every", type=int, default=1,
                   help="WAL group-commit window: fsync once per N frames")
    p.add_argument("--background-compaction", action="store_true",
                   help="compact on a worker thread with retry/backoff")
    p.add_argument("--lock-stripes", type=int, default=8,
                   help="striped ingest locks over bucket ranges")
    _add_checkpoint_flags(p, every_help="snapshot cadence in refreshes; "
                                        "0 = off")

    p = subparser("serve", help="query a trained snapshot out-of-core")
    p.add_argument("--config", help="JSON file of option defaults "
                                    "(explicit flags win)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved JobSpec and exit")
    p.add_argument("--snapshot", required=True,
                   help="snapshot dir (or checkpoint root; latest wins)")
    p.add_argument("--workdir", default=None,
                   help="serving workdir for the paged table (default: temp)")
    p.add_argument("--dataset", default=None,
                   help="LP training dataset (required for encoder "
                        "snapshots: enables encode-on-read sampling)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="dataset scale used at training time")
    p.add_argument("--partitions", type=int, default=None,
                   help="partition count (default: the snapshot's layout)")
    p.add_argument("--buffer", type=int, default=4,
                   help="partitions held in memory at once")
    p.add_argument("--embed", default=None, metavar="IDS",
                   help="comma-separated node ids to look up")
    p.add_argument("--score", nargs="*", default=None, metavar="S:D|S:R:D",
                   help="edges to score, e.g. 12:340 or 12:7:340")
    p.add_argument("--topk", nargs=2, default=None, metavar=("SRC", "K"),
                   help="best-K destinations for a source node")
    p.add_argument("--rel", type=int, default=0, help="relation for --topk")
    p.add_argument("--no-ann", action="store_true",
                   help="disable the per-partition ANN index for --topk "
                        "(every query runs the exact blockwise sweep)")
    p.add_argument("--ann-cluster-size", type=int, default=64,
                   help="target rows per ANN cluster")
    p.add_argument("--exact", action="store_true",
                   help="force the exact sweep for this --topk query "
                        "(the ANN path's correctness oracle)")
    p.add_argument("--classify", default=None, metavar="IDS",
                   help="comma-separated node ids to classify (NC snapshots)")
    p.add_argument("--bench", type=int, default=0, metavar="N",
                   help="run an N-query lookup throughput probe")
    p.add_argument("--mix", default="zipf", choices=["zipf", "random"],
                   help="query mix for --bench")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size for --bench")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nc-nodes", type=int, default=4000,
                   help="NC snapshots: dataset size to regenerate (must "
                        "match training)")
    p.add_argument("--nc-dim", type=int, default=32)
    p.add_argument("--nc-seed", type=int, default=0)

    p = subparser("serve-fleet", help="serve a snapshot over HTTP through "
                                      "N workers + affinity gateway")
    p.add_argument("--config", help="JSON file of option defaults "
                                    "(explicit flags win)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved JobSpec and exit")
    p.add_argument("--snapshot", required=True,
                   help="snapshot dir (or checkpoint root; latest wins)")
    p.add_argument("--workdir", default=None,
                   help="fleet workdir: per-worker paged tables and run "
                        "logs land in worker-<i>/ (default: temp)")
    p.add_argument("--dataset", default=None,
                   help="LP training dataset (required for encoder "
                        "snapshots: enables encode-on-read sampling)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="dataset scale used at training time")
    p.add_argument("--partitions", type=int, default=None,
                   help="partition count (default: the snapshot's layout)")
    p.add_argument("--buffer", type=int, default=4,
                   help="partitions held in memory per worker")
    p.add_argument("--workers", type=int, default=2,
                   help="serving worker processes")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for gateway and workers")
    p.add_argument("--port", type=int, default=0,
                   help="gateway HTTP port (0 = ephemeral, printed at start)")
    p.add_argument("--affinity", default="range",
                   choices=["range", "random"],
                   help="request routing: partition ownership or round-robin")
    p.add_argument("--max-batch", type=int, default=256,
                   help="per-worker micro-batch size")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="per-worker micro-batch linger window")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="per-worker admission bound (0 = unbounded)")
    p.add_argument("--timeout-ms", type=float, default=0.0,
                   help="per-request queue deadline (0 = none)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve before draining "
                        "(0 = until SIGINT/SIGTERM)")
    p.add_argument("--no-ann", action="store_true",
                   help="disable the per-partition ANN index for top-k")
    p.add_argument("--ann-cluster-size", type=int, default=64,
                   help="target rows per ANN cluster")
    p.add_argument("--nc-nodes", type=int, default=4000,
                   help="NC snapshots: dataset size to regenerate (must "
                        "match training)")
    p.add_argument("--nc-dim", type=int, default=32)
    p.add_argument("--nc-seed", type=int, default=0)

    p = subparser("train-nc", help="train node classification")
    p.add_argument("--config", help="JSON file of option defaults "
                                    "(explicit flags win)")
    p.add_argument("--dump-spec", action="store_true",
                   help="print the resolved JobSpec and exit")
    p.add_argument("--nodes", type=int, default=4000)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10, 5])
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--buffer", type=int, default=8)
    p.add_argument("--workdir", default=None)
    _add_checkpoint_flags(
        p, every_help="snapshot cadence: epochs (in-memory) or epoch-plan "
                      "steps (--disk); 0 = off",
        incremental=True)

    return parser, subparsers


COMMANDS = {"info": cmd_info, "autotune": cmd_autotune,
            "run": cmd_run, "top": cmd_top,
            "train-lp": cmd_train_lp, "train-nc": cmd_train_nc,
            "serve": cmd_serve, "serve-fleet": cmd_serve_fleet,
            "stream": cmd_stream}


def main(argv: Optional[List[str]] = None) -> int:
    parser, subparsers = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "config", None):
        # A config file supplies *defaults*: install its values on the
        # subcommand's parser and re-parse, so any flag given explicitly on
        # the command line wins over the file (the old behaviour let the
        # file silently overwrite explicit flags).
        overrides = json.loads(Path(args.config).read_text())
        for key in overrides:
            if not hasattr(args, key):
                raise SystemExit(f"unknown config key: {key}")
        subparsers[args.command].set_defaults(**overrides)
        args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
