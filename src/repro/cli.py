"""Command-line interface: config-driven training runs, Marius-style.

Usage (also via ``python -m repro``)::

    python -m repro info                      # dataset registry
    python -m repro autotune --dataset freebase86m --memory-gb 61
    python -m repro train-lp --dataset fb15k237 --scale 0.1 --epochs 3
    python -m repro train-lp --dataset fb15k237 --disk --policy comet
    python -m repro train-nc --epochs 5
    python -m repro train-lp --config run.json   # JSON overrides CLI defaults
    python -m repro serve --snapshot ckpt/ --topk 5 10
    python -m repro serve --snapshot ckpt/ --bench 2000 --mix zipf
    python -m repro stream --events 20000 --compact-every 4000 --refresh
    python -m repro stream --repl --verify
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .graph import (PAPER_DATASETS, load_fb15k237, load_freebase86m_mini,
                    load_papers100m_mini, load_wikikg90m_mini, paper_stats)
from .policies import autotune_from_dataset
from .train import (DiskConfig, DiskLinkPredictionTrainer,
                    DiskNodeClassificationConfig,
                    DiskNodeClassificationTrainer, LinkPredictionConfig,
                    LinkPredictionTrainer, NodeClassificationConfig,
                    NodeClassificationTrainer,
                    PipelinedLinkPredictionTrainer)

LP_DATASETS = {
    "fb15k237": lambda scale: load_fb15k237(scale=scale),
    "freebase86m-mini": lambda scale: load_freebase86m_mini(
        num_nodes=max(500, int(20000 * scale * 5))),
    "wikikg90m-mini": lambda scale: load_wikikg90m_mini(
        num_nodes=max(500, int(24000 * scale * 5))),
}


def _apply_config_file(args: argparse.Namespace) -> argparse.Namespace:
    if getattr(args, "config", None):
        overrides = json.loads(Path(args.config).read_text())
        for key, value in overrides.items():
            if not hasattr(args, key):
                raise SystemExit(f"unknown config key: {key}")
            setattr(args, key, value)
    return args


def cmd_info(args: argparse.Namespace) -> int:
    print(f"{'dataset':<16} {'nodes':>14} {'edges':>16} {'feat':>5} "
          f"{'total GB':>9} {'task':>5}")
    for name, stats in sorted(PAPER_DATASETS.items()):
        print(f"{name:<16} {stats.num_nodes:>14,} {stats.num_edges:>16,} "
              f"{stats.feat_dim:>5} {stats.total_gb:>9.1f} {stats.task:>5}")
    return 0


def cmd_autotune(args: argparse.Namespace) -> int:
    stats = paper_stats(args.dataset)
    result = autotune_from_dataset(stats.num_nodes, stats.num_edges,
                                   args.dim or (stats.feat_dim or 50),
                                   args.memory_gb,
                                   max_physical=args.max_physical)
    print(f"dataset {stats.name}: {stats.num_nodes:,} nodes, "
          f"{stats.num_edges:,} edges, {args.memory_gb} GB CPU memory")
    print(f"  physical partitions p = {result.num_physical}")
    print(f"  logical partitions  l = {result.num_logical}")
    print(f"  buffer capacity     c = {result.buffer_capacity} "
          f"({result.buffer_fraction:.0%} resident)")
    print(f"  partition size        = {result.partition_bytes / (1 << 20):.0f} MiB")
    return 0


def cmd_train_lp(args: argparse.Namespace) -> int:
    args = _apply_config_file(args)
    if args.dataset not in LP_DATASETS:
        raise SystemExit(f"unknown LP dataset {args.dataset!r}; "
                         f"choose from {sorted(LP_DATASETS)}")
    data = LP_DATASETS[args.dataset](args.scale)
    fanouts = tuple(args.fanouts) if args.encoder != "none" else ()
    config = LinkPredictionConfig(
        embedding_dim=args.dim, encoder=args.encoder,
        num_layers=len(fanouts), fanouts=fanouts, decoder=args.decoder,
        batch_size=args.batch_size, num_negatives=args.negatives,
        num_epochs=args.epochs, eval_every=1, seed=args.seed)
    if args.disk and args.pipelined:
        raise SystemExit("--disk and --pipelined select different trainers; "
                         "pass one of them")
    if args.deterministic and not args.pipelined:
        raise SystemExit("--deterministic only applies to --pipelined "
                         "(the other trainers are already deterministic)")
    ckpt = _checkpoint_args(args)
    if args.disk:
        workdir = Path(args.workdir) if args.workdir else Path(
            tempfile.mkdtemp(prefix="repro-disk-"))
        disk = DiskConfig(workdir=workdir, num_partitions=args.partitions,
                          num_logical=args.logical, buffer_capacity=args.buffer,
                          policy=args.policy)
        trainer = DiskLinkPredictionTrainer(data, config, disk, **ckpt)
    elif args.pipelined:
        trainer = PipelinedLinkPredictionTrainer(
            data, config, num_sample_workers=args.workers,
            pipeline_depth=args.pipeline_depth,
            deterministic=args.deterministic, **ckpt)
    else:
        trainer = LinkPredictionTrainer(data, config, **ckpt)
    if args.resume_from:
        meta = trainer.resume(Path(args.resume_from))
        print(f"resumed from snapshot at epoch {meta['epoch']}"
              + (f", step {meta['step']}" if "step" in meta else "")
              + (f", batch {meta['batch']}" if "batch" in meta else ""))
    result = trainer.train(verbose=True)
    print(f"\nfinal MRR {result.final_mrr:.4f} "
          f"(hits@10 {result.final_metrics.hits_at_10:.4f}) "
          f"mean epoch {result.mean_epoch_seconds:.2f}s")
    if args.save:
        from .train.checkpoint import save_checkpoint
        embeddings = getattr(trainer, "embeddings", None)
        save_checkpoint(Path(args.save), trainer.model, config,
                        embeddings=embeddings.table if embeddings else None,
                        optimizer_state=embeddings.state if embeddings else None)
        print(f"checkpoint written to {args.save}")
    return 0


def _checkpoint_args(args: argparse.Namespace) -> dict:
    """Shared --checkpoint-every/--checkpoint-dir handling for trainers."""
    if not args.checkpoint_every and not args.checkpoint_dir:
        return {}
    checkpoint_dir = Path(args.checkpoint_dir) if args.checkpoint_dir else (
        Path(args.workdir) / "checkpoints" if args.workdir else
        Path(tempfile.mkdtemp(prefix="repro-ckpt-")))
    if args.checkpoint_every:
        compressed = " (compressed)" if args.checkpoint_compress else ""
        print(f"checkpointing every {args.checkpoint_every} to "
              f"{checkpoint_dir}{compressed}")
    else:
        print(f"checkpoint dir {checkpoint_dir} (no --checkpoint-every: "
              f"snapshots are read for resume but none will be written)")
    return {"checkpoint_dir": checkpoint_dir,
            "checkpoint_every": args.checkpoint_every,
            "checkpoint_compress": args.checkpoint_compress}


def cmd_train_nc(args: argparse.Namespace) -> int:
    args = _apply_config_file(args)
    data = load_papers100m_mini(num_nodes=args.nodes, num_edges=args.nodes * 9,
                                feat_dim=args.dim, seed=args.seed)
    fanouts = tuple(args.fanouts)
    config = NodeClassificationConfig(
        hidden_dim=args.dim, num_layers=len(fanouts), fanouts=fanouts,
        batch_size=args.batch_size, num_epochs=args.epochs, eval_every=1,
        seed=args.seed)
    ckpt = _checkpoint_args(args)
    if args.disk:
        workdir = Path(args.workdir) if args.workdir else Path(
            tempfile.mkdtemp(prefix="repro-nc-"))
        disk = DiskNodeClassificationConfig(workdir=workdir,
                                            num_partitions=args.partitions,
                                            buffer_capacity=args.buffer)
        trainer = DiskNodeClassificationTrainer(data, config, disk, **ckpt)
    else:
        trainer = NodeClassificationTrainer(data, config, **ckpt)
    if args.resume_from:
        meta = trainer.resume(Path(args.resume_from))
        print(f"resumed from snapshot at epoch {meta['epoch']}"
              + (f", step {meta['step']}" if "step" in meta else ""))
    result = trainer.train(verbose=True)
    print(f"\nfinal accuracy {result.final_accuracy:.4f} "
          f"mean epoch {result.mean_epoch_seconds:.2f}s")
    return 0


def _parse_ids(text: str) -> "np.ndarray":
    import numpy as np
    return np.array([int(x) for x in text.split(",") if x], dtype=np.int64)


def cmd_serve(args: argparse.Namespace) -> int:
    """Query a trained snapshot out-of-core (see docs/serving.md)."""
    import json as _json
    import numpy as np
    from .serve import serve_link_prediction, serve_node_classification
    from .train import SnapshotManager

    args = _apply_config_file(args)
    snap = Path(args.snapshot)
    if not (snap / "manifest.json").is_file():
        latest = SnapshotManager(snap).latest()
        if latest is None:
            raise SystemExit(f"no snapshots under {snap}")
        snap = latest
    meta = _json.loads((snap / "manifest.json").read_text())["meta"]
    kind = meta["trainer"]
    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="repro-serve-"))
    if kind.startswith("nc"):
        data = load_papers100m_mini(num_nodes=args.nc_nodes,
                                    num_edges=args.nc_nodes * 9,
                                    feat_dim=args.nc_dim, seed=args.nc_seed)
        engine = serve_node_classification(snap, data, workdir,
                                           num_partitions=args.partitions,
                                           buffer_capacity=args.buffer)
    else:
        graph = None
        if meta.get("config", {}).get("encoder", "none") != "none":
            # Encoder snapshots sample neighborhoods on read; the CLI
            # regenerates the training graph the same way train-lp does.
            if not args.dataset:
                raise SystemExit(
                    "this snapshot has a GNN encoder: pass --dataset/--scale "
                    "(the training data) so encode-on-read can sample "
                    "neighborhoods")
            if args.dataset not in LP_DATASETS:
                raise SystemExit(f"unknown LP dataset {args.dataset!r}; "
                                 f"choose from {sorted(LP_DATASETS)}")
            from .graph import Graph
            data = LP_DATASETS[args.dataset](args.scale)
            edges = data.split.train
            graph = Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                          dst=edges[:, -1],
                          rel=edges[:, 1] if edges.shape[1] == 3 else None,
                          num_relations=data.graph.num_relations)
        engine = serve_link_prediction(snap, workdir,
                                       num_partitions=args.partitions,
                                       buffer_capacity=args.buffer,
                                       graph=graph)
    print(f"serving {kind} snapshot {snap.name}: "
          f"{engine.store.num_nodes:,} nodes x {engine.store.dim}, "
          f"{engine.scheme.num_partitions} partitions, "
          f"buffer {engine.buffer.capacity}")

    if args.embed:
        ids = _parse_ids(args.embed)
        rows = engine.get_embeddings(ids)
        for node, row in zip(ids, rows):
            head = ", ".join(f"{v:+.4f}" for v in row[:6])
            more = ", ..." if len(row) > 6 else ""
            print(f"  node {node}: [{head}{more}]")
    if args.score:
        rows = []
        for spec in args.score:
            fields = [int(x) for x in spec.split(":")]
            if len(fields) == 2:            # S:D — relation 0
                fields = [fields[0], 0, fields[1]]
            elif len(fields) != 3:
                raise SystemExit(f"bad --score spec {spec!r}: expected "
                                 f"SRC:DST or SRC:REL:DST")
            rows.append(fields)
        pairs = np.array(rows, dtype=np.int64)
        for spec, score in zip(args.score, engine.score_edges(pairs)):
            print(f"  score({spec}) = {score:.6f}")
    if args.topk:
        src, k = int(args.topk[0]), int(args.topk[1])
        try:
            ids, scores = engine.topk_targets(src, k, rel=args.rel,
                                              exclude=[src])
        except RuntimeError as exc:    # e.g. encoder snapshots refuse top-k
            raise SystemExit(f"--topk: {exc}")
        print(f"  top-{k} targets for source {src} (rel {args.rel}):")
        for rank, (node, score) in enumerate(zip(ids, scores), 1):
            print(f"    #{rank:<3} node {node:<10} score {score:.6f}")
    if args.classify:
        preds = engine.classify(_parse_ids(args.classify), seed=0)
        print("  predicted classes:", preds.tolist())
    if args.bench:
        _serve_bench(engine, args)
    s = engine.stats
    print(f"engine stats: {s.lookups} lookups, {s.edges_scored} edges scored, "
          f"{s.topk_queries} topk, {s.swaps} partition swaps")
    return 0


def _serve_bench(engine, args: argparse.Namespace) -> None:
    """Quick QPS probe over a random or Zipf-skewed single-lookup stream
    (the same workload definition the committed benchmark baseline uses)."""
    import time as _time
    from .serve import make_query_stream
    queries = make_query_stream(args.mix, args.bench, engine.store.num_nodes,
                                seed=args.seed)
    swaps0 = engine.stats.swaps
    t0 = _time.perf_counter()
    for start in range(0, len(queries), args.max_batch):
        engine.get_embeddings(queries[start : start + args.max_batch])
    seconds = _time.perf_counter() - t0
    swaps = engine.stats.swaps - swaps0
    print(f"  bench: {len(queries)} {args.mix} lookups in {seconds:.2f}s = "
          f"{len(queries) / seconds:,.0f} QPS "
          f"({1000 * swaps / len(queries):.1f} swaps/1k queries, "
          f"batch {args.max_batch})")


def cmd_stream(args: argparse.Namespace) -> int:
    """Live-graph streaming: ingest, compact, refresh, query (docs/streaming.md)."""
    import numpy as np
    from .graph import Graph
    from .graph.partition import PartitionScheme
    from .serve.engine import ServingEngine
    from .storage.edge_store import EdgeBucketStore
    from .storage.node_store import NodeStore
    from .stream import Compactor, ContinualTrainer, LiveGraph, synth_events
    from .train import LinkPredictionConfig

    args = _apply_config_file(args)
    if args.dataset not in LP_DATASETS:
        raise SystemExit(f"unknown LP dataset {args.dataset!r}; "
                         f"choose from {sorted(LP_DATASETS)}")
    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="repro-stream-"))
    workdir.mkdir(parents=True, exist_ok=True)
    nodes_path, edges_path = workdir / "nodes.bin", workdir / "edges.bin"
    if args.resume_from:
        # Reattach to the workdir's existing stores: the snapshot's
        # fingerprints pin the *compacted, grown* layout, which a rebuild
        # from the dataset could never reproduce.
        if not (nodes_path.exists() and edges_path.exists()):
            raise SystemExit(
                "--resume-from needs the original --workdir: its nodes.bin/"
                "edges.bin hold the compacted base state the snapshot pins")
        stream_meta = _stream_snapshot_meta(Path(args.resume_from))
        base_nodes = stream_meta["num_nodes"] - stream_meta["nodes_added"]
        scheme = PartitionScheme.uniform(
            base_nodes, args.partitions).extended(stream_meta["nodes_added"])
        # truncate=True: nodes appended after the snapshot are discarded
        # (growth is append-only). Edge-bucket drift past the snapshot
        # (a post-snapshot compaction) is caught by the fingerprint check.
        store = NodeStore.open(nodes_path, scheme, args.dim, learnable=True,
                               truncate=True)
        edge_store = EdgeBucketStore.open(edges_path, scheme)
        num_relations = edge_store.num_relations
    else:
        data = LP_DATASETS[args.dataset](args.scale)
        edges = data.split.train
        graph = Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                      dst=edges[:, -1],
                      rel=edges[:, 1] if edges.shape[1] == 3 else None,
                      num_relations=data.graph.num_relations)
        scheme = PartitionScheme.uniform(graph.num_nodes, args.partitions)
        store = NodeStore(nodes_path, scheme, args.dim, learnable=True)
        store.initialize(rng=np.random.default_rng(args.seed))
        edge_store = EdgeBucketStore(edges_path, graph, scheme)
        num_relations = graph.num_relations
    live = LiveGraph(store, edge_store, seed=args.seed,
                     spill_threshold=args.spill_threshold)
    config = LinkPredictionConfig(
        embedding_dim=args.dim, encoder="none", batch_size=args.batch_size,
        num_negatives=args.negatives, num_epochs=1, seed=args.seed)
    ckpt = _checkpoint_args(args)
    trainer = ContinualTrainer(live, config, num_relations=num_relations,
                               buffer_capacity=args.buffer, **ckpt)
    engine = ServingEngine.over_live(live, trainer.model,
                                     buffer_capacity=args.buffer)
    compactor = Compactor(live)
    print(f"streaming over {args.dataset}: {live.num_nodes:,} nodes, "
          f"{edge_store.num_edges:,} base edges, p={args.partitions}, "
          f"buffer {args.buffer}, workdir {workdir}")
    if args.resume_from:
        meta = trainer.resume(Path(args.resume_from))
        live.nodes_added = int(meta["stream"]["nodes_added"])
        print(f"resumed at stream position {meta['stream']}")
    if args.events:
        _stream_driver(live, compactor, trainer, engine, args)
    if args.verify:
        _stream_verify(live, workdir)
    if args.repl:
        _stream_repl(live, compactor, trainer, engine, args)
    s = live.stats()
    print(f"stream stats: {s['events_appended']} events "
          f"({s['edges_inserted']} ins / {s['edges_deleted']} del), "
          f"{s['nodes_added']} nodes added, {s['pending']} pending, "
          f"{compactor.compactions} compactions, "
          f"{trainer.refreshes} refreshes, {s['spills']} spills")
    return 0


def _stream_snapshot_meta(path: Path) -> dict:
    """The ``stream`` block of a snapshot's manifest (snap dir or root)."""
    import json as _json
    from .train import SnapshotManager
    if not (path / "manifest.json").is_file():
        latest = SnapshotManager(path).latest()
        if latest is None:
            raise SystemExit(f"no snapshots under {path}")
        path = latest
    meta = _json.loads((path / "manifest.json").read_text())["meta"]
    if "stream" not in meta:
        raise SystemExit(f"snapshot {path.name} was not written by the "
                         f"streaming trainer (trainer={meta.get('trainer')!r})")
    return meta["stream"]


def _stream_driver(live, compactor, trainer, engine, args) -> None:
    """Synthetic event-stream driver: ingest on a cadence of compactions
    and refreshes, reporting throughput and staleness."""
    import time as _time
    import numpy as np
    from .stream import synth_events
    rng = np.random.default_rng(args.seed + 23)
    done = 0          # events actually appended (deletes can come up short
    asked = 0         # when the sampled bucket is empty), vs requested
    t_ingest = 0.0
    staleness = []
    batch_no = 0
    while asked < args.events:
        count = min(args.event_batch, args.events - asked)
        if args.add_nodes_every and batch_no % args.add_nodes_every == 0:
            live.add_nodes(max(1, count // 50))
        ins, dels = synth_events(live, rng, count, args.delete_fraction)
        t0 = _time.perf_counter()
        lo, hi = live.insert_edges(ins)
        done += hi - lo
        if dels is not None and len(dels):
            lo, hi = live.delete_edges(dels)
            done += hi - lo
        t_ingest += _time.perf_counter() - t0
        asked += count
        batch_no += 1
        staleness.append(live.staleness())
        if args.compact_every and live.staleness() >= args.compact_every:
            report = compactor.compact()
            print(f"  [{done:>8} events] compacted {report.merged_events} "
                  f"events in {report.seconds * 1000:.0f}ms "
                  f"-> {report.num_edges:,} base edges")
            if args.refresh:
                record = trainer.refresh()
                print(f"  [{done:>8} events] refresh loss={record.loss:.4f} "
                      f"({record.num_batches} batches, "
                      f"{record.seconds:.2f}s)")
    qps_ids = np.arange(min(64, live.num_nodes))
    t0 = _time.perf_counter()
    engine.get_embeddings(qps_ids)
    q_ms = 1000 * (_time.perf_counter() - t0)
    print(f"driver: {done} events in {t_ingest:.2f}s ingest time = "
          f"{done / max(t_ingest, 1e-9):,.0f} events/s; staleness "
          f"mean {np.mean(staleness):.0f} max {max(staleness)}; "
          f"64-row lookup {q_ms:.1f}ms")


def _stream_verify(live, workdir) -> None:
    """Streamed-vs-rebuilt equivalence check over the current live state."""
    import numpy as np
    from .core.sampler import DenseSampler
    from .storage.edge_store import EdgeBucketStore
    final = live.materialize()
    rebuilt = EdgeBucketStore(Path(workdir) / "verify-edges.bin", final,
                              live.scheme)
    p = live.num_partitions
    for i in range(p):
        for j in range(p):
            a = live.bucket_edges(i, j, record_io=False)
            b = rebuilt.read_bucket(i, j, record_io=False)
            if not np.array_equal(a, b):
                raise SystemExit(f"verify FAILED: bucket ({i}, {j}) of the "
                                 f"live view differs from the offline rebuild")
    parts = list(range(min(4, p)))
    s_live = DenseSampler.from_partitions(live.scheme, live.bucket_endpoints,
                                          parts, [5],
                                          rng=np.random.default_rng(99))
    s_built = DenseSampler.from_partitions(live.scheme,
                                           rebuilt.bucket_endpoints, parts,
                                           [5], rng=np.random.default_rng(99))
    targets = np.arange(0, live.num_nodes, max(1, live.num_nodes // 64))
    a, b = s_live.sample(targets), s_built.sample(targets)
    if not np.array_equal(a.node_ids, b.node_ids):
        raise SystemExit("verify FAILED: sampling diverged from the rebuild")
    rebuilt.close()
    print(f"verify OK: {final.num_edges:,} live edges match an offline "
          f"rebuild bucket-for-bucket; seeded sampling identical")


def _stream_repl(live, compactor, trainer, engine, args) -> None:
    """Interactive ingest/compact/query loop over the live graph."""
    import numpy as np
    from .stream import synth_events
    rng = np.random.default_rng(args.seed + 31)
    print("stream REPL - commands: ingest N | delete N | add-nodes N | "
          "compact | refresh | embed IDS | topk SRC K | stats | verify | quit")
    while True:
        try:
            line = input("stream> ").strip()
        except EOFError:
            break
        if not line:
            continue
        cmd, *rest = line.split()
        try:
            if cmd == "quit" or cmd == "exit":
                break
            elif cmd == "ingest":
                ins, _ = synth_events(live, rng, int(rest[0]), 0.0)
                lo, hi = live.insert_edges(ins)
                print(f"  inserted {hi - lo} edges (seq [{lo}, {hi}))")
            elif cmd == "delete":
                _, dels = synth_events(live, rng, int(rest[0]), 1.0)
                if dels is None or not len(dels):
                    print("  nothing to delete")
                else:
                    lo, hi = live.delete_edges(dels)
                    print(f"  deleted {hi - lo} edge keys (seq [{lo}, {hi}))")
            elif cmd == "add-nodes":
                ids = live.add_nodes(int(rest[0]))
                print(f"  added nodes [{ids[0]}, {ids[-1]}]")
            elif cmd == "compact":
                report = compactor.compact()
                print(f"  merged {report.merged_events} events in "
                      f"{report.seconds * 1000:.0f}ms -> "
                      f"{report.num_edges:,} base edges")
            elif cmd == "refresh":
                record = trainer.refresh()
                print(f"  loss={record.loss:.4f} "
                      f"({record.num_batches} batches)")
            elif cmd == "embed":
                ids = _parse_ids(rest[0])
                for node, row in zip(ids, engine.get_embeddings(ids)):
                    head = ", ".join(f"{v:+.4f}" for v in row[:6])
                    print(f"  node {node}: [{head}, ...]")
            elif cmd == "topk":
                ids, scores = engine.topk_targets(int(rest[0]), int(rest[1]))
                for rank, (node, score) in enumerate(zip(ids, scores), 1):
                    print(f"    #{rank:<3} node {node:<10} score {score:.6f}")
            elif cmd == "stats":
                print(f"  {live.stats()}")
            elif cmd == "verify":
                _stream_verify(live, tempfile.mkdtemp(prefix="repro-verify-"))
            else:
                print(f"  unknown command {cmd!r}")
        except Exception as exc:   # REPL survives bad input
            print(f"  error: {exc}")


def _add_checkpoint_flags(p: argparse.ArgumentParser, every_help: str) -> None:
    """The snapshot flags shared by every training-ish subcommand."""
    p.add_argument("--checkpoint-every", type=int, default=0, help=every_help)
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot root (default: <workdir>/checkpoints)")
    p.add_argument("--checkpoint-compress", action="store_true",
                   help="zlib-compress snapshot array payloads")
    p.add_argument("--resume-from", default=None,
                   help="snapshot dir (or checkpoint root) to resume from")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MariusGNN reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list the paper dataset registry")

    p = sub.add_parser("autotune", help="apply the Section 6 tuning rules")
    p.add_argument("--dataset", required=True)
    p.add_argument("--memory-gb", type=float, default=61.0)
    p.add_argument("--dim", type=int, default=None)
    p.add_argument("--max-physical", type=int, default=4096)

    p = sub.add_parser("train-lp", help="train link prediction")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--dataset", default="fb15k237")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--encoder", default="graphsage",
                   choices=["none", "graphsage", "gcn", "gat"])
    p.add_argument("--decoder", default="distmult",
                   choices=["distmult", "complex", "transe", "dot"])
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10])
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--negatives", type=int, default=64)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--policy", default="comet", choices=["comet", "beta"])
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--logical", type=int, default=8)
    p.add_argument("--buffer", type=int, default=4)
    p.add_argument("--workdir", default=None)
    p.add_argument("--save", default=None, help="checkpoint directory")
    p.add_argument("--pipelined", action="store_true",
                   help="threaded mini-batch pipeline trainer (in-memory)")
    p.add_argument("--workers", type=int, default=2,
                   help="sampling workers for --pipelined")
    p.add_argument("--pipeline-depth", type=int, default=4)
    p.add_argument("--deterministic", action="store_true",
                   help="ordered, replayable pipeline (bit-exact resume)")
    _add_checkpoint_flags(
        p, every_help="snapshot cadence: epochs (in-memory), plan steps "
                      "(--disk), or consumed batches (--pipelined "
                      "--deterministic; without --deterministic the racy "
                      "pipeline only snapshots at epoch boundaries); 0 = off")

    p = sub.add_parser("stream", help="live-graph streaming: ingest, "
                                      "compact, refresh, query")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--dataset", default="freebase86m-mini")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--buffer", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=512)
    p.add_argument("--negatives", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workdir", default=None,
                   help="stream workdir for the live stores (default: temp)")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="run the synthetic event-stream driver for N events")
    p.add_argument("--event-batch", type=int, default=500,
                   help="events ingested per driver batch")
    p.add_argument("--delete-fraction", type=float, default=0.1,
                   help="fraction of driver events that are deletions")
    p.add_argument("--add-nodes-every", type=int, default=8,
                   help="driver batches between node additions (0 = never)")
    p.add_argument("--compact-every", type=int, default=4000,
                   help="compact when this many events are pending (0 = never)")
    p.add_argument("--refresh", action="store_true",
                   help="fine-tune delta-touched partitions after each compaction")
    p.add_argument("--spill-threshold", type=int, default=1 << 20,
                   help="in-memory delta events before the log spills to disk")
    p.add_argument("--verify", action="store_true",
                   help="check the live view against an offline rebuild")
    p.add_argument("--repl", action="store_true",
                   help="interactive ingest/compact/query loop")
    _add_checkpoint_flags(p, every_help="snapshot cadence in refreshes; "
                                        "0 = off")

    p = sub.add_parser("serve", help="query a trained snapshot out-of-core")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--snapshot", required=True,
                   help="snapshot dir (or checkpoint root; latest wins)")
    p.add_argument("--workdir", default=None,
                   help="serving workdir for the paged table (default: temp)")
    p.add_argument("--dataset", default=None,
                   help="LP training dataset (required for encoder "
                        "snapshots: enables encode-on-read sampling)")
    p.add_argument("--scale", type=float, default=0.1,
                   help="dataset scale used at training time")
    p.add_argument("--partitions", type=int, default=None,
                   help="partition count (default: the snapshot's layout)")
    p.add_argument("--buffer", type=int, default=4,
                   help="partitions held in memory at once")
    p.add_argument("--embed", default=None, metavar="IDS",
                   help="comma-separated node ids to look up")
    p.add_argument("--score", nargs="*", default=None, metavar="S:D|S:R:D",
                   help="edges to score, e.g. 12:340 or 12:7:340")
    p.add_argument("--topk", nargs=2, default=None, metavar=("SRC", "K"),
                   help="best-K destinations for a source node")
    p.add_argument("--rel", type=int, default=0, help="relation for --topk")
    p.add_argument("--classify", default=None, metavar="IDS",
                   help="comma-separated node ids to classify (NC snapshots)")
    p.add_argument("--bench", type=int, default=0, metavar="N",
                   help="run an N-query lookup throughput probe")
    p.add_argument("--mix", default="zipf", choices=["zipf", "random"],
                   help="query mix for --bench")
    p.add_argument("--max-batch", type=int, default=256,
                   help="micro-batch size for --bench")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nc-nodes", type=int, default=4000,
                   help="NC snapshots: dataset size to regenerate (must "
                        "match training)")
    p.add_argument("--nc-dim", type=int, default=32)
    p.add_argument("--nc-seed", type=int, default=0)

    p = sub.add_parser("train-nc", help="train node classification")
    p.add_argument("--config", help="JSON file overriding these options")
    p.add_argument("--nodes", type=int, default=4000)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--fanouts", type=int, nargs="*", default=[10, 5])
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--disk", action="store_true")
    p.add_argument("--partitions", type=int, default=16)
    p.add_argument("--buffer", type=int, default=8)
    p.add_argument("--workdir", default=None)
    _add_checkpoint_flags(
        p, every_help="snapshot cadence: epochs (in-memory) or epoch-plan "
                      "steps (--disk); 0 = off")

    return parser


COMMANDS = {"info": cmd_info, "autotune": cmd_autotune,
            "train-lp": cmd_train_lp, "train-nc": cmd_train_nc,
            "serve": cmd_serve, "stream": cmd_stream}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
