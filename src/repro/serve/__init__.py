"""Out-of-core inference serving over trained snapshots.

The serving layer reuses the training stack's out-of-core machinery — the
partitioned node store, the bounded partition buffer (read-only here), and
the DENSE sampler — to answer embedding, link scoring, and encode-on-read
queries against a :class:`~repro.train.checkpoint.SnapshotManager`
snapshot without ever holding the full table in memory. See
``docs/serving.md``.
"""

from .ann import AnnIndex
from .batcher import Overloaded, RequestBatcher, RequestTimeout, ServeRequest
from .engine import ServingEngine
from .lifecycle import GracefulDrain
from .loader import serve_link_prediction, serve_node_classification
from .stats import ServeStats, latency_summary, make_query_stream

__all__ = ["AnnIndex", "ServingEngine", "RequestBatcher", "ServeRequest",
           "ServeStats", "Overloaded", "RequestTimeout", "GracefulDrain",
           "latency_summary", "make_query_stream", "serve_link_prediction",
           "serve_node_classification"]
