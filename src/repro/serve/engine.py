"""The out-of-core query engine: batched inference over a partition buffer.

The same machinery that makes training disk-friendly (partitioned node
store, bounded :class:`~repro.storage.buffer.PartitionBuffer`, DENSE
multi-hop sampling over the in-buffer subgraph) serves queries here, with
three differences:

* the buffer runs **read-only** — eviction never writes back and gradient
  application is refused;
* residency is driven by the live query stream through a
  :class:`~repro.policies.query_lru.QueryLRU` replacement policy instead of
  a precomputed epoch plan;
* execution is **partition-locality ordered**: every batched entry point
  groups its work by partition (resident partitions first), so co-located
  queries share one swap instead of thrashing the buffer.

Three query families (the full table is never materialized in memory —
peak residency is ``buffer_capacity`` partitions):

* :meth:`ServingEngine.get_embeddings` — paged row lookup.
* :meth:`ServingEngine.score_edges` / :meth:`ServingEngine.topk_targets` —
  decoder scoring; top-k streams candidate partitions through the buffer
  blockwise and keeps a running best-k, without ever touching the
  replacement policy (scan resistance: a sequential sweep must not evict
  the query-hot partitions).
* :meth:`ServingEngine.encode_nodes` / :meth:`ServingEngine.classify` —
  GNN encode-on-read: multi-hop neighborhoods are sampled over the
  in-buffer subgraph (exactly the restriction disk training applies) and
  only the forward pass runs.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.sampler import DenseSampler
from ..obs.registry import get_registry
from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from ..policies.query_lru import QueryLRU
from ..storage.buffer import PartitionBuffer
from ..storage.node_store import NodeStore
from .ann import AnnIndex
from .stats import ServeStats


class ServingEngine:
    """Answers embedding / scoring / encode queries over a trained snapshot.

    Parameters
    ----------
    model:
        A restored :class:`~repro.train.link_prediction.LinkPredictionModel`
        (decoder required for scoring queries) or
        :class:`~repro.train.node_classification.NodeClassifier`
        (``classify`` queries). Put into eval mode on construction.
    store:
        Read-only :class:`NodeStore` holding the served table (base
        embeddings for LP, node features for NC).
    buffer_capacity:
        Physical partitions held in memory at once.
    policy:
        Replacement policy; defaults to a fresh :class:`QueryLRU`.
    edge_source:
        Optional ``(i, j) -> (src, dst)`` bucket source (e.g.
        ``EdgeBucketStore.bucket_endpoints``) enabling encode-on-read; the
        sampler's partition-aware index follows buffer swaps incrementally.
    fanouts / directions:
        Sampling shape for encode-on-read (ignored without ``edge_source``).
    ann:
        Serve top-k through the per-partition :class:`AnnIndex` (built
        lazily on the first top-k query, kept current by the live-stream
        listeners). ``exact=True`` on a query is the per-call escape
        hatch; decoders without a linear ``target_query_rows`` form fall
        back to the exact sweep automatically.
    ann_cluster_size:
        Target rows per IVF cluster (recall is bound-sound at any value;
        this only trades pruning granularity against bound-pass cost).
    """

    def __init__(self, model: Module, store: NodeStore, buffer_capacity: int,
                 policy: Optional[QueryLRU] = None,
                 edge_source: Optional[Callable] = None,
                 fanouts: Sequence[int] = (), directions: str = "both",
                 seed: int = 0, ann: bool = True,
                 ann_cluster_size: int = 64) -> None:
        self.model = model
        self.model.eval()
        self.store = store
        # Protects the engine's own shared state (buffer residency, the
        # replacement policy, the sampler index) between queries and
        # live-stream listener callbacks. Re-entrant: classify ->
        # encode_nodes. Over a live graph, queries additionally take the
        # graph's shared lock and validate the table seqlock — see
        # _query_guard / _table_read.
        self._live_lock = threading.RLock()
        self._live = None             # set by over_live
        self._table_version = None    # live.table_version when streaming
        self.policy = policy or QueryLRU(self.scheme.num_partitions)
        self.buffer = PartitionBuffer(store, buffer_capacity, read_only=True,
                                      replacement_policy=self.policy)
        self.stats = ServeStats()
        self.buffer.add_swap_listener(self._on_swap)
        self.decoder = getattr(model, "decoder", None)
        self.ann_enabled = bool(ann)
        self.ann_cluster_size = int(ann_cluster_size)
        self.ann_index: Optional[AnnIndex] = None   # built on first ANN top-k
        self.sampler: Optional[DenseSampler] = None
        if edge_source is not None and len(fanouts) > 0:
            self.sampler = DenseSampler.from_partitions(
                self.scheme, edge_source, (), list(fanouts),
                directions=directions, rng=np.random.default_rng(seed))
            self.buffer.add_swap_listener(
                lambda added, removed: self.sampler.update_graph(added, removed))

    # ------------------------------------------------------------------
    @property
    def scheme(self):
        """The served store's partition scheme — read dynamically, because a
        live graph's node table grows (last partition extends) mid-stream."""
        return self.store.scheme

    @classmethod
    def over_live(cls, live, model: Module, buffer_capacity: int,
                  policy: Optional[QueryLRU] = None,
                  fanouts: Sequence[int] = (), directions: str = "both",
                  seed: int = 0, ann: bool = True,
                  ann_cluster_size: int = 64) -> "ServingEngine":
        """A serving engine over a :class:`~repro.stream.live.LiveGraph`.

        The engine queries the live view, not a frozen snapshot: its
        sampler's bucket source is the composed base+delta read, and the
        registered stream listeners keep it coherent — ingests refresh
        exactly the touched resident buckets, node additions extend the
        index and re-sync the buffer, compactions re-read the (identical)
        rewritten base. Embedding lookups need no overlay handling at all,
        because streamed nodes grow the node table at ingest time.
        """
        engine = cls(model, live.node_store, buffer_capacity, policy=policy,
                     edge_source=live.bucket_endpoints, fanouts=fanouts,
                     directions=directions, seed=seed, ann=ann,
                     ann_cluster_size=ann_cluster_size)
        # Queries take the live graph's *shared* lock (so they run
        # concurrently with ingest and with each other's lock-free
        # sections, but drain for structural mutations — growth,
        # compaction, WAL replay, which take the exclusive side) plus the
        # engine's own lock for its buffer/policy/sampler state. Node-
        # table row rewrites (refresh write-back) are not excluded at
        # all: reads that touch the store validate live.table_version
        # around themselves and retry on a raced write window.
        engine._live = live
        engine._table_version = live.table_version
        live.add_bucket_listener(engine._on_live_buckets)
        live.add_growth_listener(engine._on_live_growth)
        live.add_compact_listener(engine._on_live_compact)
        live.add_table_listener(engine._on_live_table)
        return engine

    @contextlib.contextmanager
    def _query_guard(self):
        """Per-query locking: shared side of the live graph's structural
        lock (when streaming) + the engine-private lock."""
        if self._live is not None:
            with self._live.rw.shared():
                with self._live_lock:
                    yield
        else:
            with self._live_lock:
                yield

    def _table_read(self, fn):
        """Run ``fn`` under the node-table seqlock protocol.

        A refresh write-back rewrites table rows without excluding
        readers; any store read that overlaps its write window may be
        torn. The protocol: snapshot the version (waits out an in-flight
        write), run, and accept only if the version is unchanged. On a
        collision, resident partitions admitted during the window are
        re-read before retrying; after repeated collisions the read runs
        inside the write lock itself (guaranteed quiescent, and writers
        are rare enough that this is the cold path of a cold path).
        """
        version = self._table_version
        if version is None:
            return fn()
        for attempt in range(8):
            token = version.begin()
            if attempt:
                self.buffer.refresh_from_store()
            out = fn()
            if not version.changed(token):
                return out
        with version.write():
            self.buffer.refresh_from_store()
            return fn()

    # The stream listeners run on the *ingest* thread (under the live
    # graph's shared lock and the touched bucket stripes) while queries
    # run under the same shared lock on serving threads; the engine lock
    # below is what orders them. Plain (non-live) engines keep a private
    # lock and pay one uncontended acquire per query.
    def _on_live_buckets(self, pairs: List[tuple]) -> None:
        with self._live_lock:
            if self.sampler is not None:
                self.sampler.index.refresh_buckets(pairs)

    def _on_live_growth(self, new_scheme) -> None:
        with self._live_lock:
            if self.sampler is not None:
                self.sampler.index.extend_nodes(new_scheme)
            # Only the last partition's rows changed (the growth rule).
            self.buffer.refresh_from_store(
                parts=[new_scheme.num_partitions - 1])
            if self.ann_index is not None:
                self.ann_index.invalidate([new_scheme.num_partitions - 1])

    def _on_live_compact(self) -> None:
        with self._live_lock:
            self.buffer.refresh_from_store()
            if self.ann_index is not None:
                self.ann_index.invalidate()

    def _on_live_table(self, parts: List[int]) -> None:
        with self._live_lock:
            self.buffer.refresh_from_store(parts=parts)
            if self.ann_index is not None:
                self.ann_index.invalidate(parts)

    def _on_swap(self, added: List[int], removed: List[int]) -> None:
        self.stats.swaps += len(added)

    def _check_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64).ravel()
        if len(ids) and ((ids < 0).any() or (ids >= self.store.num_nodes).any()):
            bad = ids[(ids < 0) | (ids >= self.store.num_nodes)][:5]
            raise KeyError(f"query node ids out of range: {bad.tolist()}")
        return ids

    def _partition_order(self, parts: np.ndarray) -> List[int]:
        """Resident partitions first (free hits), then ascending admits."""
        resident = [int(p) for p in parts if self.buffer.is_resident(int(p))]
        absent = [int(p) for p in parts if not self.buffer.is_resident(int(p))]
        return resident + absent

    # ------------------------------------------------------------------
    # Query family 1: embedding lookup
    # ------------------------------------------------------------------
    def _gather_rows(self, ids: np.ndarray) -> np.ndarray:
        """The paging gather without stats accounting (internal fetches by
        the scoring paths must not inflate the request/lookup counters)."""
        out = np.empty((len(ids), self.store.dim), dtype=np.float32)
        if len(ids) == 0:
            return out
        parts = self.scheme.partition_of(ids)
        uniq = np.unique(parts)
        self.policy.touch(uniq)
        pending = set(int(p) for p in uniq)
        for part in self._partition_order(uniq):
            pending.discard(part)
            self.buffer.ensure_resident([part], protect=list(pending))
            mask = parts == part
            out[mask] = self.buffer.gather(ids[mask])
        return out

    def get_embeddings(self, node_ids: np.ndarray) -> np.ndarray:
        """Rows of the served table for ``node_ids`` (any order, dups ok).

        Pages the needed partitions through the buffer in locality order —
        one residency check per partition, one vectorized gather per
        partition group — and returns rows aligned with the input.
        """
        t0 = time.perf_counter()
        with self._query_guard():
            out = self._table_read(
                lambda: self._gather_rows(self._check_ids(node_ids)))
        self.stats.requests += 1
        self.stats.lookups += len(out)
        get_registry().histogram("serve.embed.latency_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        return out

    # ------------------------------------------------------------------
    # Query family 2: decoder scoring
    # ------------------------------------------------------------------
    def _require_decoder(self):
        if self.decoder is None:
            raise RuntimeError("model has no decoder; scoring queries need a "
                               "link prediction snapshot")
        return self.decoder

    @staticmethod
    def _split_pairs(pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] not in (2, 3):
            raise ValueError("pairs must be (n, 2) [src, dst] or "
                             "(n, 3) [src, rel, dst]")
        src, dst = pairs[:, 0], pairs[:, -1]
        rel = (pairs[:, 1] if pairs.shape[1] == 3
               else np.zeros(len(pairs), dtype=np.int64))
        return src, rel, dst

    def score_edges(self, pairs: np.ndarray) -> np.ndarray:
        """Decoder scores for ``(src[, rel], dst)`` rows.

        Decoder-only models (``encoder="none"``) run the exact offline math:
        gather both endpoint embeddings in one locality-ordered pass, then
        ``decoder.score_edges`` — bit-identical to
        :func:`~repro.train.link_prediction.score_edges_offline` on the same
        snapshot. Encoder models first encode-on-read both endpoint sets.
        """
        decoder = self._require_decoder()
        src, rel, dst = self._split_pairs(pairs)
        if len(src) == 0:
            return np.empty(0, dtype=np.float32)
        t0 = time.perf_counter()
        with self._query_guard():
            if getattr(self.model, "encoder", None) is None:
                embs = self._table_read(lambda: self._gather_rows(
                    self._check_ids(np.concatenate([src, dst]))))
                src_repr = Tensor(embs[: len(src)])
                dst_repr = Tensor(embs[len(src):])
            else:
                targets = np.unique(np.concatenate([src, dst]))
                reprs = self._table_read(
                    lambda: self._encode_rows(targets, seed=None))
                rows = np.searchsorted(targets, np.concatenate([src, dst]))
                src_repr = Tensor(reprs[rows[: len(src)]])
                dst_repr = Tensor(reprs[rows[len(src):]])
        with no_grad():
            scores = decoder.score_edges(src_repr, rel, dst_repr).data
        self.stats.requests += 1
        self.stats.edges_scored += len(src)
        get_registry().histogram("serve.score.latency_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        return scores

    def topk_targets(self, src: int, k: int, rel: int = 0,
                     exclude: Sequence[int] = (),
                     exact: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Best-``k`` destination nodes for ``(src, rel, ?)``, best first.

        The single-source form of :meth:`topk_targets_batch` (exactly its
        ``n = 1`` case — one implementation, no drift); see there for the
        ANN/exact split and the return-shape contract.
        """
        ids, scores = self.topk_targets_batch([int(src)], k, rel=rel,
                                              exclude=exclude, exact=exact)
        return ids[0], scores[0]

    def topk_targets_batch(self, srcs: Sequence[int], k: int,
                           rel=0, exclude: Sequence[int] = (),
                           exact: bool = False
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Best-``k`` destinations for *many* sources in one partition sweep.

        By default the sweep is **pruned** by the per-partition
        :class:`AnnIndex`: a first pass bounds every cluster's best
        possible score (``q . centroid + |q| * radius``, sound by
        Cauchy-Schwarz) and partitions whose every cluster falls below
        every source's running k-th best are skipped without being paged
        in. ``exact=True`` — or a decoder without the linear
        ``target_query_rows`` form, or ``ann=False`` at construction —
        runs the exact blockwise scan over every candidate partition.
        Both paths never touch the replacement policy (scan resistance)
        and serve decoder-only snapshots.

        ``rel`` is a scalar or a per-source array; ``exclude`` is a shared
        candidate blacklist applied to every source (excluded ids are
        removed, never returned).

        Return-shape contract: ``(ids, scores)`` of shape
        ``(len(srcs), k_eff)``, each row best-first with ties broken by
        ascending node id, where ``k_eff = min(k, num_candidates)`` and
        ``num_candidates`` counts the table's nodes *net of the excluded
        ids* — a large ``exclude`` list narrows the result instead of
        silently returning fewer than the clamped ``k``. Over a live view
        the candidate count is read from the dynamic scheme inside the
        query guard, so concurrent growth cannot leave the clamp and the
        sweep disagreeing.
        """
        decoder = self._require_decoder()
        if getattr(self.model, "encoder", None) is not None:
            raise RuntimeError(
                "topk_targets_batch serves decoder-only snapshots; an "
                "encoder model would need every candidate encoded-on-read "
                "(use score_edges over an explicit candidate set instead)")
        srcs = np.asarray(srcs, dtype=np.int64).ravel()
        n = len(srcs)
        k = int(k)
        if n == 0 or k <= 0:
            return (np.empty((n, 0), dtype=np.int64),
                    np.empty((n, 0), dtype=np.float32))
        rel_arr = np.broadcast_to(np.asarray(rel, dtype=np.int64), (n,))
        excluded = np.asarray(sorted(set(int(x) for x in exclude)),
                              dtype=np.int64)
        use_ann = (not exact and self.ann_enabled
                   and hasattr(decoder, "target_query_rows"))

        def sweep() -> Tuple[np.ndarray, np.ndarray]:
            self._check_ids(srcs)
            total = int(self.scheme.num_nodes)
            valid = excluded[(excluded >= 0) & (excluded < total)]
            k_eff = min(k, total - len(valid))
            if k_eff <= 0:
                return (np.empty((n, 0), dtype=np.int64),
                        np.empty((n, 0), dtype=np.float32))
            src_t = Tensor(self._gather_rows(srcs))
            if use_ann:
                return self._sweep_ann(decoder, src_t, rel_arr, valid, k_eff)
            return self._sweep_exact(decoder, src_t, rel_arr, valid, k_eff)

        t0 = time.perf_counter()
        with self._query_guard(), no_grad():
            best_ids, best_scores = self._table_read(sweep)
        self.stats.requests += 1
        self.stats.topk_queries += n
        get_registry().histogram("serve.topk.latency_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        return best_ids, best_scores

    @staticmethod
    def _merge_topk(best_ids: np.ndarray, best_scores: np.ndarray,
                    ids: np.ndarray, scores: np.ndarray,
                    k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fold new candidates into the running best-k, rows kept sorted
        by (score descending, node id ascending).

        The id tie-break is the determinism fix: truncating with a bare
        ``argpartition`` over scores let *which* of several tied-score
        candidates survived depend on partition visit order — and the
        visit order depends on buffer residency, so the same query could
        return different ids under different cache states. Here the sort
        key is the single complex scalar ``-score + id*i``: numpy orders
        complex lexicographically (real, then imaginary), giving the
        total (score desc, id asc) order, and keys are *unique* (one id
        appears once per row) — so even the unstable k-selection below
        picks a deterministic set, and only the k survivors pay a sort.
        The kept set is a pure function of the candidate set, at O(w)
        selection cost instead of an O(w log w) full-width sort.
        """
        merged_scores = np.concatenate(
            [best_scores, scores.astype(np.float32)], axis=1)
        merged_ids = np.concatenate([best_ids, ids], axis=1)
        key = -merged_scores.astype(np.float64) + 1j * merged_ids
        if key.shape[1] > k:
            sel = np.argpartition(key, k - 1, axis=1)[:, :k]
            merged_ids = np.take_along_axis(merged_ids, sel, axis=1)
            merged_scores = np.take_along_axis(merged_scores, sel, axis=1)
            key = np.take_along_axis(key, sel, axis=1)
        order = np.argsort(key, axis=1)
        return (np.take_along_axis(merged_ids, order, axis=1),
                np.take_along_axis(merged_scores, order, axis=1))

    def _sweep_exact(self, decoder, src_t: Tensor, rel_arr: np.ndarray,
                     excluded: np.ndarray,
                     k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The oracle: page every candidate partition, score every row."""
        n = src_t.data.shape[0]
        best_ids = np.empty((n, 0), dtype=np.int64)
        best_scores = np.empty((n, 0), dtype=np.float32)
        all_parts = np.arange(self.scheme.num_partitions)
        for part in self._partition_order(all_parts):
            self.buffer.ensure_resident([part])
            lo = int(self.scheme.boundaries[part])
            hi = int(self.scheme.boundaries[part + 1])
            block = Tensor(self.buffer.partition_view(part))
            scores = decoder.score_against(src_t, rel_arr, block).data
            ids = np.arange(lo, hi, dtype=np.int64)
            if len(excluded):
                drop = excluded[(excluded >= lo) & (excluded < hi)] - lo
                if len(drop):        # remove, don't mask: an excluded id
                    keep = np.ones(hi - lo, dtype=bool)   # must never be
                    keep[drop] = False                    # returned
                    scores, ids = scores[:, keep], ids[keep]
            best_ids, best_scores = self._merge_topk(
                best_ids, best_scores, np.broadcast_to(ids, (n, len(ids))),
                scores, k)
            self.stats.topk_parts_scanned += 1
        return best_ids, best_scores

    def _require_ann(self) -> AnnIndex:
        """The lazily-built cluster index, rebuilt where stale.

        Built on the first ANN top-k (engines that never answer top-k
        never pay for clustering) and invalidated by the live-stream
        listeners; rebuilds read partitions straight from the store, so
        index maintenance cannot evict query-hot buffer partitions.
        """
        if self.ann_index is None:
            self.ann_index = AnnIndex(self.store,
                                      cluster_size=self.ann_cluster_size)
        self.ann_index.ensure_current()
        return self.ann_index

    def _sweep_ann(self, decoder, src_t: Tensor, rel_arr: np.ndarray,
                   excluded: np.ndarray,
                   k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The pruned sweep: bound first, page and score only survivors.

        Partitions are visited in descending order of their best cluster
        bound (so the running thresholds tighten as early as possible);
        within a surviving partition only the clusters some source still
        needs are gathered and scored — the exact blockwise math over a
        subset of rows. Visit order is a pure function of the table and
        the query (never of buffer residency), and pruning is sound, so
        the result matches the exact sweep up to float32 rounding of the
        candidate scores.
        """
        n = src_t.data.shape[0]
        index = self._require_ann()
        queries = decoder.target_query_rows(src_t.data, rel_arr)
        bounds = index.cluster_bounds(queries)
        best_ids = np.empty((n, 0), dtype=np.int64)
        best_scores = np.empty((n, 0), dtype=np.float32)
        thresholds = np.full(n, -np.inf)
        order = np.argsort([-float(b.max()) if b.size else np.inf
                            for b in bounds], kind="stable")
        for part in order:
            part = int(part)
            ub = bounds[part]                        # (n, clusters)
            if ub.size == 0 or (ub.max(axis=1) < thresholds).all():
                self.stats.topk_parts_pruned += 1
                continue
            surviving = (ub >= thresholds[:, None]).any(axis=0)
            pc = index.partition(part)
            row_mask = np.repeat(surviving, np.diff(pc.indptr))
            rows = pc.rows[row_mask]
            lo = int(self.scheme.boundaries[part])
            ids = lo + rows
            if len(excluded):
                keep = ~np.isin(ids, excluded)
                rows, ids = rows[keep], ids[keep]
            if len(rows) == 0:
                self.stats.topk_parts_pruned += 1
                continue
            self.buffer.ensure_resident([part])
            block = Tensor(self.buffer.partition_view(part)[rows])
            scores = decoder.score_against(src_t, rel_arr, block).data
            best_ids, best_scores = self._merge_topk(
                best_ids, best_scores, np.broadcast_to(ids, (n, len(ids))),
                scores, k)
            if best_scores.shape[1] == k:
                thresholds = best_scores[:, -1].astype(np.float64)
            self.stats.topk_parts_scanned += 1
            self.stats.ann_rows_scored += len(rows)
        return best_ids, best_scores

    # ------------------------------------------------------------------
    # Query family 3: GNN encode-on-read
    # ------------------------------------------------------------------
    def _require_sampler(self) -> DenseSampler:
        if self.sampler is None:
            raise RuntimeError(
                "engine was built without an edge source / fanouts; "
                "encode-on-read queries need the neighborhood sampler")
        return self.sampler

    def _encoder_forward(self, h0: Tensor, batch) -> Tensor:
        encode = getattr(self.model, "encode", None)
        if encode is not None:                      # LinkPredictionModel
            return encode(h0, batch)
        return self.model.encoder(h0, batch)        # NodeClassifier

    def encode_nodes(self, node_ids: np.ndarray,
                     seed: Optional[int] = None) -> np.ndarray:
        """Encoder outputs for ``node_ids`` via sampled neighborhoods.

        Multi-hop neighborhoods are drawn from the in-buffer subgraph only
        (both endpoints of every sampled edge are resident by construction
        of the partitioned index), mirroring the neighborhood restriction
        disk training applies. Query nodes spanning more partitions than
        the buffer holds are processed in locality-ordered chunks.

        With ``seed`` the result is a pure function of (snapshot, query,
        seed): the draw stream is reseeded, chunks run in ascending
        partition order, and each chunk swaps to an *exact* resident set —
        otherwise leftover residency would change which neighbors exist in
        the in-buffer subgraph between calls. Without a seed, execution is
        locality-optimized (resident partitions first, leftovers kept).
        """
        t0 = time.perf_counter()
        with self._query_guard():
            out = self._table_read(
                lambda: self._encode_rows(self._check_ids(node_ids), seed))
        self.stats.requests += 1
        self.stats.nodes_encoded += len(out)
        get_registry().histogram("serve.encode.latency_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        return out

    def _encoder_out_dim(self) -> int:
        encoder = getattr(self.model, "encoder", None)
        return int(encoder.dims[-1]) if encoder is not None else self.store.dim

    def _encode_rows(self, ids: np.ndarray, seed: Optional[int]) -> np.ndarray:
        if self.sampler is None and getattr(self.model, "encoder",
                                            None) is None:
            # Decoder-only snapshots have no message passing: the node
            # representation IS the stored table row (model.encode is the
            # identity on h0), so encode-on-read degrades to the paged
            # gather and every snapshot serves all four query families.
            return self._gather_rows(ids)
        sampler = self._require_sampler()
        deterministic = seed is not None
        if deterministic:
            sampler.reseed(np.random.default_rng(seed))
        if len(ids) == 0:
            return np.empty((0, self._encoder_out_dim()), dtype=np.float32)
        parts = self.scheme.partition_of(ids)
        uniq = np.unique(parts)
        self.policy.touch(uniq)
        order = ([int(p) for p in uniq] if deterministic
                 else self._partition_order(uniq))
        chunks = [order[i : i + self.buffer.capacity]
                  for i in range(0, len(order), self.buffer.capacity)]
        out: Optional[np.ndarray] = None
        with no_grad():
            for i, chunk in enumerate(chunks):
                if deterministic:
                    self.buffer.set_partitions(chunk)
                else:
                    protect = [p for c in chunks[i + 1 :] for p in c]
                    self.buffer.ensure_resident(chunk, protect=protect)
                mask = np.isin(parts, chunk)
                targets = np.unique(ids[mask])
                batch = sampler.sample(targets)
                h0 = Tensor(self.buffer.gather(batch.node_ids))
                reprs = self._encoder_forward(h0, batch).data
                if out is None:
                    out = np.empty((len(ids), reprs.shape[1]), dtype=reprs.dtype)
                rows = np.searchsorted(targets, ids[mask])
                out[mask] = reprs[rows]
        return out

    def classify(self, node_ids: np.ndarray,
                 seed: Optional[int] = None) -> np.ndarray:
        """Predicted class labels for ``node_ids`` (NC snapshots)."""
        head = getattr(self.model, "head", None)
        if head is None:
            raise RuntimeError("model has no classification head; classify "
                               "queries need a node classification snapshot")
        reprs = self.encode_nodes(node_ids, seed=seed)
        with no_grad():
            logits = head(Tensor(reprs)).data
        return logits.argmax(axis=1)
