"""Build serving engines from trained snapshots.

The restore path is the read-only one
(:func:`~repro.train.checkpoint.restore_for_inference`): only the model
parameters and the node table leave the snapshot — optimizer moments,
policy state, RNG streams and training cursors are never touched, so any
snapshot a trainer can resume from can also be served, and snapshots from
a *finished* run (whose trainer state no longer matters) serve equally
well.

The served table lives in a read-only :class:`NodeStore` memmap under the
serving workdir, partitioned uniformly like the training store; the
snapshot's recorded store fingerprint is checked against the rebuilt
layout (ignoring the learnable flag — serving never carries optimizer
state) so a partition-count mismatch is rejected up front instead of
silently changing which rows a swap loads.
"""

from __future__ import annotations

import dataclasses
import os
import re
from pathlib import Path
from typing import Optional

import numpy as np

from ..api.registry import LP_SNAPSHOT_KINDS, NC_SNAPSHOT_KINDS
from ..graph.datasets import NodeClassificationDataset
from ..graph.edge_list import Graph
from ..graph.partition import PartitionScheme
from ..storage.edge_store import EdgeBucketStore
from ..storage.node_store import NodeStore
from ..train.checkpoint import (InferenceRestore, SnapshotError,
                                nc_dataset_fingerprint,
                                restore_for_inference)
from ..train.link_prediction import LinkPredictionConfig, LinkPredictionModel
from ..train.node_classification import (NodeClassificationConfig,
                                         NodeClassifier)
from .engine import ServingEngine

# Accepted snapshot kinds are owned by the job registry, so the serving
# loader cannot drift from the trainers' KIND strings.
LP_KINDS = LP_SNAPSHOT_KINDS
NC_KINDS = NC_SNAPSHOT_KINDS


def _config_from_meta(restore: InferenceRestore, config_cls):
    fields = {f.name for f in dataclasses.fields(config_cls)}
    kwargs = {k: v for k, v in restore.config.items() if k in fields}
    if "fanouts" in kwargs:
        kwargs["fanouts"] = tuple(kwargs["fanouts"])
    return config_cls(**kwargs)


def _partitions_from_meta(restore: InferenceRestore, num_nodes: int) -> int:
    """Partition count: the snapshot's plan fingerprint (``...:p16:...``)
    when the training store was partitioned, else a serving default."""
    plan = restore.store_fingerprint("plan") or ""
    match = re.search(r":p(\d+):", plan)
    if match:
        return int(match.group(1))
    return max(1, min(16, num_nodes))


def _check_store_fingerprint(restore: InferenceRestore, store: NodeStore) -> None:
    """Snapshot-recorded node layout vs the rebuilt serving store.

    Compares node count, dim, and the partition-boundary CRC; the learnable
    flag differs by design (training stores carry Adagrad state, serving
    stores never do).
    """
    recorded = restore.store_fingerprint("node")
    if recorded is None:
        return
    rec, new = recorded.split(":"), store.fingerprint().split(":")
    if (rec[1], rec[2], rec[4]) != (new[1], new[2], new[4]):
        raise SnapshotError(
            f"snapshot node store layout {recorded} does not match the "
            f"serving store {store.fingerprint()}; pass the training "
            f"partition count (num_partitions)")


def serve_link_prediction(snapshot: os.PathLike, workdir: os.PathLike,
                          num_partitions: Optional[int] = None,
                          buffer_capacity: int = 4,
                          graph: Optional[Graph] = None,
                          seed: int = 0, ann: bool = True,
                          ann_cluster_size: int = 64) -> ServingEngine:
    """Serving engine over a link prediction snapshot (any LP trainer kind).

    ``graph`` (typically the training edge split) enables encode-on-read
    for encoder models: its edge buckets are written next to the served
    table and sampled through the buffer-resident subgraph. Decoder-only
    snapshots need no graph. ``ann`` / ``ann_cluster_size`` configure the
    pruned top-k index (built lazily on the first top-k query).
    """
    restore = restore_for_inference(snapshot)
    if restore.trainer_kind not in LP_KINDS:
        raise SnapshotError(
            f"snapshot was written by trainer {restore.trainer_kind!r}; "
            f"expected one of {LP_KINDS}")
    if restore.node_table is None:
        raise SnapshotError("snapshot carries no node table to serve")
    config = _config_from_meta(restore, LinkPredictionConfig)
    relations = restore.model_state.get("decoder.relations")
    num_relations = int(relations.shape[0]) if relations is not None else 1
    model = LinkPredictionModel(config, num_relations)
    model.load_state_dict(restore.model_state)

    table = restore.node_table
    num_nodes, dim = table.shape
    p = num_partitions or _partitions_from_meta(restore, num_nodes)
    scheme = PartitionScheme.uniform(num_nodes, p)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    store = NodeStore(workdir / "serve-table.bin", scheme, dim,
                      learnable=False)
    _check_store_fingerprint(restore, store)
    store.initialize(values=table)

    edge_source = None
    fanouts = ()
    if graph is not None and config.encoder != "none":
        edges = EdgeBucketStore(workdir / "serve-edges.bin", graph, scheme)
        edge_source = edges.bucket_endpoints
        fanouts = config.fanouts
    return ServingEngine(model, store, buffer_capacity,
                         edge_source=edge_source, fanouts=fanouts,
                         directions=config.directions, seed=seed,
                         ann=ann, ann_cluster_size=ann_cluster_size)


def serve_node_classification(snapshot: os.PathLike,
                              dataset: NodeClassificationDataset,
                              workdir: os.PathLike,
                              num_partitions: Optional[int] = None,
                              buffer_capacity: int = 8,
                              seed: int = 0) -> ServingEngine:
    """Serving engine over a node classification snapshot.

    NC snapshots carry only the GNN + head (features are immutable), so the
    served table is the dataset's feature matrix, written to a read-only
    partitioned store. Queries use the dataset's node ids.
    """
    restore = restore_for_inference(snapshot)
    if restore.trainer_kind not in NC_KINDS:
        raise SnapshotError(
            f"snapshot was written by trainer {restore.trainer_kind!r}; "
            f"expected one of {NC_KINDS}")
    config = _config_from_meta(restore, NodeClassificationConfig)
    features = dataset.graph.node_features
    if features is None:
        raise ValueError("dataset has no node features to serve")
    # nc-mem snapshots record the dataset's content fingerprint (features,
    # labels, train split); a same-shape regeneration with different data
    # must be refused, not silently classified. (nc-disk snapshots pin
    # only the store layout — they were trained on a relabeled copy.)
    recorded = restore.store_fingerprint("dataset")
    if recorded is not None and recorded != nc_dataset_fingerprint(dataset):
        raise SnapshotError(
            f"snapshot was trained on a different dataset ({recorded} vs "
            f"{nc_dataset_fingerprint(dataset)}); regenerate the dataset "
            f"with the training parameters")
    model = NodeClassifier(config, features.shape[1], dataset.num_classes)
    model.load_state_dict(restore.model_state)

    num_nodes = dataset.graph.num_nodes
    p = num_partitions or _partitions_from_meta(restore, num_nodes)
    scheme = PartitionScheme.uniform(num_nodes, p)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    store = NodeStore(workdir / "serve-features.bin", scheme,
                      features.shape[1], learnable=False)
    _check_store_fingerprint(restore, store)
    store.initialize(values=features)
    edges = EdgeBucketStore(workdir / "serve-edges.bin", dataset.graph, scheme)
    return ServingEngine(model, store, buffer_capacity,
                         edge_source=edges.bucket_endpoints,
                         fanouts=config.fanouts,
                         directions=config.directions, seed=seed)
