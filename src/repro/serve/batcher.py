"""Micro-batching request queue in front of the serving engine.

Individual queries are tiny; partition swaps are not. The batcher
amortizes the swap cost by coalescing concurrent requests into one engine
call: the worker drains the queue once ``max_batch`` requests are waiting
or the oldest has waited ``max_wait_ms``, concatenates same-kind payloads,
and lets the engine's partition-locality ordering make co-located queries
share swaps. Each request records its own end-to-end latency (enqueue to
result), so the tail cost of an unlucky swap is visible per request, not
averaged away per batch.

The queue is **bounded** in both dimensions an always-on service needs:
``max_queue`` caps outstanding requests (a submit past it raises the
typed :class:`Overloaded` — backpressure surfaces at the caller instead
of an unbounded queue absorbing it), and ``timeout_ms`` puts a deadline
on each request (a :class:`RequestTimeout` is delivered instead of
blocking the caller forever behind a stuck engine). Both are counted in
the batcher's stats.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from ..obs.registry import Gauge, Histogram
from .engine import ServingEngine

EMBED = "embed"
SCORE = "score"
TOPK = "topk"
ENCODE = "encode"


class Overloaded(RuntimeError):
    """The batcher's queue is full; the caller should back off and retry."""


class RequestTimeout(TimeoutError):
    """The request's deadline passed before a result was produced."""


class ServeRequest:
    """One queued query with its own completion event and latency clock."""

    __slots__ = ("kind", "payload", "result", "error", "t_enqueue", "t_done",
                 "_event", "deadline", "_timed_out", "_on_timeout")

    def __init__(self, kind: str, payload: np.ndarray,
                 deadline: Optional[float] = None) -> None:
        self.kind = kind
        self.payload = payload
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.t_enqueue = time.perf_counter()
        self.t_done: Optional[float] = None
        self._event = threading.Event()
        self.deadline = deadline         # absolute perf_counter time
        self._timed_out = threading.Event()
        self._on_timeout = None          # batcher stats callback

    def mark_timeout(self) -> bool:
        """Record the deadline miss exactly once (caller and worker can
        both observe it); returns True for the first observer."""
        first = not self._timed_out.is_set()
        self._timed_out.set()
        if first and self._on_timeout is not None:
            self._on_timeout()
        return first

    def wait(self) -> np.ndarray:
        if self.deadline is None:
            self._event.wait()
        else:
            remaining = self.deadline - time.perf_counter()
            if not self._event.wait(timeout=max(0.0, remaining)):
                self.mark_timeout()
                raise RequestTimeout(
                    f"{self.kind} request missed its deadline "
                    f"({1000.0 * (time.perf_counter() - self.t_enqueue):.1f}"
                    f"ms since enqueue)")
        if self.error is not None:
            raise self.error
        return self.result

    def finish(self, result=None, error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.t_done = time.perf_counter()
        self._event.set()

    @property
    def latency_ms(self) -> float:
        if self.t_done is None:
            return 0.0
        return 1000.0 * (self.t_done - self.t_enqueue)


class RequestBatcher:
    """Coalesces embedding/scoring requests into batched engine calls.

    Parameters
    ----------
    engine:
        The serving engine; all execution happens on the batcher's single
        worker thread, so the (thread-unsafe) engine is never entered
        concurrently.
    max_batch:
        Drain the queue once this many requests are waiting.
    max_wait_ms:
        ... or once the oldest waiting request is this old — bounds the
        latency a lonely query pays for batching.
    max_queue:
        Outstanding-request cap; a submit at the cap raises
        :class:`Overloaded`. ``None`` (default) keeps the queue unbounded.
    timeout_ms:
        Default per-request deadline, measured from enqueue; a miss
        delivers :class:`RequestTimeout` to the waiting caller (and the
        worker discards the expired request instead of executing it).
        ``None`` disables deadlines; :meth:`submit` takes a per-request
        override.
    """

    def __init__(self, engine: ServingEngine, max_batch: int = 256,
                 max_wait_ms: float = 2.0, max_queue: Optional[int] = None,
                 timeout_ms: Optional[float] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue) if max_queue is not None else None
        self.timeout_ms = float(timeout_ms) if timeout_ms is not None else None
        self._queue: Deque[ServeRequest] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._worker: Optional[threading.Thread] = None
        # Standalone (not registry-global) so each batcher instance keeps
        # its own counts; bounded sketches, never per-request lists.
        self.latency_hist = Histogram("serve.batch.latency_ms")
        self.batch_hist = Histogram("serve.batch.size")
        self.queue_depth = Gauge("serve.batch.queue_depth")
        self.overloads = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    def start(self) -> "RequestBatcher":
        if self._worker is not None:
            raise RuntimeError("batcher already started")
        self._stopping = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()
        return self

    def stop(self) -> None:
        """Drain outstanding requests, then stop the worker."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None

    def __enter__(self) -> "RequestBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _note_timeout(self) -> None:
        with self._cond:
            self.timeouts += 1

    def submit(self, kind: str, payload: np.ndarray,
               timeout_ms: Optional[float] = None) -> ServeRequest:
        if self._worker is None:
            raise RuntimeError("batcher is not running (use start() or a "
                               "with-block)")
        payload = np.asarray(payload, dtype=np.int64)
        if kind == EMBED:
            # Normalize here, not in the worker: per-request result slicing
            # counts payload entries, so a 2-d id array must become 1-d
            # before it is measured against the merged result.
            payload = payload.ravel()
        if timeout_ms is None:
            timeout_ms = self.timeout_ms
        deadline = (time.perf_counter() + float(timeout_ms) / 1000.0
                    if timeout_ms is not None else None)
        request = ServeRequest(kind, payload, deadline=deadline)
        request._on_timeout = self._note_timeout
        with self._cond:
            if self._stopping:
                raise RuntimeError("batcher is stopping")
            if (self.max_queue is not None
                    and len(self._queue) >= self.max_queue):
                self.overloads += 1
                raise Overloaded(
                    f"serve queue is full ({len(self._queue)} waiting, "
                    f"max_queue={self.max_queue}); back off and retry")
            self._queue.append(request)
            self.queue_depth.set(len(self._queue))
            self._cond.notify_all()
        return request

    def get_embeddings(self, node_ids) -> np.ndarray:
        """Blocking embedding lookup through the micro-batching queue."""
        ids = np.asarray(node_ids, dtype=np.int64).ravel()
        return self.submit(EMBED, ids).wait()

    def score_edges(self, pairs) -> np.ndarray:
        """Blocking edge scoring through the micro-batching queue."""
        return self.submit(SCORE, np.asarray(pairs, dtype=np.int64)).wait()

    def topk_targets(self, src: int, k: int, rel: int = 0,
                     exact: bool = False, exclude=()):
        """Blocking top-k query through the micro-batching queue.

        Concurrent top-k requests with the same ``(k, exact, exclude)``
        are coalesced into one :meth:`ServingEngine.topk_targets_batch`
        call, so n waiting queries share a single (pruned or exact)
        partition sweep instead of paying n sweeps. ``exclude`` is the
        engine's shared candidate blacklist (excluded ids are removed,
        never returned); requests with different blacklists simply land
        in different groups. Returns ``(ids, scores)`` for this source,
        best first.
        """
        excl = np.asarray(sorted(set(int(x) for x in exclude)),
                          dtype=np.int64)
        payload = np.concatenate([
            np.array([int(src), int(rel), int(k), int(bool(exact))],
                     dtype=np.int64), excl])
        return self.submit(TOPK, payload).wait()

    def encode_nodes(self, node_ids, seed=None) -> np.ndarray:
        """Blocking encode-on-read through the micro-batching queue.

        Requests with the same ``seed`` coalesce into one
        :meth:`ServingEngine.encode_nodes` call (the seeded path is a
        pure function of (snapshot, query, seed), so merging queries
        preserves every caller's result rows). The two payload header
        slots carry ``[has_seed, seed]`` ahead of the ids.
        """
        ids = np.asarray(node_ids, dtype=np.int64).ravel()
        header = np.array([0 if seed is None else 1,
                           0 if seed is None else int(seed)], dtype=np.int64)
        return self.submit(ENCODE, np.concatenate([header, ids])).wait()

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p99/mean/max of per-request end-to-end latency, from the
        bounded histogram (same keys :func:`~repro.serve.stats.latency_summary`
        produced from the old per-request list)."""
        h = self.latency_hist
        if h.count == 0:
            return {"n": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0,
                    "max_ms": 0.0}
        return {"n": int(h.count),
                "p50_ms": float(h.quantile(0.5)),
                "p99_ms": float(h.quantile(0.99)),
                "mean_ms": float(h.sum / h.count),
                "max_ms": float(h.max)}

    def stats(self) -> Dict[str, float]:
        """Operational counters: completed request latencies plus the two
        bounded-queue outcomes (rejected submits, missed deadlines)."""
        batches = self.batch_hist.count
        return {"requests": int(self.latency_hist.count),
                "batches": int(batches),
                "mean_batch": (float(self.batch_hist.sum / batches)
                               if batches else 0.0),
                "overloads": self.overloads,
                "timeouts": self.timeouts,
                "queue_depth": int(self.queue_depth.value),
                "max_queue": self.max_queue or 0,
                "timeout_ms": self.timeout_ms or 0.0}

    # ------------------------------------------------------------------
    def _collect(self) -> List[ServeRequest]:
        """Wait for work, then coalesce up to max_batch requests."""
        with self._cond:
            while not self._queue and not self._stopping:
                self._cond.wait()
            if not self._queue:
                return []                      # stopping, fully drained
            deadline = self._queue[0].t_enqueue + self.max_wait_s
            while (len(self._queue) < self.max_batch and not self._stopping):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch = []
            while self._queue and len(batch) < self.max_batch:
                batch.append(self._queue.popleft())
            self.queue_depth.set(len(self._queue))
            return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return
            self.batch_hist.observe(len(batch))
            self._execute(batch)

    def _execute(self, batch: List[ServeRequest]) -> None:
        # Deadline-expired requests are discarded up front: the caller is
        # (or will be) gone, and executing them would tax the batch that
        # made it in time.
        now = time.perf_counter()
        live: List[ServeRequest] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                request.mark_timeout()
                request.finish(error=RequestTimeout(
                    f"{request.kind} request expired in queue"))
                self.latency_hist.observe(request.latency_ms)
            else:
                live.append(request)
        batch = live
        groups: Dict[tuple, List[ServeRequest]] = {}
        for request in batch:
            if request.kind == TOPK:
                # Top-k requests coalesce per (k, exact, exclude): one
                # multi-source partition sweep answers the whole group,
                # row i per request i. (A 3-entry payload predates the
                # exact flag and means the default ANN path; entries past
                # the fourth are the shared candidate blacklist.)
                exact = (len(request.payload) > 3
                         and bool(request.payload[3]))
                exclude = tuple(int(x) for x in request.payload[4:])
                key = (TOPK, (int(request.payload[2]), exact, exclude))
            elif request.kind == ENCODE:
                # Encode requests coalesce per seed (the [has_seed, seed]
                # payload header); one engine call encodes the merged ids.
                # Only decoder-only engines merge: with a sampler, the
                # neighborhood draw is a function of the whole target set,
                # so merging would change every caller's result.
                seed = (int(request.payload[1]) if request.payload[0]
                        else None)
                if getattr(self.engine, "sampler", None) is not None:
                    key = (ENCODE, (seed, id(request)))
                else:
                    key = (ENCODE, seed)
            else:
                width = (request.payload.shape[1]
                         if request.payload.ndim == 2 else 0)
                key = (request.kind, width)
            groups.setdefault(key, []).append(request)
        for (kind, extra), requests in groups.items():
            try:
                payloads = [r.payload for r in requests]
                if kind == EMBED:
                    merged = np.concatenate(payloads)
                    result = self.engine.get_embeddings(merged)
                elif kind == SCORE:
                    merged = np.concatenate(payloads, axis=0)
                    result = self.engine.score_edges(merged)
                elif kind == TOPK:
                    srcs = np.array([p[0] for p in payloads], dtype=np.int64)
                    rels = np.array([p[1] for p in payloads], dtype=np.int64)
                    group_k, group_exact = extra[0], extra[1]
                    group_exclude = extra[2] if len(extra) > 2 else ()
                    ids, scores = self.engine.topk_targets_batch(
                        srcs, group_k, rel=rels, exclude=group_exclude,
                        exact=group_exact)
                    for row, request in enumerate(requests):
                        request.finish(result=(ids[row], scores[row]))
                    result = None
                elif kind == ENCODE:
                    seed = extra[0] if isinstance(extra, tuple) else extra
                    merged = np.concatenate([p[2:] for p in payloads])
                    result = self.engine.encode_nodes(merged, seed=seed)
                    offset = 0
                    for request in requests:
                        n = len(request.payload) - 2
                        request.finish(result=result[offset : offset + n])
                        offset += n
                    result = None
                else:
                    raise ValueError(f"unknown request kind {kind!r}")
                if result is not None:
                    offset = 0
                    for request in requests:
                        n = len(request.payload)
                        request.finish(result=result[offset : offset + n])
                        offset += n
            except Exception as exc:   # deliver, don't kill the worker
                for request in requests:
                    if not request._event.is_set():
                        request.finish(error=exc)
            for request in requests:
                self.latency_hist.observe(request.latency_ms)
