"""Per-partition IVF index for sublinear top-k target queries.

The exact top-k sweep (:meth:`~repro.serve.engine.ServingEngine.
topk_targets_batch` with ``exact=True``) pages **every** candidate
partition through the buffer and scores every row — cost linear in table
size. This module adds the first-pass structure that breaks that
linearity: each physical partition carries a small set of k-means
clusters over its rows (an inverted-file / IVF layout, partition-resident
so it rebuilds independently when a streamed partition changes), and a
query first bounds what each cluster could possibly score before paging
anything.

The bound is sound, not heuristic. Every shipped decoder's
``score_against`` is *linear in the candidate row* — it exposes
``target_query_rows(src, rel) -> q`` with ``score(s, r, d) = q . h_d``.
By Cauchy-Schwarz, for any member ``x`` of a cluster with centroid ``c``
and radius ``r = max |x - c|``:

    q . x  =  q . c + q . (x - c)  <=  q . c + |q| * r

so a cluster whose bound falls below the query's running k-th best score
cannot contribute a result, and a partition whose every cluster is below
every source's threshold is **skipped without being paged in** — the IO
win grows with table size because thresholds tighten after the first few
high-bound partitions. Bounds are evaluated in float64 with an explicit
epsilon margin so float32 scoring round-off can never prune a true
top-k member; the property-tested worst-case recall floor lives in
``tests/test_serve_ann.py`` and the committed benchmark asserts
recall@10 >= 0.95 on the exact-vs-ANN curve.

Rebuild semantics: the index is **lazy**. Construction and every
invalidation (live-stream ingest refresh, node growth, compaction) only
mark partitions stale; `ensure_current()` — called by the engine at the
top of each ANN sweep, under the engine's query guard — rebuilds exactly
the stale ones with one sequential partition read each. A serving engine
that never answers top-k never pays for clustering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..storage.node_store import NodeStore

#: Safety margin added to every cluster bound: float32 scoring of a
#: member may land slightly above the float64 bound of its cluster, and a
#: pruned cluster must never hide a true top-k row. Absolute + relative.
_BOUND_EPS = 1e-5


class PartitionClusters:
    """The IVF cells of one physical partition.

    ``rows[indptr[j]:indptr[j+1]]`` are the partition-local row offsets of
    cluster ``j``'s members (each global node id is ``lo + row``), grouped
    so a surviving cluster gathers its candidate block with one fancy
    index into the buffer's partition view.
    """

    __slots__ = ("centroids", "radii", "rows", "indptr", "num_rows")

    def __init__(self, centroids: np.ndarray, radii: np.ndarray,
                 rows: np.ndarray, indptr: np.ndarray) -> None:
        self.centroids = centroids          # (c, dim) float32
        self.radii = radii                  # (c,) float64
        self.rows = rows                    # (m,) int64, grouped by cluster
        self.indptr = indptr                # (c + 1,) int64
        self.num_rows = int(len(rows))

    @property
    def num_clusters(self) -> int:
        return int(len(self.radii))


def _kmeans(block: np.ndarray, num_clusters: int,
            iters: int) -> PartitionClusters:
    """Deterministic Lloyd iterations over one partition block.

    Init takes evenly spaced rows (a pure function of the block — no RNG,
    so a rebuilt partition always clusters the same way), empty clusters
    keep their previous centroid, and the final pass records each
    cluster's member rows and float64 radius.
    """
    m = len(block)
    if m == 0:                    # empty partition: zero cells, always pruned
        dim = block.shape[1] if block.ndim == 2 else 0
        return PartitionClusters(np.empty((0, dim), dtype=np.float32),
                                 np.empty(0, dtype=np.float64),
                                 np.empty(0, dtype=np.int64),
                                 np.zeros(1, dtype=np.int64))
    c = max(1, min(int(num_clusters), m))
    x64 = block.astype(np.float64)
    centroids = x64[np.linspace(0, m - 1, c).round().astype(np.int64)].copy()
    sq = (x64 * x64).sum(axis=1)
    for _ in range(iters + 1):       # last pass only re-assigns
        d2 = sq[:, None] - 2.0 * (x64 @ centroids.T) \
            + (centroids * centroids).sum(axis=1)[None, :]
        assign = d2.argmin(axis=1)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, x64)
        counts = np.bincount(assign, minlength=c)
        filled = counts > 0
        centroids[filled] = sums[filled] / counts[filled, None]
    # Drop empty cells and group member rows per surviving cluster.
    keep = np.flatnonzero(filled)
    remap = np.empty(c, dtype=np.int64)
    remap[keep] = np.arange(len(keep))
    assign = remap[assign]
    order = np.argsort(assign, kind="stable")
    rows = order.astype(np.int64)
    indptr = np.zeros(len(keep) + 1, dtype=np.int64)
    np.cumsum(np.bincount(assign, minlength=len(keep)), out=indptr[1:])
    centroids = centroids[keep]
    diff = x64 - centroids[assign]
    dist = np.sqrt((diff * diff).sum(axis=1))
    radii = np.zeros(len(keep), dtype=np.float64)
    np.maximum.at(radii, assign, dist)
    return PartitionClusters(centroids.astype(np.float32), radii, rows, indptr)


class AnnIndex:
    """Per-partition cluster index over a partitioned node store.

    Parameters
    ----------
    store:
        The served :class:`NodeStore` (read directly at build time — one
        sequential partition read per rebuilt partition, never through
        the query buffer, so index maintenance cannot evict query-hot
        partitions or touch the replacement policy).
    cluster_size:
        Target rows per cluster; partition ``i`` gets
        ``ceil(size_i / cluster_size)`` cells.
    iters:
        Lloyd iterations per (re)build.
    """

    def __init__(self, store: NodeStore, cluster_size: int = 64,
                 iters: int = 4) -> None:
        if cluster_size < 1:
            raise ValueError("cluster_size must be at least 1")
        self.store = store
        self.cluster_size = int(cluster_size)
        self.iters = int(iters)
        self._parts: Dict[int, PartitionClusters] = {}
        self._stale = set(range(store.scheme.num_partitions))
        self.builds = 0            # partitions clustered (telemetry)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, parts: Optional[Sequence[int]] = None) -> None:
        """Mark partitions stale (``None`` = all); rebuilt on next query.

        This is what the serving engine's live-stream listeners call:
        refresh write-backs and compactions invalidate the touched
        partitions, node growth invalidates the (extended) last partition.
        """
        if parts is None:
            self._stale.update(range(self.store.scheme.num_partitions))
        else:
            self._stale.update(int(p) for p in parts)

    def ensure_current(self) -> None:
        """Rebuild every stale partition from the store."""
        while self._stale:
            part = self._stale.pop()
            block, _ = self.store.read_partition(part)
            size = self.store.scheme.partition_size(part)
            n_clusters = -(-size // self.cluster_size)   # ceil
            self._parts[part] = _kmeans(np.asarray(block, dtype=np.float32),
                                        n_clusters, self.iters)
            self.builds += 1

    def partition(self, part: int) -> PartitionClusters:
        return self._parts[part]

    # ------------------------------------------------------------------
    # Query-side bounds
    # ------------------------------------------------------------------
    def cluster_bounds(self, queries: np.ndarray) -> List[np.ndarray]:
        """Upper bounds on what each cluster could score for each query.

        ``queries`` is the ``(n, dim)`` matrix of decoder query vectors
        (``target_query_rows``). Returns one ``(n, c_p)`` float64 array
        per partition: ``bounds[p][s, j] >= score(s, x)`` for every member
        ``x`` of partition ``p``'s cluster ``j`` — computed as
        ``q . centroid + |q| * radius`` in float64 plus an epsilon margin
        covering float32 scoring round-off.
        """
        q64 = np.asarray(queries, dtype=np.float64)
        qnorm = np.sqrt((q64 * q64).sum(axis=1))
        out: List[np.ndarray] = []
        for part in range(self.store.scheme.num_partitions):
            pc = self._parts[part]
            bounds = q64 @ pc.centroids.astype(np.float64).T \
                + qnorm[:, None] * pc.radii[None, :]
            bounds += _BOUND_EPS * (1.0 + np.abs(bounds))
            out.append(bounds)
        return out

    def stats(self) -> Dict[str, int]:
        built = [pc for pc in self._parts.values()]
        return {"partitions_built": len(built),
                "partitions_stale": len(self._stale),
                "clusters": sum(pc.num_clusters for pc in built),
                "builds": self.builds}
