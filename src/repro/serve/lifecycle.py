"""Signal-aware shutdown for serving processes.

``repro serve`` (and every fleet worker) answers queries until it is told
to stop — and "told to stop" in any deployment is a signal, not a method
call. :class:`GracefulDrain` turns SIGINT/SIGTERM into an orderly drain:
the moment the signal lands, registered drain callables run (typically
:meth:`~repro.serve.batcher.RequestBatcher.stop`, which rejects new
submits and finishes every queued request) and a shutdown event is set
for loops that poll instead of block. Without it, teardown relied on the
batcher's daemon worker thread being killed mid-batch — accepted
requests could die with the process.

The handler body is deliberately tiny and reentrant-safe: Python runs
signal handlers on the main thread between bytecodes, so the drain
callables must themselves be safe to call from there (``RequestBatcher.
stop`` is: it flags the queue closed, joins the worker after it finishes
the queued tail, and is idempotent). A second signal during the drain is
absorbed — the drain is already running, and re-entering it could only
corrupt the join.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, Iterable, Optional, Tuple

__all__ = ["GracefulDrain"]

_DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class GracefulDrain:
    """Context manager: install drain-on-signal handlers, restore on exit.

    Parameters
    ----------
    drain:
        Zero-arg callables to run (in order) when the first signal lands.
        Each must be idempotent and main-thread-safe; exceptions out of a
        drain callable are suppressed (shutdown must proceed past a
        half-dead component).
    signals:
        Which signals trigger the drain (default SIGINT + SIGTERM).
    exit_after:
        When true (the ``repro serve`` mode), the handler raises
        ``SystemExit(128 + signum)`` after draining — the conventional
        "killed by signal N" exit code — so a blocking query loop
        unwinds. When false (the fleet-worker mode), the handler only
        sets :attr:`triggered` and the serving loop is expected to poll
        it (or :meth:`wait`) and shut itself down.

    Installing handlers is only legal on the main thread; elsewhere (e.g.
    a pytest worker thread) the context manager degrades to a no-op shell
    whose :meth:`request_drain` can still be called programmatically.
    """

    def __init__(self, *drain: Callable[[], None],
                 signals: Iterable[int] = _DEFAULT_SIGNALS,
                 exit_after: bool = True) -> None:
        self._drain: Tuple[Callable[[], None], ...] = tuple(drain)
        self._signals = tuple(signals)
        self._exit_after = bool(exit_after)
        self._event = threading.Event()
        self._drained = threading.Event()
        self._old = {}
        self.signum: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a signal (or :meth:`request_drain`) started the drain."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the drain is requested (or ``timeout`` elapses)."""
        return self._event.wait(timeout)

    def request_drain(self, signum: int = 0) -> None:
        """Programmatic trigger: exactly the handler minus the exit."""
        self._event.set()
        if self._drained.is_set():
            return
        self._drained.set()
        self.signum = signum or self.signum
        for fn in self._drain:
            try:
                fn()
            except Exception:
                pass

    def _handle(self, signum, frame) -> None:
        already = self.triggered
        self.signum = signum
        self.request_drain(signum)
        if self._exit_after and not already:
            raise SystemExit(128 + signum)

    # ------------------------------------------------------------------
    def __enter__(self) -> "GracefulDrain":
        for sig in self._signals:
            try:
                self._old[sig] = signal.signal(sig, self._handle)
            except ValueError:      # not the main thread: poll-only mode
                break
        return self

    def __exit__(self, *exc) -> None:
        for sig, old in self._old.items():
            try:
                signal.signal(sig, old)
            except ValueError:
                pass
        self._old.clear()
