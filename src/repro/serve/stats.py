"""Serving telemetry: engine counters and latency summaries."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Sequence

import numpy as np


@dataclass
class ServeStats:
    """Counters accumulated by a :class:`~repro.serve.engine.ServingEngine`.

    ``swaps`` counts partitions admitted into the read-only buffer — each is
    one sequential partition read from the store, the serving analogue of
    the trainer's partition-load IO metric.
    """

    requests: int = 0          # public engine calls served
    lookups: int = 0           # individual node ids gathered
    edges_scored: int = 0
    topk_queries: int = 0
    nodes_encoded: int = 0
    swaps: int = 0             # partitions admitted (disk reads)
    topk_parts_scanned: int = 0   # partitions paged + scored by top-k sweeps
    topk_parts_pruned: int = 0    # partitions skipped by the ANN bound
    ann_rows_scored: int = 0      # candidate rows scored on the ANN path

    def swaps_per_1k(self, queries: int) -> float:
        """Partition reads per thousand queries of the given stream."""
        if queries <= 0:
            return 0.0
        return 1000.0 * self.swaps / queries

    def as_dict(self) -> Dict[str, int]:
        """Every counter field, generated from the dataclass itself so a
        newly added counter can never silently fall out of the export."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def make_query_stream(mix: str, num_queries: int, num_nodes: int,
                      seed: int = 0) -> np.ndarray:
    """Single-node lookup stream for benchmarks and probes.

    ``"random"`` draws uniformly; ``"zipf"`` (exponent 1.3) skews over a
    random node permutation, so the hot set is scattered across partitions
    rather than clustered in the first one. One definition shared by the
    ``repro serve --bench`` probe and ``benchmarks/test_serving_throughput``
    keeps their reported workloads comparable.
    """
    rng = np.random.default_rng(seed + 17)
    if mix == "zipf":
        ranks = np.minimum(rng.zipf(1.3, size=num_queries), num_nodes) - 1
        return rng.permutation(num_nodes)[ranks]
    if mix != "random":
        raise ValueError(f"unknown query mix {mix!r} (expected zipf/random)")
    return rng.integers(0, num_nodes, size=num_queries)


def latency_summary(latencies_ms: Sequence[float]) -> Dict[str, float]:
    """p50/p99/mean/max of a per-request latency sample, in milliseconds."""
    lat = np.asarray(latencies_ms, dtype=np.float64)
    if lat.size == 0:
        return {"n": 0, "p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0,
                "max_ms": 0.0}
    return {"n": int(lat.size),
            "p50_ms": float(np.percentile(lat, 50)),
            "p99_ms": float(np.percentile(lat, 99)),
            "mean_ms": float(lat.mean()),
            "max_ms": float(lat.max())}
