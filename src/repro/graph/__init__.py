"""Graph substrate: edge lists, adjacency indexes, partitioning, datasets."""

from .csr import AdjacencyIndex, PartitionedAdjacencyIndex
from .datasets import (DatasetStats, LinkPredictionDataset,
                       NodeClassificationDataset, PAPER_DATASETS,
                       load_fb15k237, load_freebase86m_mini,
                       load_livejournal_mini, load_mag240m_mini,
                       load_papers100m_mini, load_wikikg90m_mini, paper_stats,
                       training_graph)
from .edge_list import EdgeSplit, Graph, split_edges
from .generators import (chain_graph, citation_graph, erdos_renyi_graph,
                         power_law_graph, star_graph)
from .partition import EdgeBuckets, LogicalGrouping, PartitionScheme
from .preprocess import (deduplicate_edges, degree_order, densify_ids,
                         export_tsv, import_tsv, shuffle_node_ids)

__all__ = [
    "Graph", "EdgeSplit", "split_edges", "AdjacencyIndex",
    "PartitionedAdjacencyIndex",
    "PartitionScheme", "EdgeBuckets", "LogicalGrouping",
    "power_law_graph", "citation_graph", "erdos_renyi_graph",
    "chain_graph", "star_graph",
    "DatasetStats", "PAPER_DATASETS", "paper_stats",
    "LinkPredictionDataset", "NodeClassificationDataset",
    "load_fb15k237", "load_freebase86m_mini", "load_wikikg90m_mini",
    "training_graph",
    "load_papers100m_mini", "load_mag240m_mini", "load_livejournal_mini",
    "densify_ids", "shuffle_node_ids", "deduplicate_edges", "degree_order",
    "export_tsv", "import_tsv",
]
