"""Synthetic graph generators used as stand-ins for the paper's datasets.

The paper's policy and bias results (Table 8, Figure 6) depend on graph
*structure* — heavy-tailed degree distributions and how edges spread across
partition pairs — not on billion-edge scale. These generators produce:

* power-law knowledge graphs (Chung-Lu style with relation types), matching
  FB15k-237 / Freebase86M / WikiKG90Mv2 shape, and
* citation-style feature/label graphs for node classification, matching
  Papers100M / Mag240M shape (1-10% labeled training nodes, Section 5.2).

Node IDs are randomly permuted after generation so that contiguous-range
partitioning (``PartitionScheme.uniform``) behaves like random partitioning,
as the paper assumes for link prediction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .edge_list import Graph


def _power_law_weights(num_nodes: int, exponent: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Expected-degree weights following a (truncated) power law."""
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)
    return weights / weights.sum()


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.3,
    num_relations: int = 1,
    seed: int = 0,
    self_loops: bool = False,
) -> Graph:
    """Chung-Lu style directed multigraph with power-law in/out degrees.

    Endpoints are drawn independently from the weight distribution, giving
    the heavy-tailed degree skew of web/knowledge graphs. Relation types are
    drawn from a Zipfian distribution when ``num_relations > 1``.
    """
    if num_nodes <= 1:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    weights = _power_law_weights(num_nodes, exponent, rng)
    src = rng.choice(num_nodes, size=num_edges, p=weights)
    dst = rng.choice(num_nodes, size=num_edges, p=weights)
    if not self_loops:
        loops = src == dst
        while loops.any():
            dst[loops] = rng.choice(num_nodes, size=int(loops.sum()), p=weights)
            loops = src == dst
    rel = None
    if num_relations > 1:
        rel_weights = 1.0 / np.arange(1, num_relations + 1, dtype=np.float64)
        rel_weights /= rel_weights.sum()
        rel = rng.choice(num_relations, size=num_edges, p=rel_weights)
    return Graph(num_nodes=num_nodes, src=src.astype(np.int64),
                 dst=dst.astype(np.int64), rel=rel,
                 num_relations=max(num_relations, 1))


def citation_graph(
    num_nodes: int,
    num_edges: int,
    feat_dim: int = 64,
    num_classes: int = 16,
    train_fraction: float = 0.05,
    exponent: float = 2.2,
    homophily: float = 0.7,
    seed: int = 0,
) -> Tuple[Graph, np.ndarray, np.ndarray, np.ndarray]:
    """Citation-style graph with features, labels, and a train/val/test split.

    Node features are class-conditioned Gaussians plus noise, and a
    ``homophily`` fraction of edges connect same-class nodes, so that a GNN
    that actually aggregates its sampled neighborhood beats a featureless
    baseline — making node classification accuracy a meaningful signal for
    the sampler and the disk policies.

    Returns ``(graph, train_nodes, valid_nodes, test_nodes)``.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes)

    weights = _power_law_weights(num_nodes, exponent, rng)
    src = rng.choice(num_nodes, size=num_edges, p=weights)
    dst = rng.choice(num_nodes, size=num_edges, p=weights)
    # Rewire a homophilous fraction: destination redrawn from same-class nodes.
    rewire = rng.random(num_edges) < homophily
    if rewire.any():
        by_class = [np.flatnonzero(labels == c) for c in range(num_classes)]
        for c in range(num_classes):
            mask = rewire & (labels[src] == c)
            if mask.any() and len(by_class[c]) > 0:
                dst[mask] = rng.choice(by_class[c], size=int(mask.sum()))
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_nodes

    class_centers = rng.normal(0, 1.0, size=(num_classes, feat_dim))
    features = (class_centers[labels]
                + rng.normal(0, 1.0, size=(num_nodes, feat_dim))).astype(np.float32)

    node_perm = rng.permutation(num_nodes)
    n_train = max(1, int(num_nodes * train_fraction))
    n_valid = max(1, int(num_nodes * 0.02))
    train_nodes = np.sort(node_perm[:n_train])
    valid_nodes = np.sort(node_perm[n_train : n_train + n_valid])
    test_nodes = np.sort(node_perm[n_train + n_valid : n_train + n_valid + n_valid])

    graph = Graph(num_nodes=num_nodes, src=src.astype(np.int64),
                  dst=dst.astype(np.int64), node_features=features,
                  node_labels=labels.astype(np.int64))
    return graph, train_nodes, valid_nodes, test_nodes


def erdos_renyi_graph(num_nodes: int, num_edges: int, seed: int = 0) -> Graph:
    """Uniform random directed graph (used by property tests as a contrast)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % num_nodes
    return Graph(num_nodes=num_nodes, src=src.astype(np.int64), dst=dst.astype(np.int64))


def chain_graph(num_nodes: int) -> Graph:
    """Deterministic path graph 0 -> 1 -> ... (unit-test fixture)."""
    src = np.arange(num_nodes - 1, dtype=np.int64)
    return Graph(num_nodes=num_nodes, src=src, dst=src + 1)


def star_graph(num_leaves: int) -> Graph:
    """Node 0 is the hub with edges leaf -> hub (unit-test fixture)."""
    src = np.arange(1, num_leaves + 1, dtype=np.int64)
    dst = np.zeros(num_leaves, dtype=np.int64)
    return Graph(num_nodes=num_leaves + 1, src=src, dst=dst)
