"""Adjacency indexes for one-hop neighbor sampling.

Section 4.1 of the paper: MariusGNN stores *two sorted versions of the
in-memory edge list* — one sorted by source node ID (for outgoing neighbors)
and one sorted by destination node ID (for incoming neighbors) — plus a
per-node offset array into each. Two implementations of that structure live
here:

* :class:`AdjacencyIndex` — the flat, full-rebuild form: both sorted copies
  are rebuilt from scratch from a :class:`~repro.graph.edge_list.Graph`.
  This is the reference implementation and the fallback for in-memory
  training, where the edge set never changes.

* :class:`PartitionedAdjacencyIndex` — the *two-level*, partition-aware form
  used for disk-based training. Level 2 is a sorted sub-run per edge bucket
  ``(i, j)`` (edges from partition ``i`` to partition ``j``, sorted by the
  key endpoint); level 1 composes, for each resident partition, its bucket
  sub-runs *virtually*: a small per-node cumulative-degree table stitches the
  runs together in canonical bucket order at sample time, so no neighbor
  array is ever re-copied. A partition-buffer swap therefore only sorts the
  buckets of partitions that actually entered the buffer
  (``update_partitions``); sub-runs of untouched buckets are reused as-is
  (and optionally cached across evictions). This is what makes the paper's
  "preparing each S_i for training" (Section 6, Quantity 2) cheap.

Sampling ``f`` neighbors for a batch of nodes is fully vectorized, standing
in for the paper's multi-threaded CPU sampler: nodes whose degree is at most
``f`` copy their whole neighbor run; higher-degree nodes draw ``f`` random
positions. By default draws are with replacement (like DGL's
``replace=True`` mode — duplicates within a node's sample are legal and act
as sampling weights); exact without-replacement sampling uses a vectorized
argsort-of-random-keys draw (no per-node loop). Both index classes share the
same drawing helpers, so for identical degrees and an identically seeded
generator they produce bit-identical samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .edge_list import Graph
from .partition import PartitionScheme


@dataclass
class _SortedEdges:
    """One sorted view of the edge list with per-node offsets."""

    offsets: np.ndarray      # (num_nodes + 1,) start of each node's run
    neighbors: np.ndarray    # other endpoint of each edge in sorted order


def _build_sorted(keys: np.ndarray, values: np.ndarray, num_nodes: int) -> _SortedEdges:
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return _SortedEdges(offsets=offsets, neighbors=values[order])


def _run_gather_index(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering runs ``[starts[i], starts[i]+counts[i])``, concatenated."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_bases = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.arange(total, dtype=np.int64) + np.repeat(starts - run_bases, counts)


def _draw_positions(deg: np.ndarray, fanout: int, rng: np.random.Generator,
                    replace: bool) -> np.ndarray:
    """Draw ``fanout`` virtual neighbor positions in ``[0, deg)`` per row.

    Shared by both index classes so their random streams are identical for
    identical degree vectors.
    """
    if replace:
        draws = np.floor(rng.random((len(deg), fanout)) * deg[:, None]).astype(np.int64)
        np.minimum(draws, deg[:, None] - 1, out=draws)
        return draws
    return _draw_without_replacement(deg, fanout, rng)


def _draw_without_replacement(deg: np.ndarray, fanout: int,
                              rng: np.random.Generator,
                              chunk_elems: int = 1 << 22) -> np.ndarray:
    """Vectorized exact without-replacement draw (argsort-of-random-keys).

    Every row draws ``fanout`` *distinct* uniform positions in ``[0, deg)``.
    Rows are processed in degree-descending chunks so the random-key matrix
    never exceeds ``chunk_elems`` elements even when hub degrees are large;
    each chunk masks the columns beyond a row's degree and takes the
    ``fanout`` smallest keys (a uniform random subset) via ``argpartition``.
    Callers guarantee ``deg > fanout`` for every row.
    """
    n = len(deg)
    draws = np.empty((n, fanout), dtype=np.int64)
    order = np.argsort(-deg, kind="stable")  # descending: chunk bound is exact
    pos = 0
    while pos < n:
        maxd = int(deg[order[pos]])
        take = max(1, min(n - pos, chunk_elems // max(maxd, 1)))
        rows = order[pos : pos + take]
        d = deg[rows]
        md = int(d.max())
        keys = rng.random((len(rows), md))
        keys[np.arange(md)[None, :] >= d[:, None]] = np.inf
        draws[rows] = np.argpartition(keys, fanout - 1, axis=1)[:, :fanout]
        pos += take
    return draws


class _OneHopSamplerBase:
    """Shared vectorized one-hop sampling driver.

    Subclasses define the *virtual neighbor order* — a per-node concatenated
    neighbor run — through ``_total_deg`` (per-node virtual degree),
    ``_copy_full`` (copy whole runs) and ``_positions_to_neighbors`` (map
    virtual positions to node IDs). The split into full-copy vs random-draw
    nodes, the draw itself, and the output layout live here exactly once, so
    the flat and the partitioned index stay interchangeable sample-for-sample
    under a fixed RNG by construction.
    """

    _total_deg: np.ndarray

    def degrees(self, nodes: np.ndarray) -> np.ndarray:
        """Total sampleable degree of ``nodes`` under the configured directions."""
        return self._total_deg[np.asarray(nodes, dtype=np.int64)]

    def sample_one_hop(
        self,
        nodes: np.ndarray,
        fanout: int,
        rng: Optional[np.random.Generator] = None,
        replace: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample up to ``fanout`` neighbors for each node in ``nodes``.

        Returns ``(nbrs, offsets)``: the flat neighbor array and per-node start
        offsets — the paper's ``oneHopSample`` (Algorithm 1 line 4). A node
        with more than ``fanout`` neighbors gets exactly ``fanout`` draws; a
        node with fewer gets all of them. ``fanout <= 0`` means "all
        neighbors".
        """
        rng = rng or np.random.default_rng()
        nodes = np.asarray(nodes, dtype=np.int64)
        n = len(nodes)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

        deg = self._total_deg[nodes]
        take = deg if fanout <= 0 else np.minimum(deg, fanout)
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(take[:-1], out=offsets[1:])
        nbrs = np.empty(int(take.sum()), dtype=np.int64)

        full = take == deg  # nodes contributing their whole neighbor run
        if full.any():
            self._copy_full(nodes[full], offsets[full], nbrs)
        partial = ~full
        if partial.any():
            self._sample_partial(nodes[partial], offsets[partial], int(fanout),
                                 nbrs, rng, replace)
        return nbrs, offsets

    def _sample_partial(self, nodes: np.ndarray, out_pos: np.ndarray, fanout: int,
                        out: np.ndarray, rng: np.random.Generator, replace: bool) -> None:
        """Sample exactly ``fanout`` positions for nodes with degree > fanout."""
        deg = self._total_deg[nodes]
        draws = _draw_positions(deg, fanout, rng, replace)
        values = self._positions_to_neighbors(nodes, draws)
        dest = out_pos[:, None] + np.arange(fanout, dtype=np.int64)[None, :]
        out[dest.ravel()] = values.ravel()

    # Subclass hooks -----------------------------------------------------
    def _copy_full(self, nodes: np.ndarray, out_pos: np.ndarray,
                   out: np.ndarray) -> None:
        raise NotImplementedError

    def _positions_to_neighbors(self, nodes: np.ndarray,
                                positions: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AdjacencyIndex(_OneHopSamplerBase):
    """Dual-sorted edge list supporting vectorized one-hop sampling.

    Parameters
    ----------
    graph:
        The (sub)graph currently in memory.
    directions:
        ``"out"``, ``"in"``, or ``"both"`` — which neighbor direction(s) a
        one-hop sample draws from. The paper samples incoming and outgoing
        edges for GraphSage and incoming only for GAT (Section 7.1).
    """

    def __init__(self, graph: Graph, directions: str = "both") -> None:
        if directions not in ("out", "in", "both"):
            raise ValueError(f"directions must be out/in/both, got {directions!r}")
        self.graph = graph
        self.directions = directions
        self.num_nodes = graph.num_nodes
        self._views = []
        if directions in ("out", "both"):
            self._views.append(_build_sorted(graph.src, graph.dst, graph.num_nodes))
        if directions in ("in", "both"):
            self._views.append(_build_sorted(graph.dst, graph.src, graph.num_nodes))
        # Virtual concatenated neighbor array: per node, out-run then in-run.
        self._deg_per_view = [v.offsets[1:] - v.offsets[:-1] for v in self._views]
        self._total_deg = sum(self._deg_per_view)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes used by the sorted edge copies (the 2x edge factor in Section 6)."""
        return int(sum(v.offsets.nbytes + v.neighbors.nbytes for v in self._views))

    def neighbors_of(self, node: int) -> np.ndarray:
        """All neighbors of one node (out-run then in-run)."""
        parts = [v.neighbors[v.offsets[node] : v.offsets[node + 1]] for v in self._views]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _copy_full(self, nodes: np.ndarray, out_pos: np.ndarray, out: np.ndarray) -> None:
        """Copy every neighbor of ``nodes`` into ``out`` at ``out_pos`` (run-major)."""
        cursor = out_pos.astype(np.int64).copy()
        for view, view_deg in zip(self._views, self._deg_per_view):
            starts = view.offsets[nodes]
            counts = view_deg[nodes]
            src_index = _run_gather_index(starts, counts)
            dst_index = _run_gather_index(cursor, counts)
            out[dst_index] = view.neighbors[src_index]
            cursor += counts

    def _positions_to_neighbors(self, nodes: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Map virtual neighbor positions (out-run then in-run) to node IDs."""
        values = np.empty_like(positions)
        base = np.zeros(len(nodes), dtype=np.int64)
        remaining = np.ones(positions.shape, dtype=bool)
        for view, view_deg in zip(self._views, self._deg_per_view):
            counts = view_deg[nodes]
            local = positions - base[:, None]
            in_view = remaining & (local < counts[:, None]) & (local >= 0)
            if in_view.any():
                rows, cols = np.nonzero(in_view)
                values[rows, cols] = view.neighbors[
                    view.offsets[nodes[rows]] + positions[rows, cols] - base[rows]
                ]
            remaining &= ~in_view
            base += counts
        if remaining.any():
            raise IndexError("neighbor position out of range")
        return values


# ---------------------------------------------------------------------------
# Two-level partition-aware index
# ---------------------------------------------------------------------------

@dataclass
class _BucketRun:
    """Level 2: one bucket's edges sorted by the key endpoint.

    ``offsets`` delimits, per local node ID of the key partition, its
    node-major neighbor segment inside ``neighbors`` (all of local node 0's
    neighbors, then node 1's, …), preserving the bucket's on-disk edge order
    within each node. Built once per bucket; swap-independent.
    """

    offsets: np.ndarray      # (partition_size + 1,)
    neighbors: np.ndarray

    def counts(self) -> np.ndarray:
        return self.offsets[1:] - self.offsets[:-1]


@dataclass
class _PartEntry:
    """Level 1: a resident key partition — its bucket sub-runs composed.

    The composition is virtual: nothing is re-copied on a swap. ``runs``
    lists the active bucket sub-runs in ascending other-partition order (the
    canonical bucket-major order) and ``cumdeg[b][k]`` is local node ``k``'s
    degree summed over runs before ``b`` — the per-node start of run ``b``'s
    segment inside the node's virtual concatenated neighbor run.
    """

    lo: int                  # first global node ID of the key partition
    runs: List[_BucketRun]
    cumdeg: np.ndarray       # (len(runs) + 1, partition_size)


def _sort_bucket(keys_local: np.ndarray, values: np.ndarray,
                 size: int) -> _BucketRun:
    # Keys are partition-local, so for partitions under 2^16 nodes they fit
    # uint16 and NumPy's stable sort becomes an O(n) radix sort — an order
    # of magnitude faster than the comparison sort the flat index pays on
    # full-range node IDs. Stability (= on-disk edge order within a node)
    # is preserved either way.
    if size <= np.iinfo(np.uint16).max:
        order = np.argsort(keys_local.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(keys_local, kind="stable")
    counts = np.bincount(keys_local, minlength=size)
    offsets = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return _BucketRun(offsets=offsets, neighbors=values[order])


class _PartView:
    """One direction ("out" = keyed by src, "in" = keyed by dst)."""

    def __init__(self, kind: str, num_nodes: int) -> None:
        self.kind = kind
        self.deg = np.zeros(num_nodes, dtype=np.int64)
        self.parts: Dict[int, _PartEntry] = {}


class PartitionedAdjacencyIndex(_OneHopSamplerBase):
    """Two-level dual-sorted index over the in-buffer edge buckets.

    Parameters
    ----------
    scheme:
        Node-to-partition assignment (contiguous ID ranges).
    bucket_source:
        ``bucket_source(i, j) -> (src, dst)`` returning the endpoint arrays
        of edge bucket ``(i, j)`` in their canonical (on-disk) order. Called
        lazily: only for buckets whose partitions are resident and whose
        sub-runs are not cached.
    partitions:
        Initially resident partitions (may be empty).
    directions:
        Same semantics as :class:`AdjacencyIndex`.
    cache_evicted:
        Keep sorted bucket sub-runs of evicted partitions in memory so
        re-admitting a partition costs no sorting (trades memory — up to the
        full 2x sorted edge list — for swap speed). Default off.

    The virtual neighbor order of a node is identical to what a flat
    :class:`AdjacencyIndex` built over the bucket-major in-buffer subgraph
    (buckets concatenated in ascending ``(i, j)`` order) would produce, so
    the two indexes are interchangeable sample-for-sample under a fixed RNG.
    """

    def __init__(self, scheme: PartitionScheme,
                 bucket_source: Callable[[int, int], Tuple[np.ndarray, np.ndarray]],
                 partitions: Iterable[int] = (),
                 directions: str = "both",
                 cache_evicted: bool = False) -> None:
        if directions not in ("out", "in", "both"):
            raise ValueError(f"directions must be out/in/both, got {directions!r}")
        self.scheme = scheme
        self.bucket_source = bucket_source
        self.directions = directions
        self.cache_evicted = cache_evicted
        self.num_nodes = scheme.num_nodes
        self._views: List[_PartView] = []
        if directions in ("out", "both"):
            self._views.append(_PartView("out", self.num_nodes))
        if directions in ("in", "both"):
            self._views.append(_PartView("in", self.num_nodes))
        self._total_deg = np.zeros(self.num_nodes, dtype=np.int64)
        # Bucket sub-run cache: (i, j) -> {"out": _BucketRun, "in": _BucketRun}
        self._buckets: Dict[Tuple[int, int], Dict[str, _BucketRun]] = {}
        self._resident: List[int] = []
        # Counters for the perf benchmark / tests.
        self.bucket_sorts = 0
        self.bucket_fetches = 0
        self.composes = 0
        parts = sorted(int(p) for p in partitions)
        if parts:
            self.update_partitions(parts, ())

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[int]:
        return list(self._resident)

    def _bounds(self, part: int) -> Tuple[int, int]:
        b = self.scheme.boundaries
        return int(b[part]), int(b[part + 1])

    def _build_bucket(self, i: int, j: int) -> Dict[str, _BucketRun]:
        src, dst = self.bucket_source(i, j)
        self.bucket_fetches += 1
        runs: Dict[str, _BucketRun] = {}
        if self.directions in ("out", "both"):
            lo, hi = self._bounds(i)
            runs["out"] = _sort_bucket(src - lo, dst, hi - lo)
            self.bucket_sorts += 1
        if self.directions in ("in", "both"):
            lo, hi = self._bounds(j)
            runs["in"] = _sort_bucket(dst - lo, src, hi - lo)
            self.bucket_sorts += 1
        return runs

    def _compose_partition(self, view: _PartView, part: int) -> None:
        """(Re)compose a key partition's active bucket runs — no data copy.

        Collects the partition's bucket sub-runs in canonical (ascending
        other-partition) order and rebuilds the small per-node cumulative
        degree table; the sorted neighbor arrays themselves are reused
        untouched, so a swap's cost is independent of the surviving
        partitions' edge counts.
        """
        lo, hi = self._bounds(part)
        size = hi - lo
        runs: List[_BucketRun] = []
        for other in self._resident:
            key = (part, other) if view.kind == "out" else (other, part)
            runs.append(self._buckets[key][view.kind])
        cumdeg = np.zeros((len(runs) + 1, size), dtype=np.int64)
        for b, r in enumerate(runs):
            np.add(cumdeg[b], r.counts(), out=cumdeg[b + 1])
        view.parts[part] = _PartEntry(lo=lo, runs=runs, cumdeg=cumdeg)
        view.deg[lo:hi] = cumdeg[-1]
        self.composes += 1

    # ------------------------------------------------------------------
    def update_partitions(self, added: Iterable[int], removed: Iterable[int]) -> None:
        """Apply a buffer-swap diff: sort only the *new* partitions' buckets.

        ``added`` partitions' buckets (against every resident partition) are
        fetched and sorted — unless cached from a previous residency; buckets
        of surviving partitions are reused as-is. Every resident partition's
        level-1 sub-index is then recomposed (a copy, not a sort).
        """
        added = sorted({int(p) for p in added})
        removed = sorted({int(p) for p in removed})
        resident = set(self._resident)
        for q in removed:
            if q not in resident:
                raise KeyError(f"partition {q} is not in the index")
        added = [q for q in added if q not in resident or q in removed]
        if not added and not removed:
            return
        new_resident = sorted((resident - set(removed)) | set(added))
        new_resident_set = set(new_resident)

        # Drop (or cache) the sub-runs of buckets leaving the buffer.
        if not self.cache_evicted:
            for (i, j) in list(self._buckets):
                if i not in new_resident_set or j not in new_resident_set:
                    del self._buckets[(i, j)]

        # Zero the degree ranges of evicted partitions.
        for view in self._views:
            for q in removed:
                lo, hi = self._bounds(q)
                view.deg[lo:hi] = 0
                view.parts.pop(q, None)

        # Fetch + sort only buckets not already held (new partitions' rows
        # and columns, minus cache hits).
        for i in new_resident:
            for j in new_resident:
                if (i, j) not in self._buckets:
                    self._buckets[(i, j)] = self._build_bucket(i, j)

        # Recompose every resident partition's level-1 view (bookkeeping
        # only; the sorted neighbor arrays are reused untouched).
        self._resident = new_resident
        for view in self._views:
            for part in new_resident:
                self._compose_partition(view, part)

        self._total_deg.fill(0)
        for view in self._views:
            np.add(self._total_deg, view.deg, out=self._total_deg)

    # ------------------------------------------------------------------
    def refresh_buckets(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Re-fetch + re-sort the given edge buckets; recompose their owners.

        The streaming ingest hook: when a live graph appends (or tombstones)
        edges in bucket ``(i, j)``, only that bucket's sub-runs are stale —
        the rest of the index is reused untouched, exactly like a buffer
        swap. Pairs whose sub-runs are not currently held (neither resident
        nor cached) cost nothing: they will be fetched fresh — and therefore
        delta-aware — whenever their partitions next enter the buffer.
        """
        changed = sorted({(int(i), int(j)) for i, j in pairs})
        resident = set(self._resident)
        touched_parts = set()
        for key in changed:
            if key not in self._buckets:
                continue
            del self._buckets[key]
            i, j = key
            if i in resident and j in resident:
                self._buckets[key] = self._build_bucket(i, j)
                if self.directions in ("out", "both"):
                    touched_parts.add(i)
                if self.directions in ("in", "both"):
                    touched_parts.add(j)
        if not touched_parts:
            return
        for view in self._views:
            for part in sorted(touched_parts):
                self._compose_partition(view, part)
        self._total_deg.fill(0)
        for view in self._views:
            np.add(self._total_deg, view.deg, out=self._total_deg)

    def extend_nodes(self, new_scheme: PartitionScheme) -> None:
        """Follow a node-table growth: new IDs joined the last partition.

        Grows the per-node degree arrays with zero-degree entries and, if
        the last partition is resident, re-sorts its buckets (their per-node
        offset tables are sized by the partition) and recomposes it. Only
        the streaming growth rule of :meth:`PartitionScheme.extended` is
        supported — interior boundaries must be unchanged.
        """
        old = self.scheme
        if new_scheme.num_partitions != old.num_partitions or not np.array_equal(
                new_scheme.boundaries[:-1], old.boundaries[:-1]):
            raise ValueError("extend_nodes supports only growth of the last "
                             "partition (PartitionScheme.extended)")
        extra = new_scheme.num_nodes - old.num_nodes
        if extra < 0:
            raise ValueError("node count cannot shrink")
        self.scheme = new_scheme
        if extra == 0:
            return
        self.num_nodes = new_scheme.num_nodes
        pad = np.zeros(extra, dtype=np.int64)
        for view in self._views:
            view.deg = np.concatenate([view.deg, pad])
        self._total_deg = np.concatenate([self._total_deg, pad])
        # Every held sub-run keyed by the last partition is stale (its
        # per-node offset table is sized by the old partition) — including
        # evicted-cache entries whose partitions are not resident right
        # now. refresh_buckets drops them all and rebuilds only the
        # resident ones; dropped cache entries are refetched on their next
        # admission, sized by the new bounds.
        last = old.num_partitions - 1
        p = old.num_partitions
        self.refresh_buckets([(last, q) for q in range(p)]
                             + [(q, last) for q in range(p)])

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes used by the resident sorted sub-runs (the 2x edge factor)."""
        return int(sum(r.offsets.nbytes + r.neighbors.nbytes
                       for v in self._views
                       for e in v.parts.values() for r in e.runs))

    def cache_bytes(self) -> int:
        """Bytes held by level-2 bucket sub-runs (including any evicted cache)."""
        return int(sum(r.offsets.nbytes + r.neighbors.nbytes
                       for runs in self._buckets.values() for r in runs.values()))

    def neighbors_of(self, node: int) -> np.ndarray:
        """All neighbors of one node (out-run then in-run)."""
        part = int(self.scheme.partition_of(np.array([node]))[0])
        segments = []
        for view in self._views:
            entry = view.parts.get(part)
            if entry is None:
                continue
            local = node - entry.lo
            for r in entry.runs:
                segments.append(r.neighbors[r.offsets[local] : r.offsets[local + 1]])
        return (np.concatenate(segments) if segments
                else np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    def _copy_full(self, nodes: np.ndarray, out_pos: np.ndarray, out: np.ndarray) -> None:
        node_part = self.scheme.partition_of(nodes)
        cursor = out_pos.astype(np.int64).copy()
        for view in self._views:
            for part, entry in view.parts.items():
                sel = np.nonzero(node_part == part)[0]
                if not len(sel):
                    continue
                local = nodes[sel] - entry.lo
                pos = cursor[sel]
                for r in entry.runs:        # canonical ascending bucket order
                    starts = r.offsets[local]
                    counts = r.offsets[local + 1] - starts
                    src_index = _run_gather_index(starts, counts)
                    dst_index = _run_gather_index(pos, counts)
                    out[dst_index] = r.neighbors[src_index]
                    pos = pos + counts
                cursor[sel] = pos

    def _positions_to_neighbors(self, nodes: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Map virtual positions (out-run then in-run, buckets in canonical
        order inside each run) to node IDs."""
        values = np.empty_like(positions)
        node_part = self.scheme.partition_of(nodes)
        base = np.zeros(len(nodes), dtype=np.int64)
        remaining = np.ones(positions.shape, dtype=bool)
        for view in self._views:
            vdeg = view.deg[nodes]
            local_pos = positions - base[:, None]
            in_view = remaining & (local_pos >= 0) & (local_pos < vdeg[:, None])
            if in_view.any():
                rows, cols = np.nonzero(in_view)
                vnodes = nodes[rows]
                vparts = node_part[rows]
                vpos = local_pos[rows, cols]
                flat = np.empty(len(rows), dtype=np.int64)
                for part, entry in view.parts.items():
                    m = np.nonzero(vparts == part)[0]
                    if not len(m):
                        continue
                    loc = vnodes[m] - entry.lo
                    pos = vpos[m]
                    # Locate each position's bucket via the cumulative
                    # degree table, then index into that bucket's sub-run.
                    done = np.zeros(len(m), dtype=bool)
                    for b, r in enumerate(entry.runs):
                        lo_d = entry.cumdeg[b, loc]
                        hi_d = entry.cumdeg[b + 1, loc]
                        hit = ~done & (pos >= lo_d) & (pos < hi_d)
                        if hit.any():
                            h = np.nonzero(hit)[0]
                            flat[m[h]] = r.neighbors[r.offsets[loc[h]]
                                                     + pos[h] - lo_d[h]]
                            done |= hit
                values[rows, cols] = flat
            remaining &= ~in_view
            base += vdeg
        if remaining.any():
            raise IndexError("neighbor position out of range")
        return values
