"""Dual-sorted adjacency index for one-hop neighbor sampling.

Section 4.1 of the paper: MariusGNN stores *two sorted versions of the
in-memory edge list* — one sorted by source node ID (for outgoing neighbors)
and one sorted by destination node ID (for incoming neighbors) — plus a
per-node offset array into each. :class:`AdjacencyIndex` is that structure.

Sampling ``f`` neighbors for a batch of nodes is fully vectorized, standing in
for the paper's multi-threaded CPU sampler: nodes whose degree is at most
``f`` copy their whole neighbor run; higher-degree nodes draw ``f`` random
positions. By default draws are with replacement (like DGL's
``replace=True`` mode — duplicates within a node's sample are legal and act as
sampling weights); exact without-replacement sampling is available via
``replace=False`` at the cost of a per-node loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .edge_list import Graph


@dataclass
class _SortedEdges:
    """One sorted view of the edge list with per-node offsets."""

    offsets: np.ndarray      # (num_nodes + 1,) start of each node's run
    neighbors: np.ndarray    # other endpoint of each edge in sorted order


def _build_sorted(keys: np.ndarray, values: np.ndarray, num_nodes: int) -> _SortedEdges:
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return _SortedEdges(offsets=offsets, neighbors=values[order])


def _run_gather_index(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices covering runs ``[starts[i], starts[i]+counts[i])``, concatenated."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_bases = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.arange(total, dtype=np.int64) + np.repeat(starts - run_bases, counts)


class AdjacencyIndex:
    """Dual-sorted edge list supporting vectorized one-hop sampling.

    Parameters
    ----------
    graph:
        The (sub)graph currently in memory.
    directions:
        ``"out"``, ``"in"``, or ``"both"`` — which neighbor direction(s) a
        one-hop sample draws from. The paper samples incoming and outgoing
        edges for GraphSage and incoming only for GAT (Section 7.1).
    """

    def __init__(self, graph: Graph, directions: str = "both") -> None:
        if directions not in ("out", "in", "both"):
            raise ValueError(f"directions must be out/in/both, got {directions!r}")
        self.graph = graph
        self.directions = directions
        self.num_nodes = graph.num_nodes
        self._views = []
        if directions in ("out", "both"):
            self._views.append(_build_sorted(graph.src, graph.dst, graph.num_nodes))
        if directions in ("in", "both"):
            self._views.append(_build_sorted(graph.dst, graph.src, graph.num_nodes))
        # Virtual concatenated neighbor array: per node, out-run then in-run.
        self._deg_per_view = [v.offsets[1:] - v.offsets[:-1] for v in self._views]
        self._total_deg = sum(self._deg_per_view)

    # ------------------------------------------------------------------
    def degrees(self, nodes: np.ndarray) -> np.ndarray:
        """Total sampleable degree of ``nodes`` under the configured directions."""
        return self._total_deg[np.asarray(nodes, dtype=np.int64)]

    def memory_bytes(self) -> int:
        """Bytes used by the sorted edge copies (the 2x edge factor in Section 6)."""
        return int(sum(v.offsets.nbytes + v.neighbors.nbytes for v in self._views))

    def neighbors_of(self, node: int) -> np.ndarray:
        """All neighbors of one node (out-run then in-run)."""
        parts = [v.neighbors[v.offsets[node] : v.offsets[node + 1]] for v in self._views]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def sample_one_hop(
        self,
        nodes: np.ndarray,
        fanout: int,
        rng: Optional[np.random.Generator] = None,
        replace: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample up to ``fanout`` neighbors for each node in ``nodes``.

        Returns ``(nbrs, offsets)``: the flat neighbor array and per-node start
        offsets — the paper's ``oneHopSample`` (Algorithm 1 line 4). A node
        with more than ``fanout`` neighbors gets exactly ``fanout`` draws; a
        node with fewer gets all of them. ``fanout <= 0`` means "all
        neighbors".
        """
        rng = rng or np.random.default_rng()
        nodes = np.asarray(nodes, dtype=np.int64)
        n = len(nodes)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

        deg = self._total_deg[nodes]
        take = deg if fanout <= 0 else np.minimum(deg, fanout)
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(take[:-1], out=offsets[1:])
        nbrs = np.empty(int(take.sum()), dtype=np.int64)

        full = take == deg  # nodes contributing their whole neighbor run
        if full.any():
            self._copy_full(nodes[full], offsets[full], nbrs)
        partial = ~full
        if partial.any():
            self._sample_partial(nodes[partial], offsets[partial], int(fanout),
                                 nbrs, rng, replace)
        return nbrs, offsets

    # ------------------------------------------------------------------
    def _copy_full(self, nodes: np.ndarray, out_pos: np.ndarray, out: np.ndarray) -> None:
        """Copy every neighbor of ``nodes`` into ``out`` at ``out_pos`` (run-major)."""
        cursor = out_pos.astype(np.int64).copy()
        for view, view_deg in zip(self._views, self._deg_per_view):
            starts = view.offsets[nodes]
            counts = view_deg[nodes]
            src_index = _run_gather_index(starts, counts)
            dst_index = _run_gather_index(cursor, counts)
            out[dst_index] = view.neighbors[src_index]
            cursor += counts

    def _sample_partial(self, nodes: np.ndarray, out_pos: np.ndarray, fanout: int,
                        out: np.ndarray, rng: np.random.Generator, replace: bool) -> None:
        """Sample exactly ``fanout`` positions for nodes with degree > fanout."""
        deg = self._total_deg[nodes]
        if replace:
            draws = np.floor(rng.random((len(nodes), fanout)) * deg[:, None]).astype(np.int64)
            np.minimum(draws, deg[:, None] - 1, out=draws)
        else:
            draws = np.empty((len(nodes), fanout), dtype=np.int64)
            for i, d in enumerate(deg):
                draws[i] = rng.choice(int(d), size=fanout, replace=False)
        values = self._positions_to_neighbors(nodes, draws)
        dest = out_pos[:, None] + np.arange(fanout, dtype=np.int64)[None, :]
        out[dest.ravel()] = values.ravel()

    def _positions_to_neighbors(self, nodes: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Map virtual neighbor positions (out-run then in-run) to node IDs."""
        values = np.empty_like(positions)
        base = np.zeros(len(nodes), dtype=np.int64)
        remaining = np.ones(positions.shape, dtype=bool)
        for view, view_deg in zip(self._views, self._deg_per_view):
            counts = view_deg[nodes]
            local = positions - base[:, None]
            in_view = remaining & (local < counts[:, None]) & (local >= 0)
            if in_view.any():
                rows, cols = np.nonzero(in_view)
                values[rows, cols] = view.neighbors[
                    view.offsets[nodes[rows]] + positions[rows, cols] - base[rows]
                ]
            remaining &= ~in_view
            base += counts
        if remaining.any():
            raise IndexError("neighbor position out of range")
        return values
