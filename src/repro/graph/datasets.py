"""Dataset registry: paper graph metadata (Table 1) plus runnable stand-ins.

Two kinds of objects live here:

* :class:`DatasetStats` — the *published* statistics of each graph the paper
  evaluates (nodes, edges, feature dim, storage overheads from Table 1).
  These feed the analytical performance/cost model that regenerates the
  paper's wall-clock tables.
* ``load_*`` functions — synthetic graphs that *run* in this environment.
  FB15k-237 is generated at its published scale (14,541 nodes / 272,115
  edges); the 100M-node graphs get structure-preserving scale models
  (matched degree exponent, train fraction, feature dim, relation count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .edge_list import EdgeSplit, Graph, split_edges
from .generators import citation_graph, power_law_graph

GB = 1024**3


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of a paper dataset (Table 1)."""

    name: str
    num_nodes: int
    num_edges: int
    feat_dim: int
    edges_gb: float
    feat_gb: float
    task: str  # "nc" (node classification) or "lp" (link prediction)
    train_fraction: float = 1.0  # fraction of nodes labeled (nc only)
    num_relations: int = 1

    @property
    def total_gb(self) -> float:
        return self.edges_gb + self.feat_gb


#: Table 1 of the paper, plus FB15k-237 (Section 7.5) and LiveJournal (7.4).
PAPER_DATASETS: Dict[str, DatasetStats] = {
    "papers100m": DatasetStats("papers100m", 111_000_000, 1_620_000_000, 128,
                               13.0, 57.0, "nc", train_fraction=0.011),
    "mag240m-cites": DatasetStats("mag240m-cites", 122_000_000, 1_300_000_000, 768,
                                  10.0, 375.0, "nc", train_fraction=0.009),
    "freebase86m": DatasetStats("freebase86m", 86_000_000, 338_000_000, 100,
                                4.0, 69.0, "lp", num_relations=14_824),
    "wikikg90mv2": DatasetStats("wikikg90mv2", 91_000_000, 601_000_000, 100,
                                7.0, 73.0, "lp", num_relations=1_387),
    "hyperlink2012": DatasetStats("hyperlink2012", 3_500_000_000, 128_000_000_000, 50,
                                  2048.0, 1433.6, "lp"),
    "facebook15": DatasetStats("facebook15", 1_400_000_000, 1_000_000_000_000, 100,
                               8192.0, 573.4, "lp"),
    "fb15k-237": DatasetStats("fb15k-237", 14_541, 272_115, 100,
                              272_115 * 24 / GB, 14_541 * 100 * 4 / GB, "lp",
                              num_relations=237),
    "livejournal": DatasetStats("livejournal", 4_800_000, 69_000_000, 0,
                                69_000_000 * 16 / GB, 0.0, "lp"),
}


def paper_stats(name: str) -> DatasetStats:
    key = name.lower()
    if key not in PAPER_DATASETS:
        raise KeyError(f"unknown paper dataset {name!r}; known: {sorted(PAPER_DATASETS)}")
    return PAPER_DATASETS[key]


# ---------------------------------------------------------------------------
# Runnable stand-ins
# ---------------------------------------------------------------------------

@dataclass
class LinkPredictionDataset:
    """A runnable link prediction dataset: graph + edge split + metadata."""

    graph: Graph
    split: EdgeSplit
    stats: DatasetStats
    embedding_dim: int = 50


@dataclass
class NodeClassificationDataset:
    """A runnable node classification dataset: graph + node splits."""

    graph: Graph
    train_nodes: np.ndarray
    valid_nodes: np.ndarray
    test_nodes: np.ndarray
    stats: DatasetStats

    @property
    def num_classes(self) -> int:
        return int(self.graph.node_labels.max()) + 1


def training_graph(dataset: "LinkPredictionDataset") -> Graph:
    """The training split as a :class:`Graph` — what the disk stores hold
    and what serving/streaming rebuild for encode-on-read. The single
    authority for the rel-column convention (3-column splits carry the
    relation in the middle column)."""
    edges = dataset.split.train
    return Graph(num_nodes=dataset.graph.num_nodes, src=edges[:, 0],
                 dst=edges[:, -1],
                 rel=edges[:, 1] if edges.shape[1] == 3 else None,
                 num_relations=dataset.graph.num_relations)


def load_fb15k237(scale: float = 1.0, seed: int = 0) -> LinkPredictionDataset:
    """FB15k-237 stand-in at the published scale (14,541 nodes / 272k edges).

    Real FB15k-237 is not downloadable offline; the stand-in matches node,
    edge and relation counts with a power-law multirelational topology, which
    is what drives the partition-policy effects the paper measures on it.
    ``scale`` < 1 shrinks the graph proportionally for fast tests.
    """
    stats = paper_stats("fb15k-237")
    n = max(64, int(stats.num_nodes * scale))
    e = max(256, int(stats.num_edges * scale))
    r = max(2, int(stats.num_relations * min(1.0, scale * 4)))
    graph = power_law_graph(n, e, exponent=2.1, num_relations=r, seed=seed)
    graph.name = "fb15k-237" if scale == 1.0 else f"fb15k-237@{scale:g}"
    split = split_edges(graph, valid_fraction=0.03, test_fraction=0.07,
                        rng=np.random.default_rng(seed + 1))
    return LinkPredictionDataset(graph=graph, split=split, stats=stats, embedding_dim=50)


def load_freebase86m_mini(num_nodes: int = 20_000, num_edges: int = 120_000,
                          seed: int = 0) -> LinkPredictionDataset:
    """Scale model of Freebase86M: denser than FB15k-237, many relations."""
    stats = paper_stats("freebase86m")
    graph = power_law_graph(num_nodes, num_edges, exponent=2.2,
                            num_relations=200, seed=seed)
    graph.name = "freebase86m-mini"
    split = split_edges(graph, valid_fraction=0.02, test_fraction=0.05,
                        rng=np.random.default_rng(seed + 1))
    return LinkPredictionDataset(graph=graph, split=split, stats=stats, embedding_dim=50)


def load_wikikg90m_mini(num_nodes: int = 24_000, num_edges: int = 150_000,
                        seed: int = 0) -> LinkPredictionDataset:
    """Scale model of WikiKG90Mv2 (sparser, fewer relations than Freebase)."""
    stats = paper_stats("wikikg90mv2")
    graph = power_law_graph(num_nodes, num_edges, exponent=2.4,
                            num_relations=100, seed=seed)
    graph.name = "wikikg90m-mini"
    split = split_edges(graph, valid_fraction=0.02, test_fraction=0.05,
                        rng=np.random.default_rng(seed + 1))
    return LinkPredictionDataset(graph=graph, split=split, stats=stats, embedding_dim=50)


def load_papers100m_mini(num_nodes: int = 20_000, num_edges: int = 160_000,
                         feat_dim: int = 64, num_classes: int = 32,
                         seed: int = 0) -> NodeClassificationDataset:
    """Scale model of OGBN-Papers100M: 1.1% training nodes, 128-dim features
    (scaled to ``feat_dim``), power-law citations."""
    stats = paper_stats("papers100m")
    graph, train, valid, test = citation_graph(
        num_nodes, num_edges, feat_dim=feat_dim, num_classes=num_classes,
        train_fraction=stats.train_fraction, seed=seed)
    graph.name = "papers100m-mini"
    return NodeClassificationDataset(graph=graph, train_nodes=train,
                                     valid_nodes=valid, test_nodes=test, stats=stats)


def load_mag240m_mini(num_nodes: int = 24_000, num_edges: int = 130_000,
                      feat_dim: int = 96, num_classes: int = 32,
                      seed: int = 0) -> NodeClassificationDataset:
    """Scale model of Mag240M-Cites (paper nodes + citation edges only)."""
    stats = paper_stats("mag240m-cites")
    graph, train, valid, test = citation_graph(
        num_nodes, num_edges, feat_dim=feat_dim, num_classes=num_classes,
        train_fraction=stats.train_fraction, seed=seed)
    graph.name = "mag240m-mini"
    return NodeClassificationDataset(graph=graph, train_nodes=train,
                                     valid_nodes=valid, test_nodes=test, stats=stats)


def load_livejournal_mini(num_nodes: int = 50_000, num_edges: int = 700_000,
                          seed: int = 0) -> LinkPredictionDataset:
    """Scale model of LiveJournal (Table 7's GPU-sampling benchmark graph)."""
    stats = paper_stats("livejournal")
    graph = power_law_graph(num_nodes, num_edges, exponent=2.3, seed=seed)
    graph.name = "livejournal-mini"
    split = split_edges(graph, rng=np.random.default_rng(seed + 1))
    return LinkPredictionDataset(graph=graph, split=split, stats=stats, embedding_dim=50)
