"""Node partitioning and edge buckets (paper Section 3).

The node ID space is split into ``p`` *physical partitions* of (near-)equal
size; edge bucket ``(i, j)`` holds every edge with source in partition ``i``
and destination in partition ``j``. Base representations are stored
sequentially per partition so a partition is one contiguous disk read, and
each edge bucket is stored sequentially so it is also one contiguous read.

COMET adds a second level: physical partitions are randomly grouped into
``l`` *logical partitions* at the start of every epoch, without moving any
data — only an in-memory mapping is kept (:class:`LogicalGrouping`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .edge_list import Graph


@dataclass(frozen=True)
class PartitionScheme:
    """Assignment of node IDs to ``p`` physical partitions.

    ``boundaries[i]`` is the first node ID of partition ``i``;
    partition ``i`` covers ``[boundaries[i], boundaries[i+1])``. Nodes are
    assigned by contiguous ID range — datasets shuffle node IDs at
    construction when random partitioning is wanted, and the node
    classification policy instead places training nodes in the first
    partitions (Section 5.2).
    """

    num_nodes: int
    num_partitions: int
    boundaries: np.ndarray  # (p + 1,)

    @staticmethod
    def uniform(num_nodes: int, num_partitions: int) -> "PartitionScheme":
        """Equal-size contiguous partitions (last may be smaller)."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if num_partitions > num_nodes:
            raise ValueError(
                f"more partitions ({num_partitions}) than nodes ({num_nodes})"
            )
        bounds = np.linspace(0, num_nodes, num_partitions + 1).round().astype(np.int64)
        return PartitionScheme(num_nodes, num_partitions, bounds)

    def partition_of(self, nodes: np.ndarray) -> np.ndarray:
        """Physical partition ID of each node."""
        return np.searchsorted(self.boundaries, np.asarray(nodes), side="right") - 1

    def partition_size(self, part: int) -> int:
        return int(self.boundaries[part + 1] - self.boundaries[part])

    def partition_nodes(self, part: int) -> np.ndarray:
        return np.arange(self.boundaries[part], self.boundaries[part + 1], dtype=np.int64)

    def sizes(self) -> np.ndarray:
        return np.diff(self.boundaries)

    def extended(self, extra_nodes: int) -> "PartitionScheme":
        """The scheme after appending ``extra_nodes`` new node IDs.

        Streaming growth rule: new nodes always join the *last* partition
        (its ID range is extended; every other boundary is untouched), so
        the assignment of every pre-existing node — and therefore every
        edge's bucket — is stable under growth. An offline rebuild of a
        streamed graph must use this same rule (not a fresh ``uniform``
        split, which would re-balance the boundaries) for the streamed and
        rebuilt structures to be comparable.
        """
        if extra_nodes < 0:
            raise ValueError("extra_nodes must be non-negative")
        if extra_nodes == 0:
            return self
        bounds = self.boundaries.copy()
        bounds[-1] += extra_nodes
        return PartitionScheme(self.num_nodes + extra_nodes,
                               self.num_partitions, bounds)


class EdgeBuckets:
    """Edges grouped by (source partition, destination partition).

    Edges within each bucket are stored contiguously (sorted bucket-major), as
    on disk in MariusGNN; :meth:`bucket_edges` is a contiguous slice.
    """

    def __init__(self, graph: Graph, scheme: PartitionScheme) -> None:
        self.scheme = scheme
        self.num_relations = graph.num_relations
        p = scheme.num_partitions
        src_part = scheme.partition_of(graph.src)
        dst_part = scheme.partition_of(graph.dst)
        bucket_id = src_part * p + dst_part
        order = np.argsort(bucket_id, kind="stable")
        self.src = graph.src[order]
        self.dst = graph.dst[order]
        self.rel = graph.rel[order] if graph.rel is not None else None
        counts = np.bincount(bucket_id, minlength=p * p)
        self.bucket_offsets = np.zeros(p * p + 1, dtype=np.int64)
        np.cumsum(counts, out=self.bucket_offsets[1:])

    @property
    def num_partitions(self) -> int:
        return self.scheme.num_partitions

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def bucket_slice(self, i: int, j: int) -> slice:
        p = self.num_partitions
        b = i * p + j
        return slice(int(self.bucket_offsets[b]), int(self.bucket_offsets[b + 1]))

    def bucket_size(self, i: int, j: int) -> int:
        s = self.bucket_slice(i, j)
        return s.stop - s.start

    def bucket_endpoints(self, i: int, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket ``(i, j)``'s ``(src, dst)`` arrays as contiguous slices —
        the in-memory bucket source for a partition-aware adjacency index."""
        s = self.bucket_slice(i, j)
        return self.src[s], self.dst[s]

    def bucket_edges(self, i: int, j: int) -> np.ndarray:
        """Edges of bucket (i, j) as an (n, 2) or (n, 3) array."""
        s = self.bucket_slice(i, j)
        if self.rel is None:
            return np.stack([self.src[s], self.dst[s]], axis=1)
        return np.stack([self.src[s], self.rel[s], self.dst[s]], axis=1)

    def buckets_edges(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Concatenate the edges of several buckets."""
        parts = [self.bucket_edges(i, j) for i, j in pairs]
        width = 2 if self.rel is None else 3
        if not parts:
            return np.empty((0, width), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def subgraph_for_partitions(self, partitions: Sequence[int]) -> Graph:
        """In-memory subgraph induced by all pairwise buckets of ``partitions``.

        This is the graph visible to the sampler when those partitions are in
        the buffer (the c^2 in-memory edge buckets of Section 3).
        """
        pairs = [(i, j) for i in partitions for j in partitions]
        edges = self.buckets_edges(pairs)
        return Graph(
            num_nodes=self.scheme.num_nodes,
            src=edges[:, 0],
            dst=edges[:, -1],
            rel=edges[:, 1] if edges.shape[1] == 3 else None,
            num_relations=self.num_relations,
        )

    def bucket_bytes(self, i: int, j: int) -> int:
        width = 2 if self.rel is None else 3
        return self.bucket_size(i, j) * width * 8


@dataclass
class LogicalGrouping:
    """Random grouping of physical partitions into logical partitions.

    Built once per epoch (paper Section 3): ``members[g]`` lists the physical
    partitions of logical partition ``g``. Grouping moves no data.
    """

    members: List[np.ndarray]

    @staticmethod
    def random(num_physical: int, num_logical: int,
               rng: Optional[np.random.Generator] = None) -> "LogicalGrouping":
        if num_logical <= 0 or num_logical > num_physical:
            raise ValueError(
                f"need 1 <= l <= p, got l={num_logical}, p={num_physical}"
            )
        if num_physical % num_logical != 0:
            raise ValueError(
                f"p must be divisible by l for equal logical partitions "
                f"(p={num_physical}, l={num_logical})"
            )
        rng = rng or np.random.default_rng()
        perm = rng.permutation(num_physical)
        group_size = num_physical // num_logical
        members = [np.sort(perm[g * group_size : (g + 1) * group_size])
                   for g in range(num_logical)]
        return LogicalGrouping(members=members)

    @staticmethod
    def identity(num_physical: int) -> "LogicalGrouping":
        """One physical partition per logical partition (BETA's view)."""
        return LogicalGrouping(members=[np.array([i], dtype=np.int64)
                                        for i in range(num_physical)])

    @property
    def num_logical(self) -> int:
        return len(self.members)

    @property
    def group_size(self) -> int:
        return len(self.members[0])

    def physical_of(self, logical_ids: Sequence[int]) -> List[int]:
        """Flatten logical partition IDs to their physical members."""
        out: List[int] = []
        for g in logical_ids:
            out.extend(int(x) for x in self.members[g])
        return out

    def logical_of_physical(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for g, phys in enumerate(self.members):
            for p in phys:
                mapping[int(p)] = g
        return mapping
