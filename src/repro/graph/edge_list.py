"""Graph container: an edge list with optional relation types and features.

MariusGNN represents a graph as an edge list (Section 3). :class:`Graph` is
the in-memory form used by samplers and trainers; the disk-backed partitioned
form lives in :mod:`repro.storage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Graph:
    """A directed (multi-)graph stored as an edge list.

    Attributes
    ----------
    num_nodes:
        Number of nodes; node IDs are dense integers ``[0, num_nodes)``.
    src, dst:
        Parallel int64 arrays of edge endpoints.
    rel:
        Optional parallel int64 array of relation/edge types (knowledge
        graphs); ``None`` for homogeneous graphs.
    num_relations:
        Count of distinct relation types (1 when ``rel is None``).
    node_features:
        Optional fixed base representations, shape ``(num_nodes, feat_dim)``.
    node_labels:
        Optional integer class labels for node classification; ``-1`` marks
        unlabeled nodes.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    rel: Optional[np.ndarray] = None
    num_relations: int = 1
    node_features: Optional[np.ndarray] = None
    node_labels: Optional[np.ndarray] = None
    name: str = "graph"

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same shape")
        if self.rel is not None:
            self.rel = np.asarray(self.rel, dtype=np.int64)
            if self.rel.shape != self.src.shape:
                raise ValueError("rel must align with src/dst")
            if len(self.rel) and self.num_relations <= int(self.rel.max()):
                self.num_relations = int(self.rel.max()) + 1
        if len(self.src):
            if int(self.src.max()) >= self.num_nodes or int(self.dst.max()) >= self.num_nodes:
                raise ValueError("edge endpoint exceeds num_nodes")
            if int(self.src.min()) < 0 or int(self.dst.min()) < 0:
                raise ValueError("negative node id in edge list")

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def edges(self) -> np.ndarray:
        """Return edges as an ``(E, 2)`` or ``(E, 3)`` array (src[, rel], dst)."""
        if self.rel is None:
            return np.stack([self.src, self.dst], axis=1)
        return np.stack([self.src, self.rel, self.dst], axis=1)

    def subgraph_edges(self, node_mask: np.ndarray) -> "Graph":
        """Edges whose *both* endpoints satisfy ``node_mask`` (IDs unchanged).

        This is how the storage layer exposes the in-buffer subgraph: node IDs
        stay global, only the edge set shrinks (Section 3: sampling is
        performed only over graph nodes and edges in main memory).
        """
        keep = node_mask[self.src] & node_mask[self.dst]
        return Graph(
            num_nodes=self.num_nodes,
            src=self.src[keep],
            dst=self.dst[keep],
            rel=self.rel[keep] if self.rel is not None else None,
            num_relations=self.num_relations,
            node_features=self.node_features,
            node_labels=self.node_labels,
            name=f"{self.name}-sub",
        )

    def degree_out(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_nodes)

    def degree_in(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_nodes)

    def memory_bytes(self, feat_dim: Optional[int] = None) -> dict:
        """Storage accounting in bytes, mirroring the paper's Table 1 columns."""
        if feat_dim is None:
            feat_dim = self.node_features.shape[1] if self.node_features is not None else 0
        bytes_per_edge = 8 * (3 if self.rel is not None else 2)
        edges = self.num_edges * bytes_per_edge
        feats = self.num_nodes * feat_dim * 4
        return {"edges": edges, "features": feats, "total": edges + feats}

    def with_reversed_edges(self) -> "Graph":
        """Union of the graph with its reverse (for undirected treatment)."""
        rel = None
        if self.rel is not None:
            rel = np.concatenate([self.rel, self.rel])
        return Graph(
            num_nodes=self.num_nodes,
            src=np.concatenate([self.src, self.dst]),
            dst=np.concatenate([self.dst, self.src]),
            rel=rel,
            num_relations=self.num_relations,
            node_features=self.node_features,
            node_labels=self.node_labels,
            name=f"{self.name}-sym",
        )


@dataclass
class EdgeSplit:
    """Train/valid/test edge split for link prediction."""

    train: np.ndarray  # (E, 2) or (E, 3) arrays, columns (src[, rel], dst)
    valid: np.ndarray
    test: np.ndarray

    @property
    def has_relations(self) -> bool:
        return self.train.shape[1] == 3


def split_edges(graph: Graph, valid_fraction: float = 0.05, test_fraction: float = 0.05,
                rng: Optional[np.random.Generator] = None) -> EdgeSplit:
    """Randomly split a graph's edges into train/valid/test sets."""
    rng = rng or np.random.default_rng(0)
    edges = graph.edges()
    perm = rng.permutation(len(edges))
    n_valid = int(len(edges) * valid_fraction)
    n_test = int(len(edges) * test_fraction)
    valid_idx = perm[:n_valid]
    test_idx = perm[n_valid : n_valid + n_test]
    train_idx = perm[n_valid + n_test :]
    return EdgeSplit(train=edges[train_idx], valid=edges[valid_idx], test=edges[test_idx])
