"""Graph preprocessing utilities: the dataset-ingestion path of MariusGNN.

The original system's preprocessing converts raw edge files into its on-disk
layout: dense node/relation IDs, shuffled node order (so contiguous
partitions act as random partitions), deduplicated edges. These helpers
provide the same pipeline for external data plus TSV import/export.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .edge_list import Graph


def densify_ids(src: np.ndarray, dst: np.ndarray,
                rel: Optional[np.ndarray] = None
                ) -> Tuple[Graph, np.ndarray, Optional[np.ndarray]]:
    """Map arbitrary integer IDs to dense ``[0, n)`` IDs.

    Returns ``(graph, node_id_map, rel_id_map)`` where ``node_id_map[i]`` is
    the original ID of dense node ``i`` (and likewise for relations).
    """
    nodes = np.unique(np.concatenate([src, dst]))
    lookup = {int(v): i for i, v in enumerate(nodes)}
    new_src = np.fromiter((lookup[int(v)] for v in src), dtype=np.int64,
                          count=len(src))
    new_dst = np.fromiter((lookup[int(v)] for v in dst), dtype=np.int64,
                          count=len(dst))
    rel_map = None
    new_rel = None
    if rel is not None:
        rel_map = np.unique(rel)
        rel_lookup = {int(v): i for i, v in enumerate(rel_map)}
        new_rel = np.fromiter((rel_lookup[int(v)] for v in rel), dtype=np.int64,
                              count=len(rel))
    graph = Graph(num_nodes=len(nodes), src=new_src, dst=new_dst, rel=new_rel)
    return graph, nodes, rel_map


def shuffle_node_ids(graph: Graph, seed: int = 0) -> Tuple[Graph, np.ndarray]:
    """Randomly permute node IDs (contiguous partitions become random ones).

    Returns ``(new_graph, old_to_new)``. Features/labels are permuted along.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_nodes)      # old id -> new id
    new_graph = Graph(
        num_nodes=graph.num_nodes,
        src=perm[graph.src],
        dst=perm[graph.dst],
        rel=graph.rel,
        num_relations=graph.num_relations,
        node_features=(None if graph.node_features is None
                       else graph.node_features[np.argsort(perm)]),
        node_labels=(None if graph.node_labels is None
                     else graph.node_labels[np.argsort(perm)]),
        name=f"{graph.name}-shuffled",
    )
    return new_graph, perm


def deduplicate_edges(graph: Graph) -> Graph:
    """Drop duplicate (src[, rel], dst) edges, keeping the first occurrence."""
    edges = graph.edges()
    _, keep = np.unique(edges, axis=0, return_index=True)
    keep = np.sort(keep)
    return Graph(
        num_nodes=graph.num_nodes,
        src=graph.src[keep],
        dst=graph.dst[keep],
        rel=graph.rel[keep] if graph.rel is not None else None,
        num_relations=graph.num_relations,
        node_features=graph.node_features,
        node_labels=graph.node_labels,
        name=f"{graph.name}-dedup",
    )


def degree_order(graph: Graph, descending: bool = True) -> Tuple[Graph, np.ndarray]:
    """Renumber nodes by total degree (hot nodes first).

    Useful with the node-cache idea: high-degree nodes land in the first
    partitions, so pinning those partitions keeps the hottest base
    representations resident. Returns ``(new_graph, old_to_new)``.
    """
    degree = graph.degree_in() + graph.degree_out()
    order = np.argsort(-degree if descending else degree, kind="stable")
    old_to_new = np.empty(graph.num_nodes, dtype=np.int64)
    old_to_new[order] = np.arange(graph.num_nodes)
    new_graph = Graph(
        num_nodes=graph.num_nodes,
        src=old_to_new[graph.src],
        dst=old_to_new[graph.dst],
        rel=graph.rel,
        num_relations=graph.num_relations,
        node_features=(None if graph.node_features is None
                       else graph.node_features[order]),
        node_labels=(None if graph.node_labels is None
                     else graph.node_labels[order]),
        name=f"{graph.name}-degsorted",
    )
    return new_graph, old_to_new


def export_tsv(graph: Graph, path: Path) -> Path:
    """Write the edge list as TSV: ``src[\\trel]\\tdst`` per line."""
    path = Path(path)
    edges = graph.edges()
    np.savetxt(path, edges, fmt="%d", delimiter="\t")
    return path


def import_tsv(path: Path, has_relations: Optional[bool] = None) -> Graph:
    """Read an edge-list TSV (2 or 3 integer columns) into a dense Graph."""
    raw = np.loadtxt(Path(path), dtype=np.int64, delimiter="\t", ndmin=2)
    if raw.shape[1] not in (2, 3):
        raise ValueError(f"expected 2 or 3 columns, got {raw.shape[1]}")
    if has_relations is None:
        has_relations = raw.shape[1] == 3
    if has_relations and raw.shape[1] != 3:
        raise ValueError("has_relations=True needs a 3-column file")
    rel = raw[:, 1] if has_relations else None
    graph, _, _ = densify_ids(raw[:, 0], raw[:, -1], rel)
    return graph
