"""Analytical epoch-time and cost model for the paper's wall-clock tables.

Combines (a) operation counts measured from this repository's real samplers
(:mod:`repro.sim.workload`), (b) system throughput constants calibrated from
the paper's microbenchmarks (:mod:`repro.sim.profiles`), and (c) the paper's
AWS instances, to predict per-epoch runtime and monetary cost for each
(system, dataset, task) cell of Tables 3-5 and the stress test of §7.3.

The pipeline structure mirrors Figure 2: per-batch time is the *bottleneck*
of {CPU sampling, CPU<->GPU transfer, GPU compute} because MariusGNN (and the
baselines' data loaders) overlap these stages; disk IO overlaps training via
prefetching with the residual exposed when IO outweighs compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..graph.datasets import DatasetStats
from .profiles import (InstanceSpec, SystemProfile, MARIUS_GPU_SAMPLE_EDGE_NS,
                       MARIUS_GPU_SAMPLE_LAUNCH_S, NEXTDOOR_GPU_EDGE_NS,
                       NEXTDOOR_LAUNCH_S)
from .workload import BatchWorkload


@dataclass
class EpochEstimate:
    """Predicted epoch breakdown for one system/dataset/instance cell."""

    system: str
    dataset: str
    instance: str
    num_gpus: int
    num_batches: int
    sample_seconds: float
    transfer_seconds: float
    compute_seconds: float
    io_seconds: float
    epoch_seconds: float
    cost_per_epoch: float

    @property
    def epoch_minutes(self) -> float:
        return self.epoch_seconds / 60.0

    def row(self) -> str:
        return (f"{self.system:<12} {self.dataset:<14} {self.instance:<12} "
                f"{self.num_gpus}xGPU  epoch={self.epoch_minutes:8.2f} min  "
                f"cost=${self.cost_per_epoch:7.2f}")


def estimate_epoch(
    system: SystemProfile,
    stats: DatasetStats,
    workload: BatchWorkload,
    flops_per_batch: float,
    instance: InstanceSpec,
    num_examples: int,
    embedding_dim: int,
    num_gpus: int = 1,
    learnable_embeddings: bool = True,
    io_read_bytes: float = 0.0,
    io_write_bytes: float = 0.0,
    io_balanced: bool = True,
    dataset_label: Optional[str] = None,
    is_link_prediction: bool = False,
) -> EpochEstimate:
    """Predict one training epoch.

    ``io_*_bytes`` are per-epoch disk traffic (zero for in-memory systems);
    ``io_balanced`` says whether the policy spreads IO across the epoch
    (COMET) or front-loads examples leaving tail IO exposed (BETA-like).
    """
    num_batches = max(1, math.ceil(num_examples / workload.batch_size))

    sample_b = system.sampling_seconds(workload.edges_per_batch,
                                       workload.dedup_nodes_per_batch,
                                       instance.num_cpus)
    if is_link_prediction:
        # Link prediction batches pay the loader/negative-construction cost
        # (baselines build per-edge subgraphs; Fig 7's per-batch latencies).
        sample_b += system.lp_loader_overhead_s
    bytes_up = workload.nodes_per_batch * embedding_dim * 4 + workload.edges_per_batch * 8
    bytes_down = (workload.nodes_per_batch * embedding_dim * 4
                  if learnable_embeddings else 0.0)
    transfer_b = system.transfer_seconds(bytes_up + bytes_down)
    compute_b = system.gpu_seconds(workload.edges_per_batch, flops_per_batch)

    sample_total = sample_b * num_batches
    transfer_total = transfer_b * num_batches
    compute_total = compute_b * num_batches

    # Multi-GPU data parallelism: the paper *measures* end-to-end sub-linear
    # speedups (DGL 4-GPU = 1.4x, 8-GPU = 2.2x; PyG 4-GPU = 1.1x) and we apply
    # them as such — the shared CPU sampler is why they are so far below linear.
    speedup = system.speedup(num_gpus)
    train_total = max(sample_total, transfer_total, compute_total) / speedup

    io_time = (io_read_bytes + io_write_bytes) / (instance.disk_gbps * 1e9)
    if io_time > 0:
        if io_balanced:
            epoch_s = max(train_total, io_time) + min(train_total, io_time) * 0.02
        else:
            # Front-loaded schedules expose IO once compute runs dry.
            overlap = min(train_total * 0.5, io_time)
            epoch_s = train_total + io_time - overlap
    else:
        epoch_s = train_total

    return EpochEstimate(
        system=system.name,
        dataset=dataset_label or stats.name,
        instance=instance.name,
        num_gpus=num_gpus,
        num_batches=num_batches,
        sample_seconds=sample_total,
        transfer_seconds=transfer_total,
        compute_seconds=compute_total / speedup,
        io_seconds=io_time,
        epoch_seconds=epoch_s,
        cost_per_epoch=epoch_s * instance.price_per_second,
    )


# ---------------------------------------------------------------------------
# Disk IO volume models (feed io_read/write_bytes above)
# ---------------------------------------------------------------------------

def link_prediction_disk_io(stats: DatasetStats, embedding_dim: int,
                            partition_loads: int, num_partitions: int,
                            state_factor: float = 2.0) -> float:
    """Per-epoch disk reads for COMET/BETA link prediction.

    Each partition load reads embeddings (+ optimizer state); every edge
    bucket is read once; evicted dirty partitions are written back
    (symmetric to reads, folded into the same total).
    """
    node_bytes = stats.num_nodes * embedding_dim * 4 * state_factor
    partition_bytes = node_bytes / num_partitions
    edge_bytes = stats.num_edges * (24 if stats.num_relations > 1 else 16)
    reads = partition_loads * partition_bytes + edge_bytes
    writes = partition_loads * partition_bytes  # write-back of dirty partitions
    return reads + writes


def node_classification_disk_io(stats: DatasetStats, feat_dim: int,
                                buffer_capacity: int, num_partitions: int) -> float:
    """Per-epoch reads for the training-node cache policy: one buffer fill.

    Features are read-only (no write-back, no optimizer state); edges of the
    resident buckets are read once per epoch.
    """
    node_bytes = stats.num_nodes * feat_dim * 4
    partition_bytes = node_bytes / num_partitions
    edge_fraction = (buffer_capacity / num_partitions) ** 2
    edge_bytes = stats.num_edges * 16 * edge_fraction
    return buffer_capacity * partition_bytes + edge_bytes


# ---------------------------------------------------------------------------
# GPU sampling models (Table 7: MariusGNN vs NextDoor)
# ---------------------------------------------------------------------------

def nextdoor_gpu_sampling_seconds(edges_per_layer: Sequence[float]) -> float:
    """NextDoor: optimized transit-parallel kernels, layerwise semantics.

    Per-layer cost is a small launch overhead plus a fast per-edge term; the
    edge counts grow multiplicatively with depth because every layer
    re-samples its whole frontier.
    """
    return sum(NEXTDOOR_LAUNCH_S + e * NEXTDOOR_GPU_EDGE_NS * 1e-9
               for e in edges_per_layer)


def mariusgnn_gpu_sampling_seconds(edges_per_layer: Sequence[float]) -> float:
    """MariusGNN GPU sampling: DENSE via default PyTorch ops (Section 7.4).

    Higher per-hop overhead and per-edge cost than NextDoor's fused kernels,
    but edge counts stay near-linear in depth thanks to one-hop reuse.
    """
    return sum(MARIUS_GPU_SAMPLE_LAUNCH_S + e * MARIUS_GPU_SAMPLE_EDGE_NS * 1e-9
               for e in edges_per_layer)


# ---------------------------------------------------------------------------
# Extreme-scale stress test (Section 7.3)
# ---------------------------------------------------------------------------

@dataclass
class HyperlinkEstimate:
    edges_per_second: float
    epoch_seconds: float
    epoch_days: float
    cost_per_epoch: float


def hyperlink_stress_estimate(system: SystemProfile, instance: InstanceSpec,
                              stats: DatasetStats, workload: BatchWorkload,
                              flops_per_batch: float, embedding_dim: int,
                              partition_loads: int, num_partitions: int) -> HyperlinkEstimate:
    """Throughput/cost for the 3.5B-node hyperlink graph on one P3.2xLarge."""
    est = estimate_epoch(
        system, stats, workload, flops_per_batch, instance,
        num_examples=stats.num_edges, embedding_dim=embedding_dim,
        io_read_bytes=link_prediction_disk_io(stats, embedding_dim,
                                              partition_loads, num_partitions),
        io_balanced=True,
    )
    eps = stats.num_edges / est.epoch_seconds
    return HyperlinkEstimate(
        edges_per_second=eps,
        epoch_seconds=est.epoch_seconds,
        epoch_days=est.epoch_seconds / 86400.0,
        cost_per_epoch=est.cost_per_epoch,
    )
