"""End-to-end table builders: one function per paper table (3, 4, 5, §7.3).

Each builder measures workloads with the real samplers on scale-model graphs,
chooses instances by the paper's rules (cheapest instance whose RAM fits the
graph; P3.2xLarge for disk mode), runs the analytical model, and returns rows
directly comparable to the paper's tables. Benchmarks print these next to the
published values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.datasets import (DatasetStats, load_fb15k237, load_freebase86m_mini,
                              load_livejournal_mini, load_mag240m_mini,
                              load_papers100m_mini, load_wikikg90m_mini,
                              paper_stats)
from ..policies.autotune import autotune_from_dataset
from .perf_model import (EpochEstimate, estimate_epoch, link_prediction_disk_io,
                         node_classification_disk_io)
from .profiles import (DGL, INSTANCES, MARIUSGNN, P3_2XLARGE, PYG,
                       SystemProfile, smallest_instance_fitting)
from .workload import (BatchWorkload, gat_flops, gnn_flops,
                       measure_dense_workload, measure_layerwise_workload)


@dataclass
class TableRow:
    """One system x dataset cell: predicted epoch minutes + cost, and the
    measured-accuracy slot filled by the live training benches."""

    system: str
    dataset: str
    epoch_minutes: float
    cost_per_epoch: float
    instance: str
    num_gpus: int

    def __str__(self) -> str:
        return (f"{self.system:<12} {self.dataset:<12} {self.instance:<12} "
                f"{self.num_gpus} GPU(s)  {self.epoch_minutes:8.2f} min/epoch  "
                f"${self.cost_per_epoch:7.2f}/epoch")


# Scale-model loaders per paper dataset (for workload measurement).
_SCALE_MODELS = {
    "papers100m": lambda: load_papers100m_mini(num_nodes=12000, num_edges=120000).graph,
    "mag240m-cites": lambda: load_mag240m_mini(num_nodes=12000, num_edges=90000).graph,
    "freebase86m": lambda: load_freebase86m_mini(num_nodes=12000, num_edges=70000).graph,
    "wikikg90mv2": lambda: load_wikikg90m_mini(num_nodes=12000, num_edges=80000).graph,
    "hyperlink2012": lambda: load_wikikg90m_mini(num_nodes=12000, num_edges=250000).graph,
    "livejournal": lambda: load_livejournal_mini(num_nodes=12000, num_edges=180000).graph,
}

_workload_cache: Dict[tuple, object] = {}
_graph_cache: Dict[str, object] = {}


def _scale_graph(dataset: str):
    if dataset not in _graph_cache:
        _graph_cache[dataset] = _SCALE_MODELS[dataset]()
    return _graph_cache[dataset]


def _effective_fanouts(dataset: str, fanouts, directions: str,
                       per_direction: bool) -> List[float]:
    """Effective neighbors per node per hop, measured on the scale model.

    ``per_direction=True`` models DGL/PyG semantics on ``"both"``: the fanout
    applies to each direction independently (doubling the draw budget).
    """
    from .workload import measure_effective_fanout
    graph = _scale_graph(dataset)
    out: List[float] = []
    for f in fanouts:
        if per_direction and directions == "both":
            key = ("eff2", dataset, f)
            if key not in _workload_cache:
                _workload_cache[key] = (
                    measure_effective_fanout(graph, f, "out")
                    + measure_effective_fanout(graph, f, "in"))
        else:
            key = ("eff", dataset, f, directions)
            if key not in _workload_cache:
                _workload_cache[key] = measure_effective_fanout(graph, f, directions)
        out.append(float(_workload_cache[key]))
    return out


def _dense_workload(dataset: str, fanouts, batch_size: int,
                    directions: str = "both") -> BatchWorkload:
    """Full-scale DENSE counts: measured effective fanouts + analytic dedup."""
    from .workload import analytic_dense_workload
    key = ("dense", dataset, tuple(fanouts), batch_size, directions)
    if key not in _workload_cache:
        eff = _effective_fanouts(dataset, fanouts, directions, per_direction=False)
        stats = paper_stats(dataset)
        _workload_cache[key] = analytic_dense_workload(stats.num_nodes, fanouts,
                                                       eff, batch_size)
    return _workload_cache[key]


def _layerwise_workload(dataset: str, fanouts, batch_size: int,
                        directions: str = "both") -> BatchWorkload:
    """Full-scale layerwise counts (per-direction fanouts, resampled layers)."""
    from .workload import analytic_layerwise_workload
    key = ("layerwise", dataset, tuple(fanouts), batch_size, directions)
    if key not in _workload_cache:
        eff = _effective_fanouts(dataset, fanouts, directions, per_direction=True)
        stats = paper_stats(dataset)
        _workload_cache[key] = analytic_layerwise_workload(stats.num_nodes, fanouts,
                                                           eff, batch_size)
    return _workload_cache[key]


# ---------------------------------------------------------------------------
# Table 3: node classification (Papers100M, Mag240M-Cites), 3-layer GraphSage
# ---------------------------------------------------------------------------

def table3_rows(batch_size: int = 1000, fanouts=(30, 20, 10),
                hidden_dim: int = 256) -> List[TableRow]:
    rows: List[TableRow] = []
    for name in ("papers100m", "mag240m-cites"):
        stats = paper_stats(name)
        num_examples = int(stats.num_nodes * stats.train_fraction)
        mem_instance = smallest_instance_fitting(stats.total_gb)

        dense = _dense_workload(name, fanouts, batch_size)
        layer = _layerwise_workload(name, fanouts, batch_size)
        flops_d = gnn_flops(dense, stats.feat_dim, hidden_dim, len(fanouts))
        flops_l = gnn_flops(layer, stats.feat_dim, hidden_dim, len(fanouts))

        # M-GNN in memory: 1 GPU on the smallest fitting instance.
        est = estimate_epoch(MARIUSGNN, stats, dense, flops_d, mem_instance,
                             num_examples, stats.feat_dim, num_gpus=1,
                             learnable_embeddings=False)
        rows.append(_row(est, "M-GNN_Mem"))

        # M-GNN disk: P3.2xLarge. The buffer holds as many feature partitions
        # as fit in ~90% of RAM; sampling sees only the in-buffer subgraph, so
        # neighborhoods (and batches) shrink by roughly the resident fraction
        # of edges — the paper's "fewer returned neighbors and smaller mini
        # batches" effect that lets disk NC beat in-memory (Table 3, Mag).
        p = 64
        partition_gb = stats.feat_gb / p
        budget_gb = P3_2XLARGE.cpu_memory_gb - 6.0
        c = max(2, min(p - 1, int(budget_gb / partition_gb)))
        resident_fraction = c / p
        disk_wl = dense.scale_nodes(max(0.35, min(1.0, resident_fraction ** 0.5)))
        est = estimate_epoch(MARIUSGNN, stats, disk_wl,
                             gnn_flops(disk_wl, stats.feat_dim, hidden_dim, len(fanouts)),
                             P3_2XLARGE, num_examples, stats.feat_dim, num_gpus=1,
                             learnable_embeddings=False,
                             io_read_bytes=node_classification_disk_io(
                                 stats, stats.feat_dim, c, p),
                             io_balanced=True)
        rows.append(_row(est, "M-GNN_Disk"))

        # DGL / PyG: multi-GPU on the fitting instance (PyG on Mag240M falls
        # back to 1 GPU — it runs out of CPU memory multi-GPU, Section 7.1).
        est = estimate_epoch(DGL, stats, layer, flops_l, mem_instance,
                             num_examples, stats.feat_dim,
                             num_gpus=mem_instance.num_gpus,
                             learnable_embeddings=False)
        rows.append(_row(est, "DGL"))
        pyg_gpus = 1 if name == "mag240m-cites" else mem_instance.num_gpus
        pyg_batch = layer if name != "mag240m-cites" else _half_batch(layer)
        est = estimate_epoch(PYG, stats, pyg_batch,
                             gnn_flops(pyg_batch, stats.feat_dim, hidden_dim, len(fanouts)),
                             mem_instance, num_examples, stats.feat_dim,
                             num_gpus=pyg_gpus, learnable_embeddings=False)
        rows.append(_row(est, "PyG"))
    return rows


def _half_batch(wl: BatchWorkload) -> BatchWorkload:
    """PyG's halved batch size on Mag240M (Section 7.1): half the counts,
    twice the batches."""
    return BatchWorkload(wl.nodes_per_batch / 2, wl.edges_per_batch / 2,
                         wl.dedup_nodes_per_batch / 2, max(1, wl.batch_size // 2))


# ---------------------------------------------------------------------------
# Table 4: link prediction (Freebase86M, WikiKG90Mv2), 1-layer GraphSage
# ---------------------------------------------------------------------------

def table4_rows(batch_size: int = 1000, fanouts=(20,), embedding_dim: int = 100,
                num_negatives: int = 500) -> List[TableRow]:
    rows: List[TableRow] = []
    for name in ("freebase86m", "wikikg90mv2"):
        stats = paper_stats(name)
        num_examples = stats.num_edges
        mem_instance = smallest_instance_fitting(stats.total_gb)

        dense = _dense_workload(name, fanouts, batch_size + num_negatives)
        layer = _layerwise_workload(name, fanouts, batch_size + num_negatives)
        flops_d = gnn_flops(dense, embedding_dim, embedding_dim, 1) \
            + 2.0 * batch_size * num_negatives * embedding_dim
        flops_l = gnn_flops(layer, embedding_dim, embedding_dim, 1) \
            + 2.0 * batch_size * num_negatives * embedding_dim

        est = estimate_epoch(MARIUSGNN, stats, dense, flops_d, mem_instance,
                             num_examples, embedding_dim, num_gpus=1,
                             is_link_prediction=True)
        rows.append(_row(est, "M-GNN_Mem"))

        tune = autotune_from_dataset(stats.num_nodes, stats.num_edges,
                                     embedding_dim, P3_2XLARGE.cpu_memory_gb,
                                     max_physical=256)
        loads = _comet_loads(tune.num_logical, tune.logical_capacity,
                             tune.num_physical)
        est = estimate_epoch(MARIUSGNN, stats, dense, flops_d, P3_2XLARGE,
                             num_examples, embedding_dim, num_gpus=1,
                             io_read_bytes=link_prediction_disk_io(
                                 stats, embedding_dim, loads, tune.num_physical),
                             io_balanced=True, is_link_prediction=True)
        rows.append(_row(est, "M-GNN_Disk"))

        # Baselines: single GPU (neither supports multi-GPU LP, Section 7.1);
        # DGL uses 5x fewer negatives yet is sampler-bound anyway.
        est = estimate_epoch(DGL, stats, layer, flops_l, mem_instance,
                             num_examples, embedding_dim, num_gpus=1,
                             is_link_prediction=True)
        rows.append(_row(est, "DGL"))
        est = estimate_epoch(PYG, stats, layer, flops_l, mem_instance,
                             num_examples, embedding_dim, num_gpus=1,
                             is_link_prediction=True)
        rows.append(_row(est, "PyG"))
    return rows


def _comet_loads(num_logical: int, logical_capacity: int, num_physical: int) -> int:
    """Physical partition loads per epoch under a one-swap logical schedule."""
    pairs = num_logical * (num_logical - 1) // 2
    init = logical_capacity
    swaps = max(0, pairs - init * (init - 1) // 2)
    group = num_physical // num_logical
    return (init + swaps) * group


# ---------------------------------------------------------------------------
# Table 5: GraphSage vs GAT on Freebase86M
# ---------------------------------------------------------------------------

def table5_rows(batch_size: int = 1000, embedding_dim: int = 100,
                num_negatives: int = 500) -> List[TableRow]:
    from dataclasses import replace as dc_replace
    stats = paper_stats("freebase86m")
    num_examples = stats.num_edges
    mem_instance = smallest_instance_fitting(stats.total_gb)
    rows: List[TableRow] = []
    for model, fanouts, directions in (("GS", (20,), "both"), ("GAT", (10,), "in")):
        # GAT's per-edge attention runs ~20 elementwise kernel passes per
        # head (scores, leaky-relu, segment softmax, weighted sum) x 8 heads,
        # so MariusGNN becomes compute-bound for it (Table 5's M-GNN GAT
        # epoch is ~3x its GS epoch); sampler-bound DGL/PyG do not change.
        mgnn = (dc_replace(MARIUSGNN, gpu_edge_ns=MARIUSGNN.gpu_edge_ns * 160)
                if model == "GAT" else MARIUSGNN)
        dense = _dense_workload("freebase86m", fanouts, batch_size + num_negatives,
                                directions=directions)
        layer = _layerwise_workload("freebase86m", fanouts, batch_size + num_negatives,
                                    directions=directions)
        flops_fn = gat_flops if model == "GAT" else gnn_flops
        neg_flops = 2.0 * batch_size * num_negatives * embedding_dim
        flops_d = flops_fn(dense, embedding_dim, embedding_dim, 1) + neg_flops
        flops_l = flops_fn(layer, embedding_dim, embedding_dim, 1) + neg_flops

        est = estimate_epoch(mgnn, stats, dense, flops_d, mem_instance,
                             num_examples, embedding_dim, num_gpus=1,
                             is_link_prediction=True)
        rows.append(_row(est, f"M-GNN_Mem/{model}"))
        tune = autotune_from_dataset(stats.num_nodes, stats.num_edges,
                                     embedding_dim, P3_2XLARGE.cpu_memory_gb,
                                     max_physical=256)
        loads = _comet_loads(tune.num_logical, tune.logical_capacity,
                             tune.num_physical)
        est = estimate_epoch(mgnn, stats, dense, flops_d, P3_2XLARGE,
                             num_examples, embedding_dim, num_gpus=1,
                             io_read_bytes=link_prediction_disk_io(
                                 stats, embedding_dim, loads, tune.num_physical),
                             io_balanced=True, is_link_prediction=True)
        rows.append(_row(est, f"M-GNN_Disk/{model}"))
        for system in (DGL, PYG):
            est = estimate_epoch(system, stats, layer, flops_l, mem_instance,
                                 num_examples, embedding_dim, num_gpus=1,
                                 is_link_prediction=True)
            rows.append(_row(est, f"{system.name}/{model}"))
    return rows


def _row(est: EpochEstimate, system_label: str) -> TableRow:
    return TableRow(system=system_label, dataset=est.dataset,
                    epoch_minutes=est.epoch_minutes,
                    cost_per_epoch=est.cost_per_epoch,
                    instance=est.instance, num_gpus=est.num_gpus)
