"""Workload measurement: per-batch operation counts from the real samplers.

The analytical model's inputs are *measured*, not assumed: we run this
repository's DENSE and layerwise samplers on a structure-matched scale model
of each paper graph, count sampled nodes/edges/dedup work per mini batch, and
extrapolate per-epoch totals from the published dataset sizes. Because
neighborhood sizes are bounded by fanout geometry (not graph scale) once
degrees exceed the fanouts, a degree-matched scale model yields per-batch
counts close to the full graph's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines.layerwise import LayerwiseSampler
from ..core.sampler import DenseSampler
from ..graph.edge_list import Graph


@dataclass
class BatchWorkload:
    """Mean per-mini-batch operation counts for one (system, config) pair.

    ``layer_outputs``/``layer_edges`` (first GNN layer first) refine the FLOP
    model: under DENSE the output set shrinks every layer as Algorithm 2
    trims the structure, so charging every layer for every node would badly
    overestimate compute.
    """

    nodes_per_batch: float        # unique node representations materialized
    edges_per_batch: float        # sampled edges aggregated in the GNN
    dedup_nodes_per_batch: float  # nodes pushed through dedup/unique passes
    batch_size: int
    layer_outputs: Optional[list] = None
    layer_edges: Optional[list] = None

    def scale_nodes(self, factor: float) -> "BatchWorkload":
        return BatchWorkload(
            self.nodes_per_batch * factor,
            self.edges_per_batch * factor,
            self.dedup_nodes_per_batch * factor,
            self.batch_size,
            [x * factor for x in self.layer_outputs] if self.layer_outputs else None,
            [x * factor for x in self.layer_edges] if self.layer_edges else None,
        )


def measure_dense_workload(graph: Graph, fanouts: Sequence[int], batch_size: int,
                           directions: str = "both", num_batches: int = 8,
                           seed: int = 0) -> BatchWorkload:
    """Average DENSE sampling counts over random target batches."""
    rng = np.random.default_rng(seed)
    sampler = DenseSampler(graph, list(fanouts), directions=directions, rng=rng)
    nodes, edges, dedup = [], [], []
    for _ in range(num_batches):
        targets = rng.choice(graph.num_nodes, size=min(batch_size, graph.num_nodes),
                             replace=False)
        batch = sampler.sample(targets) if fanouts else sampler.sample_no_neighbors(targets)
        nodes.append(batch.stats.num_unique_nodes)
        edges.append(batch.stats.num_sampled_edges)
        dedup.append(batch.stats.dedup_candidates)
    return BatchWorkload(float(np.mean(nodes)), float(np.mean(edges)),
                         float(np.mean(dedup)), batch_size)


def measure_layerwise_workload(graph: Graph, fanouts: Sequence[int], batch_size: int,
                               directions: str = "both", num_batches: int = 8,
                               seed: int = 0) -> BatchWorkload:
    """Average layerwise (DGL/PyG-style) sampling counts."""
    rng = np.random.default_rng(seed)
    sampler = LayerwiseSampler(graph, list(fanouts), directions=directions, rng=rng)
    nodes, edges, dedup = [], [], []
    for _ in range(num_batches):
        targets = rng.choice(graph.num_nodes, size=min(batch_size, graph.num_nodes),
                             replace=False)
        batch = sampler.sample(targets)
        nodes.append(batch.stats.num_unique_nodes)
        edges.append(batch.stats.num_sampled_edges)
        # Layerwise dedup: every layer uniques its full frontier.
        dedup.append(batch.stats.num_unique_nodes + batch.stats.num_sampled_edges)
    return BatchWorkload(float(np.mean(nodes)), float(np.mean(edges)),
                         float(np.mean(dedup)), batch_size)


def measure_effective_fanout(graph: Graph, fanout: int, directions: str = "both",
                             sample_nodes: int = 4000, seed: int = 0) -> float:
    """Mean neighbors actually sampled per node for a requested ``fanout``.

    ``E[min(degree, fanout)]`` under the graph's degree distribution — this is
    scale-free for a matched power-law exponent, so measuring it on the scale
    model transfers to the full graph (e.g. paper Table 6: requesting 10+10
    neighbors on Papers100M returns ~13 per node).
    """
    from ..graph.csr import AdjacencyIndex
    rng = np.random.default_rng(seed)
    index = AdjacencyIndex(graph, directions=directions)
    nodes = rng.choice(graph.num_nodes, size=min(sample_nodes, graph.num_nodes),
                       replace=False)
    nbrs, _ = index.sample_one_hop(nodes, fanout, rng=rng)
    return len(nbrs) / max(1, len(nodes))


def analytic_dense_workload(num_nodes: int, fanouts: Sequence[int],
                            effective: Sequence[float], batch_size: int) -> BatchWorkload:
    """DENSE per-batch counts at full graph scale.

    One-hop samples are drawn only for *new* nodes (the deltas); the expected
    number of new unique nodes among ``m`` draws from an ``N``-node graph with
    ``u`` already seen is ``(N - u) * (1 - exp(-m / N))`` (uniform-collision
    approximation of the dedup in Algorithm 1 line 7).
    """
    frontier = float(batch_size)
    unique = float(batch_size)
    edges = 0.0
    dedup = 0.0
    news = []          # new unique nodes introduced at hop t
    draws_per_hop = []
    for eff in effective:
        draws = frontier * eff
        draws_per_hop.append(draws)
        edges += draws
        dedup += min(draws, float(num_nodes))
        new = (num_nodes - unique) * (1.0 - math.exp(-draws / num_nodes))
        new = min(new, draws)
        news.append(new)
        frontier = new
        unique += new
    # Forward layer i computes outputs for everything except the i innermost
    # deltas and aggregates every neighbor block not yet trimmed (Section 4.2).
    k = len(effective)
    layer_outputs = [float(batch_size) + sum(news[: k - i]) for i in range(1, k + 1)]
    layer_edges = [sum(draws_per_hop[: k - i + 1]) for i in range(1, k + 1)]
    return BatchWorkload(unique, edges, dedup, batch_size,
                         layer_outputs=layer_outputs, layer_edges=layer_edges)


def analytic_layerwise_workload(num_nodes: int, fanouts: Sequence[int],
                                effective: Sequence[float], batch_size: int) -> BatchWorkload:
    """Layerwise (DGL/PyG) per-batch counts at full graph scale.

    Every layer re-samples its *entire* input frontier (targets included), so
    edge draws compound and node representations are materialized per layer.
    """
    inputs = float(batch_size)
    node_occurrences = 0.0
    edges = 0.0
    dedup = 0.0
    frontier_sizes = [inputs]
    draws_per_hop = []
    for eff in effective:
        draws = inputs * eff
        draws_per_hop.append(draws)
        edges += draws
        new = (num_nodes - inputs) * (1.0 - math.exp(-draws / num_nodes))
        new = min(new, draws)
        inputs = inputs + new
        frontier_sizes.append(inputs)
        node_occurrences += inputs
        dedup += draws + inputs
    # Forward layer i outputs the (k-i)-hop frontier and consumes only that
    # layer's block (MFG blocks are independent).
    k = len(effective)
    layer_outputs = [frontier_sizes[k - i] for i in range(1, k + 1)]
    layer_edges = [draws_per_hop[k - i] for i in range(1, k + 1)]
    return BatchWorkload(node_occurrences, edges, dedup, batch_size,
                         layer_outputs=layer_outputs, layer_edges=layer_edges)


def analytic_hop_draws(num_nodes: int, num_hops: int, effective: float,
                       batch_size: int, dense: bool,
                       dedup: bool = True) -> list:
    """Edges drawn at each sampling hop (outermost first).

    ``dense=True`` follows Algorithm 1 — only the *new* nodes of each hop are
    sampled. ``dense=False, dedup=True`` follows DGL-style layerwise
    semantics — every hop samples its whole accumulated (deduplicated)
    frontier. ``dense=False, dedup=False`` follows NextDoor's transit
    semantics — the sample *tree* is materialized with no dedup at all, so
    draws multiply by the fanout every hop (the memory blowup behind its
    5-layer OOM in Table 7). Feeds the GPU-sampling kernel models.
    """
    frontier = float(batch_size)
    unique = float(batch_size)
    draws_out = []
    for _ in range(num_hops):
        draws = frontier * effective
        draws_out.append(draws)
        if not dedup:
            frontier = draws
            continue
        new = (num_nodes - unique) * (1.0 - math.exp(-draws / num_nodes))
        new = min(new, draws)
        unique += new
        frontier = new if dense else frontier + new
    return draws_out


def gnn_flops(workload: BatchWorkload, feat_dim: int, hidden_dim: int,
              num_layers: int) -> float:
    """Dense-kernel FLOPs per batch for a GraphSage-style stack.

    Per forward layer: two matmuls (self + aggregated neighbor) over that
    layer's *output* nodes plus the segmented-sum adds over that layer's
    edges. Uses the per-layer counts when the workload provides them
    (Algorithm 2 shrinks the output set each layer); otherwise falls back to
    charging all layers for all nodes (an upper bound).
    """
    if num_layers == 0:
        return 2.0 * workload.nodes_per_batch * feat_dim
    dims = [feat_dim] + [hidden_dim] * num_layers
    if workload.layer_outputs and workload.layer_edges:
        total = 0.0
        for i in range(num_layers):
            total += workload.layer_outputs[i] * 4.0 * dims[i] * dims[i + 1]
            total += workload.layer_edges[i] * 2.0 * dims[i]
        return total
    per_node = 4.0 * feat_dim * hidden_dim + 4.0 * hidden_dim * hidden_dim * max(0, num_layers - 1)
    return workload.nodes_per_batch * per_node + 2.0 * workload.edges_per_batch * feat_dim


def gat_flops(workload: BatchWorkload, feat_dim: int, hidden_dim: int,
              num_layers: int, num_heads: int = 8) -> float:
    """GAT: multi-head attention multiplies the encoder cost.

    The standard GAT configuration uses 8 attention heads; every head runs
    its own projection plus per-edge attention scoring (3 dot products, a
    softmax, and a weighted accumulate), which is why the paper calls GAT
    "the more computationally expensive" model (Table 5).
    """
    base = gnn_flops(workload, feat_dim, hidden_dim, num_layers)
    attention = (8.0 * hidden_dim + 16.0) * workload.edges_per_batch
    return num_heads * (base + attention)
