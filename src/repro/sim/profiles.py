"""Hardware and system profiles for the analytical performance model.

Instances come from the paper's Table 2 (AWS P3 family). System throughput
constants are *calibrated from the paper's own microbenchmarks* (Table 6:
per-batch sampling and GPU times for MariusGNN, DGL, PyG on Papers100M, and
Section 7.2's measured multi-GPU scaling), so the end-to-end tables are
genuine predictions of the model — not copies of the paper's numbers — driven
by operation counts measured from this repository's real samplers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class InstanceSpec:
    """An AWS P3 GPU instance (paper Table 2) plus its EBS disk."""

    name: str
    price_per_hour: float
    num_gpus: int
    num_cpus: int
    cpu_memory_gb: float
    disk_gbps: float = 1.0          # EBS volume bandwidth (Section 7.1)
    disk_iops: float = 10_000.0
    pcie_gbps: float = 12.0         # effective host->V100 transfer

    @property
    def price_per_second(self) -> float:
        return self.price_per_hour / 3600.0


P3_2XLARGE = InstanceSpec("p3.2xlarge", 3.06, num_gpus=1, num_cpus=8,
                          cpu_memory_gb=61.0)
P3_8XLARGE = InstanceSpec("p3.8xlarge", 12.24, num_gpus=4, num_cpus=32,
                          cpu_memory_gb=244.0)
P3_16XLARGE = InstanceSpec("p3.16xlarge", 24.48, num_gpus=8, num_cpus=64,
                           cpu_memory_gb=488.0)

INSTANCES: Dict[str, InstanceSpec] = {
    i.name: i for i in (P3_2XLARGE, P3_8XLARGE, P3_16XLARGE)
}


def smallest_instance_fitting(total_gb: float) -> InstanceSpec:
    """Cheapest P3 instance whose CPU memory holds the graph (paper's rule
    for choosing the baseline / M-GNN_Mem machine)."""
    for inst in (P3_2XLARGE, P3_8XLARGE, P3_16XLARGE):
        if inst.cpu_memory_gb >= total_gb:
            return inst
    raise ValueError(f"no P3 instance holds {total_gb:.0f} GB in CPU memory")


@dataclass(frozen=True)
class SystemProfile:
    """Throughput constants of one training system.

    ``sample_edges_per_sec`` is CPU neighborhood-sampling throughput on a
    32-core machine (scaled linearly with available cores);
    ``sample_batch_overhead_s`` is the fixed per-batch cost (queueing, python
    dispatch). ``gpu_edge_ns``/``gpu_flop_rate`` model device time as a
    per-aggregated-edge memory-bound term plus a dense-flop term.

    Calibration sources (paper Table 6, 32-core P3.8xLarge, batch 1000):

    * MariusGNN 3-layer: 103 ms for ~1M nodes / 2M edges  -> ~20M edges/s
    * DGL 3-layer: 376 ms for ~2M nodes / 4M edges        -> ~10M edges/s
    * PyG 3-layer: 1227 ms for ~2M nodes / 4M edges       -> ~3.3M edges/s
    * GPU: M-GNN 21 ms vs DGL 215 ms at 3 layers — dense segment kernels vs
      sparse scatter/gather kernels, an ~4x per-edge gap on top of the ~2x
      batch-size gap.
    """

    name: str
    sample_edges_per_sec: float        # at 32 cores, single in-flight batch
    sample_batch_overhead_s: float
    dedup_nodes_per_sec: float
    gpu_edge_ns: float                 # per sampled edge aggregated on GPU
    gpu_flop_rate: float               # effective dense FLOP/s on V100
    transfer_gbps: float = 12.0
    multi_gpu_speedup: Dict[int, float] = field(default_factory=lambda: {1: 1.0})
    supports_multi_gpu_lp: bool = False
    supports_disk: bool = False
    pipeline_workers: int = 4          # concurrent sampling workers (tuned loaders)
    lp_loader_overhead_s: float = 0.0  # amortized per-batch LP loader cost

    def sampling_seconds(self, edges: float, dedup_nodes: float, cores: int) -> float:
        """Amortized per-batch sampling time at epoch throughput.

        All three systems keep several mini batches in flight (MariusGNN's
        pipeline queue, the baselines' tuned num_workers), so epoch-level
        sampling cost is the single-batch latency divided by the worker
        count. Sampling is memory-bandwidth-bound, so throughput scales with
        sqrt(cores) rather than linearly — consistent with the paper's disk
        mode losing only ~2x sampling speed on a 4x smaller CPU.
        """
        import math
        scale = math.sqrt(max(cores, 1) / 32.0)
        latency = (self.sample_batch_overhead_s
                   + edges / (self.sample_edges_per_sec * scale)
                   + dedup_nodes / (self.dedup_nodes_per_sec * scale))
        return latency / self.pipeline_workers

    def gpu_seconds(self, edges: float, flops: float) -> float:
        return edges * self.gpu_edge_ns * 1e-9 + flops / self.gpu_flop_rate

    def transfer_seconds(self, nbytes: float) -> float:
        return nbytes / (self.transfer_gbps * 1e9)

    def speedup(self, num_gpus: int) -> float:
        if num_gpus in self.multi_gpu_speedup:
            return self.multi_gpu_speedup[num_gpus]
        known = sorted(self.multi_gpu_speedup)
        best = max(k for k in known if k <= num_gpus)
        return self.multi_gpu_speedup[best]


#: MariusGNN: DENSE sampling (one-hop reuse, parallel CPU) + dense GPU kernels.
MARIUSGNN = SystemProfile(
    name="MariusGNN",
    sample_edges_per_sec=20e6,
    sample_batch_overhead_s=0.4e-3,
    dedup_nodes_per_sec=80e6,
    gpu_edge_ns=6.0,
    gpu_flop_rate=5.0e12,   # dense GEMM/segment kernels reach ~1/3 of V100 peak
    multi_gpu_speedup={1: 1.0},
    supports_disk=True,
    lp_loader_overhead_s=2.0e-3,   # pipelined negative construction
)

#: DGL 0.7: layerwise resampling, sparse-kernel forward pass.
DGL = SystemProfile(
    name="DGL",
    sample_edges_per_sec=10e6,
    sample_batch_overhead_s=3e-3,
    dedup_nodes_per_sec=40e6,
    gpu_edge_ns=25.0,
    gpu_flop_rate=1.0e12,
    multi_gpu_speedup={1: 1.0, 4: 1.4, 8: 2.2},  # paper Section 7.2
    lp_loader_overhead_s=25e-3,    # per-edge subgraph loader (Fig 7: ~27ms/batch)
)

#: PyG 2.0.3: slowest CPU sampler, moderate sparse kernels.
PYG = SystemProfile(
    name="PyG",
    sample_edges_per_sec=3.3e6,
    sample_batch_overhead_s=1.5e-3,
    dedup_nodes_per_sec=25e6,
    gpu_edge_ns=20.0,
    gpu_flop_rate=1.2e12,
    multi_gpu_speedup={1: 1.0, 4: 1.1},          # paper Section 7.2
    lp_loader_overhead_s=17e-3,    # custom negative sampler added per Section 7.1
)

#: NextDoor: optimized GPU sampling kernels (Table 7), layerwise semantics.
#: Calibrated from the paper's Table 7 LiveJournal latencies: NextDoor's fused
#: kernels have tiny launch overhead but pay per-edge cost on an edge count
#: that compounds with depth (every layer resamples its whole frontier);
#: MariusGNN's GPU DENSE build uses stock PyTorch ops (higher per-hop launch
#: overhead) but its per-layer edge counts stay near-linear thanks to reuse.
NEXTDOOR_GPU_EDGE_NS = 15.0      # per sampled edge (L4: ~6M edges -> ~135 ms)
NEXTDOOR_LAUNCH_S = 0.08e-3      # fused-kernel launch overhead per hop
MARIUS_GPU_SAMPLE_EDGE_NS = 3.0   # per edge via torch gather/unique kernels
MARIUS_GPU_SAMPLE_LAUNCH_S = 0.9e-3  # several op launches per hop (L1: ~1 ms)

SYSTEMS: Dict[str, SystemProfile] = {s.name.lower(): s for s in (MARIUSGNN, DGL, PYG)}
