"""Analytical performance/cost model (device profiles, workloads, tables)."""

from .perf_model import (EpochEstimate, HyperlinkEstimate, estimate_epoch,
                         hyperlink_stress_estimate, link_prediction_disk_io,
                         mariusgnn_gpu_sampling_seconds,
                         nextdoor_gpu_sampling_seconds,
                         node_classification_disk_io)
from .profiles import (DGL, INSTANCES, MARIUSGNN, P3_16XLARGE, P3_2XLARGE,
                       P3_8XLARGE, PYG, InstanceSpec, SystemProfile,
                       smallest_instance_fitting)
from .tables import TableRow, table3_rows, table4_rows, table5_rows
from .workload import (BatchWorkload, gat_flops, gnn_flops,
                       measure_dense_workload, measure_layerwise_workload)

__all__ = [
    "InstanceSpec", "SystemProfile", "INSTANCES",
    "P3_2XLARGE", "P3_8XLARGE", "P3_16XLARGE",
    "MARIUSGNN", "DGL", "PYG", "smallest_instance_fitting",
    "BatchWorkload", "measure_dense_workload", "measure_layerwise_workload",
    "gnn_flops", "gat_flops",
    "EpochEstimate", "estimate_epoch", "link_prediction_disk_io",
    "node_classification_disk_io", "nextdoor_gpu_sampling_seconds",
    "mariusgnn_gpu_sampling_seconds", "HyperlinkEstimate",
    "hyperlink_stress_estimate",
    "TableRow", "table3_rows", "table4_rows", "table5_rows",
]
