"""Baseline algorithms the paper compares against (DGL/PyG-style sampling)."""

from .layerwise import LayerwiseBatch, LayerwiseEncoder, LayerwiseSampler, MFGBlock

__all__ = ["LayerwiseSampler", "LayerwiseBatch", "LayerwiseEncoder", "MFGBlock"]
