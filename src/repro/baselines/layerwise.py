"""Layerwise multi-hop sampler — the DGL/PyG baseline algorithm.

This is the sampling strategy the paper contrasts DENSE against (Figure 1):
to build a k-layer dataflow graph, existing systems sample one-hop neighbors
layer by layer, and **a node appearing in multiple layers has its one-hop
neighborhood re-sampled for each layer**. Within a single layer duplicates
are sampled once (as DGL does), but across layers the work repeats — the
redundancy DENSE removes.

The output is a list of message-flow-graph (MFG) blocks, outermost hop first,
each carrying its own gather/segment arrays so the same GNN layers in
:mod:`repro.nn.layers` can run on it (used by the accuracy-parity ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..graph.csr import AdjacencyIndex, _run_gather_index
from ..graph.edge_list import Graph
from ..nn.layers import DenseLayerView
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..core.dense import SamplingStats


@dataclass
class MFGBlock:
    """One bipartite layer block: ``input_nodes`` -> ``output_nodes``.

    ``nbr_offsets`` delimits each output node's neighbor run inside
    ``nbr_index`` (positions into ``input_nodes``), and every output node also
    appears in ``input_nodes`` at position ``self_index``.
    """

    input_nodes: np.ndarray
    output_nodes: np.ndarray
    nbr_offsets: np.ndarray
    nbr_index: np.ndarray
    self_index: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.nbr_index)


@dataclass
class LayerwiseBatch:
    """A stack of MFG blocks, blocks[0] = innermost hop (consumed first)."""

    blocks: List[MFGBlock]
    target_nodes: np.ndarray
    stats: SamplingStats = field(default_factory=SamplingStats)

    @property
    def input_nodes(self) -> np.ndarray:
        """Nodes whose base representations the batch must load."""
        return self.blocks[0].input_nodes


class LayerwiseSampler:
    """Per-layer re-sampling multi-hop sampler (DGL/PyG semantics).

    When ``directions="both"``, the fanout applies *per direction* — DGL's
    convention of "10 incoming and 10 outgoing neighbors" yields up to 20
    sampled edges per node, versus DENSE's combined draw. This is one of the
    two effects behind the larger baseline mini batches in the paper's
    Table 6 (the other being cross-layer re-sampling).
    """

    def __init__(self, graph: Graph, fanouts: Sequence[int],
                 directions: str = "both",
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fanouts = [int(f) for f in fanouts]
        self.directions = directions
        self._rng = rng or np.random.default_rng()
        self._build_indexes(graph)

    def _build_indexes(self, graph: Graph) -> None:
        if self.directions == "both":
            self.indexes = [AdjacencyIndex(graph, "out"), AdjacencyIndex(graph, "in")]
        else:
            self.indexes = [AdjacencyIndex(graph, self.directions)]

    def set_graph(self, graph: Graph) -> None:
        self._build_indexes(graph)

    def _sample_one_hop(self, nodes: np.ndarray, fanout: int):
        """Sample ``fanout`` neighbors per direction and merge per-node runs."""
        parts = [idx.sample_one_hop(nodes, fanout, rng=self._rng)
                 for idx in self.indexes]
        if len(parts) == 1:
            return parts[0]
        counts = []
        for nbrs, offsets in parts:
            bounds = np.concatenate([offsets, [len(nbrs)]])
            counts.append(np.diff(bounds))
        total_counts = counts[0] + counts[1]
        offsets = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(total_counts[:-1], out=offsets[1:])
        merged = np.empty(int(total_counts.sum()), dtype=np.int64)
        cursor = offsets.copy()
        for (nbrs, _), cnt in zip(parts, counts):
            dst = _run_gather_index(cursor, cnt)
            merged[dst] = nbrs
            cursor = cursor + cnt
        return merged, offsets

    def sample(self, target_nodes: np.ndarray) -> LayerwiseBatch:
        """Build MFG blocks outermost-hop-first, resampling at every layer."""
        target_nodes = np.unique(np.asarray(target_nodes, dtype=np.int64))
        stats = SamplingStats(num_target_nodes=len(target_nodes))

        blocks_outer_first: List[MFGBlock] = []
        outputs = target_nodes
        seen_nodes = [target_nodes]
        for fanout in self.fanouts:
            # One-hop sample for *all* nodes needed at this layer — the
            # re-sampling redundancy: a node sampled at an earlier (outer)
            # layer is sampled again here if it reappears.
            nbrs, offsets = self._sample_one_hop(outputs, fanout)
            stats.one_hop_calls += len(outputs)
            stats.num_sampled_edges += len(nbrs)
            input_nodes = np.unique(np.concatenate([outputs, nbrs]))
            seen_nodes.append(input_nodes)

            lookup = np.argsort(input_nodes, kind="stable")
            nbr_index = lookup[np.searchsorted(input_nodes[lookup], nbrs)]
            self_index = lookup[np.searchsorted(input_nodes[lookup], outputs)]
            blocks_outer_first.append(MFGBlock(
                input_nodes=input_nodes,
                output_nodes=outputs,
                nbr_offsets=offsets,
                nbr_index=nbr_index,
                self_index=self_index,
            ))
            outputs = input_nodes

        # Count *unique node occurrences across layers* the way Table 6 does:
        # each layer's input set contributes, because base representations and
        # messages are materialized per layer in DGL/PyG.
        stats.num_unique_nodes = int(sum(len(s) for s in seen_nodes[1:]) or len(target_nodes))
        blocks = list(reversed(blocks_outer_first))
        return LayerwiseBatch(blocks=blocks, target_nodes=target_nodes, stats=stats)


class LayerwiseEncoder(Module):
    """Run the shared GNN layers over MFG blocks (baseline forward pass).

    Reuses the exact same layer modules as the DENSE path so that accuracy
    comparisons isolate the *sampling algorithm*, not the model.
    """

    def __init__(self, layers: Sequence[Module]) -> None:
        super().__init__()
        from ..nn.module import ModuleList
        self.layers = ModuleList(list(layers))

    def forward(self, h0: Tensor, batch: LayerwiseBatch) -> Tensor:
        """``h0`` holds rows for ``batch.blocks[0].input_nodes`` in order."""
        if len(self.layers) != len(batch.blocks):
            raise ValueError("layer count does not match block count")
        h = h0
        prev_inputs = batch.blocks[0].input_nodes
        for layer, block in zip(self.layers, batch.blocks):
            if len(prev_inputs) != h.data.shape[0]:
                raise ValueError("representation rows misaligned with block inputs")
            # Rearrange h so that output nodes sit at the tail, making the
            # block consumable through the same DenseLayerView interface.
            view = DenseLayerView(
                repr_map=block.nbr_index,
                nbr_offsets=block.nbr_offsets,
                self_start=0,
                num_outputs=len(block.output_nodes),
            )
            # For MFG blocks the "self" rows are scattered in input_nodes, so
            # gather them to the front and aggregate neighbors via nbr_index.
            h_self = h.index_select(block.self_index)
            h = _mfg_layer(layer, h, h_self, view)
            prev_inputs = block.output_nodes
        return h


def _mfg_layer(layer: Module, h_all: Tensor, h_self: Tensor, view: DenseLayerView) -> Tensor:
    """Evaluate one shared GNN layer on an MFG block.

    Builds a representation array ``[h_self | h_all]`` so that the layer's
    contiguous-tail assumption holds: ``self_start`` points at the ``h_self``
    rows while ``repr_map`` is shifted past them into ``h_all``.
    """
    from ..nn.tensor import concat

    stacked = concat([h_self, h_all], axis=0)
    shifted = DenseLayerView(
        repr_map=view.repr_map + h_self.data.shape[0],
        nbr_offsets=view.nbr_offsets,
        self_start=0,
        num_outputs=view.num_outputs,
    )
    # The layer reads self rows from stacked[self_start : self_start + n].
    return layer(stacked, shifted)
