"""Typed job specifications: the declarative layer under ``repro run``.

A :class:`JobSpec` is one validated, JSON-serializable description of a
workload: a job ``kind`` (see :mod:`~repro.api.registry`) plus the
sections that kind reads — :class:`DataSpec`, :class:`ModelSpec`,
:class:`TrainSpec`, :class:`StorageSpec`, :class:`CheckpointSpec`,
:class:`ServeSpec`, :class:`StreamSpec`. Fields defaulting to ``None``
are *kind-resolved*: :meth:`JobSpec.resolve` fills them from the
registry's per-kind defaults (e.g. ``model.fanouts`` becomes ``(10,)``
for ``lp-mem`` but ``(10, 5)`` for ``nc-mem``), mirroring the legacy CLI
defaults exactly — the CLI subcommands are thin shims that build these
specs from flags, and ``--dump-spec`` prints the resolved form.

Round-trip contract (property-tested): ``from_dict(to_dict(spec)) ==
spec`` for every kind, and unknown sections or fields are rejected
instead of silently ignored.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from . import registry
from .registry import JobError


def _f(default: Any, help_text: str) -> Any:
    """A dataclass field with schema help metadata."""
    return field(default=default, metadata={"help": help_text})


@dataclass
class DataSpec:
    """Which graph the job runs over (regenerated deterministically)."""

    dataset: Optional[str] = _f(None, "dataset name (kind default: fb15k237 "
                                      "for LP, papers100m-mini for NC, "
                                      "freebase86m-mini for streaming)")
    scale: float = _f(0.1, "LP dataset scale factor")
    nodes: int = _f(4000, "NC synthetic dataset node count")
    edges: Optional[int] = _f(None, "NC edge count (default: nodes * 9)")
    feat_dim: Optional[int] = _f(None, "NC feature dim (default: model.dim; "
                                       "serve: 32)")
    classes: Optional[int] = _f(None, "NC class count (default: loader's)")
    seed: Optional[int] = _f(None, "dataset regeneration seed (default: "
                                   "train.seed for NC trainers, else 0)")


@dataclass
class ModelSpec:
    """Model shape: base representations, encoder, decoder."""

    dim: int = _f(32, "base representation / hidden dimension")
    encoder: Optional[str] = _f(None, "none | graphsage | gcn | gat "
                                      "(kind default: graphsage; stream: none)")
    decoder: str = _f("distmult", "distmult | complex | transe | dot (LP)")
    fanouts: Optional[Tuple[int, ...]] = _f(None, "neighbors sampled per hop "
                                                  "(kind default: [10] LP, "
                                                  "[10, 5] NC)")


@dataclass
class TrainSpec:
    """Optimization loop parameters."""

    batch_size: Optional[int] = _f(None, "edges/nodes per mini batch "
                                         "(kind default: 512 LP, 256 NC)")
    negatives: int = _f(64, "negative samples per batch (LP)")
    epochs: Optional[int] = _f(None, "training epochs (kind default: "
                                     "3 LP, 5 NC, 1 stream)")
    seed: int = _f(0, "training RNG seed")
    eval_every: Optional[int] = _f(None, "epochs between ranked evaluations "
                                         "(kind default: 1; stream: 0)")
    eval_negatives: int = _f(200, "negatives per ranked eval edge (LP)")
    eval_max_edges: int = _f(2000, "eval edge-sample cap (LP)")
    workers: int = _f(2, "sampling workers (lp-pipelined)")
    pipeline_depth: int = _f(4, "bounded batch queue depth (lp-pipelined)")
    deterministic: bool = _f(False, "replayable pipeline (lp-pipelined)")
    save: Optional[str] = _f(None, "legacy model-export directory (LP)")


@dataclass
class StorageSpec:
    """Out-of-core layout: partitions, buffer, replacement policy."""

    workdir: Optional[str] = _f(None, "memmap store directory (default: temp)")
    partitions: Optional[int] = _f(None, "physical partitions (kind default: "
                                         "16; serve: the snapshot's layout)")
    logical: int = _f(8, "logical partitions for COMET (lp-disk)")
    buffer: Optional[int] = _f(None, "partitions resident in memory "
                                     "(kind default: 4; nc-disk: 8)")
    policy: str = _f("comet", "replacement policy: comet | beta (lp-disk)")
    spill_threshold: int = _f(1 << 20, "in-memory delta events before the "
                                       "stream log spills to disk")


@dataclass
class CheckpointSpec:
    """Crash-safe snapshot cadence and resume source."""

    every: int = _f(0, "snapshot cadence (epochs / plan steps / batches / "
                       "refreshes, per kind); 0 = off")
    dir: Optional[str] = _f(None, "snapshot root (default: "
                                  "<workdir>/checkpoints or a temp dir)")
    compress: bool = _f(False, "zlib-compress snapshot array payloads")
    resume_from: Optional[str] = _f(None, "snapshot dir (or checkpoint root) "
                                         "to resume from")
    incremental: bool = _f(False, "dirty-partition-only snapshots chained to "
                                  "a base (disk trainers)")


@dataclass
class ServeSpec:
    """Queries to run against a trained snapshot."""

    snapshot: Optional[str] = _f(None, "snapshot dir or checkpoint root "
                                       "(required; latest snapshot wins)")
    embed: Optional[str] = _f(None, "comma-separated node ids to look up")
    score: Tuple[str, ...] = _f((), "edges to score: 'S:D' or 'S:R:D'")
    topk: Optional[Tuple[int, int]] = _f(None, "[source, k] best-K targets")
    rel: int = _f(0, "relation for topk")
    ann: Optional[bool] = _f(None, "serve top-k through the per-partition "
                                   "ANN index (kind default: on; the exact "
                                   "sweep stays available per query)")
    ann_cluster_size: int = _f(64, "target rows per ANN cluster")
    exact: bool = _f(False, "force the exact blockwise sweep for topk "
                            "(the ANN path's correctness oracle)")
    classify: Optional[str] = _f(None, "comma-separated node ids to classify")
    bench: int = _f(0, "N-query lookup throughput probe (0 = off)")
    mix: str = _f("zipf", "bench query mix: zipf | random")
    max_batch: int = _f(256, "bench micro-batch size")
    seed: int = _f(0, "bench query-stream seed")


@dataclass
class StreamSpec:
    """Synthetic event-stream driver cadence."""

    events: int = _f(0, "events to ingest through the driver (0 = none)")
    event_batch: int = _f(500, "events ingested per driver batch")
    delete_fraction: float = _f(0.1, "fraction of events that are deletions")
    add_nodes_every: int = _f(8, "driver batches between node adds (0 = never)")
    compact_every: int = _f(4000, "compact at this many pending events "
                                  "(0 = never)")
    refresh: Optional[bool] = _f(None, "fine-tune delta-touched partitions "
                                       "after each compaction (lp-stream: on)")
    verify: bool = _f(False, "check the live view against an offline rebuild")
    repl: bool = _f(False, "interactive ingest/compact/query loop")
    wal: bool = _f(False, "journal appends to a write-ahead log in "
                          "<workdir>/wal and recover acknowledged events "
                          "after a crash")
    fsync_every: int = _f(1, "WAL group-commit window: fsync once per N "
                             "appended frames (1 = every append is durable "
                             "at acknowledgment)")
    background_compaction: bool = _f(False, "compact on a worker thread "
                                            "with retry/backoff instead of "
                                            "inline on the ingest path")
    lock_stripes: int = _f(8, "striped ingest locks over bucket ranges "
                              "(1 = a single lock)")


@dataclass
class FleetSpec:
    """Serving-fleet topology: workers, gateway, routing, batching."""

    workers: int = _f(2, "serving worker processes (each owns a full "
                         "read-only engine over the snapshot)")
    host: str = _f("127.0.0.1", "bind address for gateway and workers")
    port: int = _f(0, "gateway HTTP port (0 = ephemeral; printed at start)")
    affinity: str = _f("range", "request routing: range (partition "
                                "ownership) | random (round-robin control)")
    max_batch: int = _f(256, "per-worker micro-batch size")
    max_wait_ms: float = _f(2.0, "per-worker micro-batch linger window")
    max_queue: int = _f(1024, "per-worker admission bound (0 = unbounded)")
    timeout_ms: float = _f(0.0, "per-request queue deadline (0 = none)")
    duration: float = _f(0.0, "seconds to serve before draining "
                              "(0 = until SIGINT/SIGTERM)")


@dataclass
class ObsSpec:
    """Telemetry sink configuration (every kind reads it; off by default)."""

    sink: str = _f("none", "run-log sink: none | jsonl | csv")
    path: Optional[str] = _f(None, "run-log path (default: "
                                   "<workdir>/telemetry.<ext> when the kind "
                                   "has storage.workdir, else ./telemetry.<ext>)")
    flush_every: int = _f(25, "emit a metrics record every N events")


_SECTION_TYPES = {"data": DataSpec, "model": ModelSpec, "train": TrainSpec,
                  "storage": StorageSpec, "checkpoint": CheckpointSpec,
                  "serve": ServeSpec, "stream": StreamSpec,
                  "fleet": FleetSpec, "telemetry": ObsSpec}

# Fields parsed back from JSON lists into tuples.
_TUPLE_FIELDS = {("model", "fanouts"), ("serve", "score"), ("serve", "topk")}


@dataclass
class JobSpec:
    """One declarative, validated description of a runnable job."""

    kind: str
    data: DataSpec = field(default_factory=DataSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    storage: StorageSpec = field(default_factory=StorageSpec)
    checkpoint: CheckpointSpec = field(default_factory=CheckpointSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)
    stream: StreamSpec = field(default_factory=StreamSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    telemetry: ObsSpec = field(default_factory=ObsSpec)

    # ------------------------------------------------------------------
    @property
    def sections(self) -> Tuple[str, ...]:
        return registry.kind_info(self.kind).sections

    def resolve(self) -> "JobSpec":
        """Kind defaults applied to every ``None`` field, then validated.

        Returns a new, fully-determined spec (idempotent: resolving a
        resolved spec is the identity). This is what ``--dump-spec``
        prints and what the CLI-parity tests compare.
        """
        info = registry.kind_info(self.kind)
        out = JobSpec(kind=self.kind,
                      **{name: dataclasses.replace(getattr(self, name))
                         for name in _SECTION_TYPES})
        for dotted, value in info.defaults.items():
            section, name = dotted.split(".")
            if getattr(getattr(out, section), name) is None:
                setattr(getattr(out, section), name, value)
        # Derived NC regeneration parameters: the legacy train-nc command
        # ties the feature dim and dataset seed to the model dim and
        # training seed; explicit spec values win.
        if self.kind in (registry.NC_MEM, registry.NC_DISK):
            if out.data.feat_dim is None:
                out.data.feat_dim = out.model.dim
            if out.data.seed is None:
                out.data.seed = out.train.seed
        if "stream" in info.sections and out.stream.refresh is None:
            out.stream.refresh = False
        out._validate()
        return out

    def _validate(self) -> None:
        info = registry.kind_info(self.kind)
        if (self.kind in (registry.SERVE, registry.SERVE_FLEET)
                and not self.serve.snapshot):
            raise JobError(f"{self.kind} jobs need serve.snapshot (a "
                             "snapshot dir or checkpoint root)")
        if self.kind == registry.SERVE_FLEET:
            fleet = self.fleet
            if fleet.workers < 1:
                raise JobError("fleet.workers must be at least 1")
            if fleet.affinity not in ("range", "random"):
                raise JobError("fleet.affinity must be 'range' or "
                               f"'random', not {fleet.affinity!r}")
            if fleet.max_batch < 1:
                raise JobError("fleet.max_batch must be positive")
            if fleet.max_wait_ms < 0 or fleet.timeout_ms < 0:
                raise JobError("fleet.max_wait_ms and fleet.timeout_ms "
                               "must be non-negative")
            if fleet.max_queue < 0 or fleet.duration < 0:
                raise JobError("fleet.max_queue and fleet.duration "
                               "must be non-negative")
            if not 0 <= fleet.port < 65536:
                raise JobError("fleet.port must be in [0, 65535]")
        if self.train.deterministic and self.kind != registry.LP_PIPELINED:
            raise JobError("train.deterministic only applies to the "
                             "lp-pipelined kind (the other trainers are "
                             "already deterministic)")
        if self.checkpoint.incremental and self.kind not in (
                registry.LP_DISK, registry.NC_DISK):
            raise JobError("checkpoint.incremental needs a disk trainer "
                             f"(lp-disk or nc-disk), not {self.kind!r}")
        if "storage" in info.sections:
            storage = self.storage
            if storage.buffer is not None and storage.buffer <= 0:
                raise JobError("storage.buffer must be positive")
            if storage.partitions is not None and storage.partitions <= 0:
                raise JobError("storage.partitions must be positive")
        from ..obs.sinks import SINK_KINDS
        if self.telemetry.sink not in SINK_KINDS:
            raise JobError(f"telemetry.sink must be one of "
                           f"{list(SINK_KINDS)}, not {self.telemetry.sink!r}")
        if self.telemetry.flush_every <= 0:
            raise JobError("telemetry.flush_every must be positive")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able dict holding the kind and its relevant sections.

        A section the kind does not read but which holds non-default
        values is rejected rather than silently dropped — the symmetric
        counterpart of :meth:`from_dict`'s unknown-section rejection, so
        round-trip identity can never lose data."""
        for name, section_cls in _SECTION_TYPES.items():
            if name not in self.sections and getattr(self, name) != section_cls():
                raise JobError(
                    f"section {name!r} holds non-default values but kind "
                    f"{self.kind!r} does not read it (it reads "
                    f"{list(self.sections)})")
        out: Dict[str, Any] = {"kind": self.kind}
        for name in self.sections:
            section = getattr(self, name)
            block = {}
            for fld in fields(section):
                value = getattr(section, fld.name)
                if isinstance(value, tuple):
                    value = list(value)
                block[fld.name] = value
            out[name] = block
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Parse a spec dict, rejecting unknown sections and fields."""
        if not isinstance(payload, dict):
            raise JobError(f"spec must be a JSON object, got {type(payload).__name__}")
        if "kind" not in payload:
            raise JobError("spec is missing the required 'kind' field")
        kind = payload["kind"]
        info = registry.kind_info(kind)
        unknown = sorted(set(payload) - {"kind"} - set(info.sections))
        if unknown:
            raise JobError(f"unknown spec section(s) {unknown} for kind "
                             f"{kind!r} (it reads {list(info.sections)})")
        spec = cls(kind=kind)
        for name in info.sections:
            block = payload.get(name)
            if block is None:
                continue
            if not isinstance(block, dict):
                raise JobError(f"section {name!r} must be an object")
            section = getattr(spec, name)
            known = {fld.name for fld in fields(section)}
            bad = sorted(set(block) - known)
            if bad:
                raise JobError(f"unknown field(s) {bad} in section "
                                 f"{name!r} (known: {sorted(known)})")
            for key, value in block.items():
                if (name, key) in _TUPLE_FIELDS and isinstance(value, list):
                    value = tuple(value)
                setattr(section, key, value)
        return spec

    # ------------------------------------------------------------------
    def save(self, path: os.PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "JobSpec":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise JobError(f"cannot read spec file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise JobError(f"spec file {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


def default_checkpoint_dir(workdir: os.PathLike) -> str:
    """The one place the ``<workdir>/checkpoints`` fallback rule lives
    (used by both the CLI flag shims and the job builders)."""
    return str(Path(workdir) / "checkpoints")


def load_spec(path: os.PathLike) -> JobSpec:
    """Load a :class:`JobSpec` from a JSON file."""
    return JobSpec.load(path)


def save_spec(spec: JobSpec, path: os.PathLike) -> Path:
    """Write ``spec`` to a JSON file; returns the path."""
    return spec.save(path)


# ---------------------------------------------------------------------------
# Schema rendering (``repro info --jobs``) — generated from the dataclasses
# and the registry defaults, so the listing cannot drift from the code.
# ---------------------------------------------------------------------------

def _type_name(fld: dataclasses.Field) -> str:
    text = str(fld.type)
    for token, name in (("Tuple[int, int]", "[int,int]"),
                        ("Tuple[int, ...]", "[int...]"),
                        ("Tuple[str, ...]", "[str...]")):
        if token in text:
            return name
    for token in ("str", "int", "float", "bool"):
        if token in text:
            return token
    return text


def schema_lines(kind: str) -> Tuple[str, ...]:
    """One line per spec field of ``kind``: name, type, default, help."""
    info = registry.kind_info(kind)
    lines = []
    for name in info.sections:
        section_cls = _SECTION_TYPES[name]
        for fld in fields(section_cls):
            default = info.defaults.get(f"{name}.{fld.name}", fld.default)
            shown = "-" if default is None else (
                list(default) if isinstance(default, tuple) else default)
            lines.append(f"{name + '.' + fld.name:<26} {_type_name(fld):<9} "
                         f"{str(shown):<10} {fld.metadata.get('help', '')}")
    return tuple(lines)
