"""The unified job API: typed specs, a kind registry, one ``run()``.

Every workload in the reproduction — six trainers, the serving engine,
the streaming driver — is described by a declarative, JSON-serializable
:class:`~repro.api.specs.JobSpec` and executed through one entrypoint::

    from repro.api import JobSpec, DataSpec, ModelSpec, TrainSpec, run

    spec = JobSpec(kind="lp-mem",
                   data=DataSpec(dataset="fb15k237", scale=0.2),
                   model=ModelSpec(dim=50, fanouts=(20,)),
                   train=TrainSpec(epochs=5))
    result = run(spec)             # TrainResult
    print(result.final_mrr)

``repro run spec.json`` is the CLI face of the same call, and the legacy
``train-lp``/``train-nc``/``serve``/``stream`` subcommands are thin
shims that build a spec from flags and delegate here. See
``docs/api.md`` for the spec schema, the registry, and migration notes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional

from . import registry
from .registry import (JOB_KINDS, JobError, KindInfo, get_factory,
                       job_kinds, kind_info)
from .specs import (CheckpointSpec, DataSpec, FleetSpec, JobSpec, ModelSpec,
                    ObsSpec, ServeSpec, StorageSpec, StreamSpec, TrainSpec,
                    default_checkpoint_dir, load_spec, save_spec,
                    schema_lines)

__all__ = [
    "JobSpec", "DataSpec", "ModelSpec", "TrainSpec", "StorageSpec",
    "CheckpointSpec", "ServeSpec", "StreamSpec", "FleetSpec", "ObsSpec",
    "load_spec", "save_spec", "schema_lines",
    "JOB_KINDS", "JobError", "KindInfo", "job_kinds", "kind_info",
    "get_factory", "default_checkpoint_dir",
    "build_job", "run", "registry",
]


def _telemetry_recorder(spec: JobSpec):
    """A :class:`~repro.obs.sinks.Recorder` for a resolved spec, or
    ``None`` when telemetry is off. The default log path lands next to
    the job's data (``<storage.workdir>/telemetry.<ext>``) when the kind
    has a workdir, else in the current directory."""
    tele = spec.telemetry
    if tele.sink == "none":
        return None
    from ..obs.sinks import Recorder, make_sink
    ext = "jsonl" if tele.sink == "jsonl" else "csv"
    if tele.path:
        path = Path(tele.path)
    elif "storage" in spec.sections and spec.storage.workdir:
        path = Path(spec.storage.workdir) / f"telemetry.{ext}"
    else:
        path = Path(f"telemetry.{ext}")
    return Recorder(make_sink(tele.sink, path),
                    flush_every=tele.flush_every)


def build_job(spec: JobSpec, verbose: bool = False, on_event=None):
    """Resolve ``spec`` and construct (but not run) its job.

    Returns the built :class:`~repro.api.jobs.Job`, whose underlying
    trainer/engine is reachable (``job.trainer`` / ``job.engine``) for
    callers that need more than :func:`run`'s result object. ``on_event``
    is an optional ``fn(event, payload)`` progress/checkpoint listener
    (see :mod:`repro.train.hooks`). With ``spec.telemetry.sink`` set, a
    :class:`~repro.obs.sinks.Recorder` rides the same listener hook and
    is reachable as ``job.recorder`` (closed by :func:`run`; direct
    ``build_job`` callers close it themselves).
    """
    spec = spec.resolve()
    recorder = _telemetry_recorder(spec)
    listeners = [on_event] if on_event is not None else []
    if recorder is not None:
        listeners.append(recorder.listener)
    job = get_factory(spec.kind)(spec)
    job.build(verbose=verbose, listeners=listeners)
    if recorder is not None:
        job.recorder = recorder
        for name, fn in job.telemetry_sources().items():
            recorder.add_source(name, fn)
    return job


def run(spec: JobSpec, verbose: bool = False, on_event=None) -> Any:
    """The single programmatic entrypoint: build, resume, run ``spec``.

    Resolves and validates the spec, builds the job, restores
    ``checkpoint.resume_from`` when set, and executes the job — returning
    the kind's result object (a ``TrainResult``,
    ``NodeClassificationResult``, or a results dict for serve/stream
    jobs). ``verbose=True`` reproduces the legacy CLI output.
    """
    job = build_job(spec, verbose=verbose, on_event=on_event)
    try:
        if ("checkpoint" in job.spec.sections
                and job.spec.checkpoint.resume_from):
            job.resume(verbose=verbose)
        return job.run(verbose=verbose)
    finally:
        if job.recorder is not None:
            job.recorder.close()
