"""The unified job API: typed specs, a kind registry, one ``run()``.

Every workload in the reproduction — six trainers, the serving engine,
the streaming driver — is described by a declarative, JSON-serializable
:class:`~repro.api.specs.JobSpec` and executed through one entrypoint::

    from repro.api import JobSpec, DataSpec, ModelSpec, TrainSpec, run

    spec = JobSpec(kind="lp-mem",
                   data=DataSpec(dataset="fb15k237", scale=0.2),
                   model=ModelSpec(dim=50, fanouts=(20,)),
                   train=TrainSpec(epochs=5))
    result = run(spec)             # TrainResult
    print(result.final_mrr)

``repro run spec.json`` is the CLI face of the same call, and the legacy
``train-lp``/``train-nc``/``serve``/``stream`` subcommands are thin
shims that build a spec from flags and delegate here. See
``docs/api.md`` for the spec schema, the registry, and migration notes.
"""

from __future__ import annotations

from typing import Any

from . import registry
from .registry import (JOB_KINDS, JobError, KindInfo, get_factory,
                       job_kinds, kind_info)
from .specs import (CheckpointSpec, DataSpec, JobSpec, ModelSpec, ServeSpec,
                    StorageSpec, StreamSpec, TrainSpec, default_checkpoint_dir,
                    load_spec, save_spec, schema_lines)

__all__ = [
    "JobSpec", "DataSpec", "ModelSpec", "TrainSpec", "StorageSpec",
    "CheckpointSpec", "ServeSpec", "StreamSpec",
    "load_spec", "save_spec", "schema_lines",
    "JOB_KINDS", "JobError", "KindInfo", "job_kinds", "kind_info",
    "get_factory", "default_checkpoint_dir",
    "build_job", "run", "registry",
]


def build_job(spec: JobSpec, verbose: bool = False, on_event=None):
    """Resolve ``spec`` and construct (but not run) its job.

    Returns the built :class:`~repro.api.jobs.Job`, whose underlying
    trainer/engine is reachable (``job.trainer`` / ``job.engine``) for
    callers that need more than :func:`run`'s result object. ``on_event``
    is an optional ``fn(event, payload)`` progress/checkpoint listener
    (see :mod:`repro.train.hooks`).
    """
    spec = spec.resolve()
    listeners = [on_event] if on_event is not None else []
    job = get_factory(spec.kind)(spec)
    job.build(verbose=verbose, listeners=listeners)
    return job


def run(spec: JobSpec, verbose: bool = False, on_event=None) -> Any:
    """The single programmatic entrypoint: build, resume, run ``spec``.

    Resolves and validates the spec, builds the job, restores
    ``checkpoint.resume_from`` when set, and executes the job — returning
    the kind's result object (a ``TrainResult``,
    ``NodeClassificationResult``, or a results dict for serve/stream
    jobs). ``verbose=True`` reproduces the legacy CLI output.
    """
    job = build_job(spec, verbose=verbose, on_event=on_event)
    if ("checkpoint" in job.spec.sections
            and job.spec.checkpoint.resume_from):
        job.resume(verbose=verbose)
    return job.run(verbose=verbose)
