"""Job implementations: one factory per registered kind.

A *job* wraps one workload behind the common protocol the unified API
promises::

    job = build_job(spec)     # construct trainers / engines / stores
    job.resume(path)          # optional: restore a snapshot
    result = job.run()        # execute; returns the kind's result object
    job.snapshot()            # optional: persist the final state

Every factory here consumes a **resolved** :class:`~repro.api.specs.
JobSpec` and is the single place the spec's declarative fields meet the
constructors of the underlying subsystems — the CLI subcommands are thin
shims over these factories, so programmatic ``repro.api.run(spec)`` and
``repro run spec.json`` and the legacy flag spellings all execute
identical code. User-facing configuration errors raise
:class:`~repro.api.registry.JobError` (a ``ValueError`` subclass the CLI
converts to clean exits — anything else propagates with a traceback);
``verbose=True`` reproduces the legacy CLI's progress output
byte-for-byte.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..graph import (load_fb15k237, load_freebase86m_mini,
                     load_papers100m_mini, load_wikikg90m_mini,
                     training_graph)
from ..train import (DiskConfig, DiskLinkPredictionTrainer,
                     DiskNodeClassificationConfig,
                     DiskNodeClassificationTrainer, LinkPredictionConfig,
                     LinkPredictionTrainer, NodeClassificationConfig,
                     NodeClassificationTrainer,
                     PipelinedLinkPredictionTrainer, SnapshotManager)
from ..train.hooks import ProgressListener
from . import registry
from .registry import JobError
from .specs import CheckpointSpec, JobSpec, default_checkpoint_dir

LP_DATASETS = {
    "fb15k237": lambda scale, seed=0: load_fb15k237(scale=scale, seed=seed),
    "freebase86m-mini": lambda scale, seed=0: load_freebase86m_mini(
        num_nodes=max(500, int(20000 * scale * 5)), seed=seed),
    "wikikg90m-mini": lambda scale, seed=0: load_wikikg90m_mini(
        num_nodes=max(500, int(24000 * scale * 5)), seed=seed),
}


def _lp_dataset(spec: JobSpec):
    name = spec.data.dataset
    if name not in LP_DATASETS:
        raise JobError(f"unknown LP dataset {name!r}; "
                         f"choose from {sorted(LP_DATASETS)}")
    return LP_DATASETS[name](spec.data.scale, spec.data.seed or 0)


def _nc_dataset(spec: JobSpec):
    data = spec.data
    if data.dataset not in (None, "papers100m-mini"):
        raise JobError(f"unknown NC dataset {data.dataset!r}; the NC kinds "
                       f"regenerate 'papers100m-mini' (sized by data.nodes/"
                       f"edges/feat_dim/classes)")
    kwargs: Dict[str, Any] = {}
    if data.classes is not None:
        kwargs["num_classes"] = data.classes
    return load_papers100m_mini(
        num_nodes=data.nodes,
        num_edges=data.edges if data.edges is not None else data.nodes * 9,
        feat_dim=data.feat_dim, seed=data.seed, **kwargs)


def _parse_ids(text: str) -> np.ndarray:
    return np.array([int(x) for x in text.split(",") if x], dtype=np.int64)


def _checkpoint_kwargs(ck: CheckpointSpec, workdir: Optional[str],
                       verbose: bool) -> Dict[str, Any]:
    """Shared checkpoint plumbing for every trainer kind (legacy
    ``_checkpoint_args`` semantics: a cadence or an explicit dir enables
    the snapshot subsystem; the dir falls back to ``<workdir>/checkpoints``
    and then to a temp dir)."""
    if not ck.every and not ck.dir:
        return {}
    checkpoint_dir = Path(ck.dir) if ck.dir else (
        Path(default_checkpoint_dir(workdir)) if workdir else
        Path(tempfile.mkdtemp(prefix="repro-ckpt-")))
    if verbose:
        if ck.every:
            compressed = " (compressed)" if ck.compress else ""
            print(f"checkpointing every {ck.every} to "
                  f"{checkpoint_dir}{compressed}")
        else:
            print(f"checkpoint dir {checkpoint_dir} (no --checkpoint-every: "
                  f"snapshots are read for resume but none will be written)")
    return {"checkpoint_dir": checkpoint_dir,
            "checkpoint_every": ck.every,
            "checkpoint_compress": ck.compress}


class Job:
    """Common protocol every job kind implements.

    Subclasses fill in :meth:`build` (construct the underlying trainer /
    engine from the resolved spec), :meth:`run`, and — where the kind
    supports snapshots — :meth:`snapshot` / :meth:`resume`.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.recorder = None     # attached by build_job when telemetry is on

    @property
    def kind(self) -> str:
        return self.spec.kind

    def telemetry_sources(self) -> Dict[str, Any]:
        """``name -> zero-arg callable`` pull sources the telemetry
        recorder polls on every metrics flush (flat numeric dicts)."""
        return {}

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "Job":
        raise NotImplementedError

    def run(self, verbose: bool = False) -> Any:
        raise NotImplementedError

    def snapshot(self) -> Path:
        raise JobError(f"{self.kind} jobs do not write snapshots")

    def _ensure_snapshot_manager(self) -> None:
        """``job.snapshot()`` always works: a trainer built without a
        checkpoint dir (no cadence requested) gets a manager on demand at
        ``checkpoint.dir`` or a temp root."""
        if self.trainer.snapshots is None:
            ck = self.spec.checkpoint
            root = Path(ck.dir) if ck.dir else Path(
                tempfile.mkdtemp(prefix="repro-ckpt-"))
            self.trainer.snapshots = SnapshotManager(root,
                                                     compress=ck.compress)

    def resume(self, path: Optional[Path] = None,
               verbose: bool = False) -> dict:
        raise JobError(f"{self.kind} jobs cannot resume from a snapshot")


# ---------------------------------------------------------------------------
# Training jobs
# ---------------------------------------------------------------------------

class _TrainJob(Job):
    """Shared build/run/resume shape of the six trainer-backed kinds."""

    trainer = None

    def telemetry_sources(self) -> Dict[str, Any]:
        io = getattr(self.trainer, "io", None)
        if io is None:
            io = getattr(getattr(self.trainer, "buffer", None), "stats", None)
        return {"storage": io.as_dict} if io is not None else {}

    def _resume_path(self, path: Optional[Path]) -> Optional[Path]:
        if path is not None:
            return Path(path)
        if self.spec.checkpoint.resume_from:
            return Path(self.spec.checkpoint.resume_from)
        return None

    def resume(self, path: Optional[Path] = None,
               verbose: bool = False) -> dict:
        meta = self.trainer.resume(self._resume_path(path))
        if verbose:
            print(f"resumed from snapshot at epoch {meta['epoch']}"
                  + (f", step {meta['step']}" if "step" in meta else "")
                  + (f", batch {meta['batch']}" if "batch" in meta else ""))
        return meta


class LinkPredictionJob(_TrainJob):
    """``lp-mem`` / ``lp-disk`` / ``lp-pipelined``."""

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "LinkPredictionJob":
        spec = self.spec
        model, train, storage = spec.model, spec.train, spec.storage
        self.dataset = _lp_dataset(spec)
        fanouts = tuple(model.fanouts) if model.encoder != "none" else ()
        self.config = LinkPredictionConfig(
            embedding_dim=model.dim, encoder=model.encoder,
            num_layers=len(fanouts), fanouts=fanouts, decoder=model.decoder,
            batch_size=train.batch_size, num_negatives=train.negatives,
            num_epochs=train.epochs, eval_negatives=train.eval_negatives,
            eval_max_edges=train.eval_max_edges,
            eval_every=train.eval_every, seed=train.seed)
        workdir = storage.workdir if "storage" in spec.sections else None
        ckpt = _checkpoint_kwargs(spec.checkpoint, workdir, verbose)
        if spec.kind == registry.LP_DISK:
            disk = DiskConfig(
                workdir=Path(workdir) if workdir else
                Path(tempfile.mkdtemp(prefix="repro-disk-")),
                num_partitions=storage.partitions,
                num_logical=storage.logical,
                buffer_capacity=storage.buffer, policy=storage.policy)
            self.trainer = DiskLinkPredictionTrainer(
                self.dataset, self.config, disk,
                checkpoint_incremental=spec.checkpoint.incremental,
                listeners=listeners, **ckpt)
        elif spec.kind == registry.LP_PIPELINED:
            self.trainer = PipelinedLinkPredictionTrainer(
                self.dataset, self.config,
                num_sample_workers=train.workers,
                pipeline_depth=train.pipeline_depth,
                deterministic=train.deterministic,
                listeners=listeners, **ckpt)
        else:
            self.trainer = LinkPredictionTrainer(self.dataset, self.config,
                                                 listeners=listeners, **ckpt)
        return self

    def run(self, verbose: bool = False):
        result = self.trainer.train(verbose=verbose)
        if verbose:
            print(f"\nfinal MRR {result.final_mrr:.4f} "
                  f"(hits@10 {result.final_metrics.hits_at_10:.4f}) "
                  f"mean epoch {result.mean_epoch_seconds:.2f}s")
        if self.spec.train.save:
            from ..train.checkpoint import save_checkpoint
            embeddings = getattr(self.trainer, "embeddings", None)
            save_checkpoint(
                Path(self.spec.train.save), self.trainer.model, self.config,
                embeddings=embeddings.table if embeddings else None,
                optimizer_state=embeddings.state if embeddings else None)
            if verbose:
                print(f"checkpoint written to {self.spec.train.save}")
        return result

    def snapshot(self) -> Path:
        self._ensure_snapshot_manager()
        epochs = self.config.num_epochs
        if self.spec.kind == registry.LP_DISK:
            return self.trainer.save_snapshot(epochs, 0, 1)
        if self.spec.kind == registry.LP_PIPELINED:
            return self.trainer.save_snapshot(epochs, 0, 1, None)
        return self.trainer.save_snapshot(epochs)


class NodeClassificationJob(_TrainJob):
    """``nc-mem`` / ``nc-disk``."""

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "NodeClassificationJob":
        spec = self.spec
        model, train, storage = spec.model, spec.train, spec.storage
        self.dataset = _nc_dataset(spec)
        fanouts = tuple(model.fanouts)
        self.config = NodeClassificationConfig(
            encoder=model.encoder, hidden_dim=model.dim,
            num_layers=len(fanouts), fanouts=fanouts,
            batch_size=train.batch_size, num_epochs=train.epochs,
            eval_every=train.eval_every, seed=train.seed)
        workdir = storage.workdir if "storage" in spec.sections else None
        ckpt = _checkpoint_kwargs(spec.checkpoint, workdir, verbose)
        if spec.kind == registry.NC_DISK:
            disk = DiskNodeClassificationConfig(
                workdir=Path(workdir) if workdir else
                Path(tempfile.mkdtemp(prefix="repro-nc-")),
                num_partitions=storage.partitions,
                buffer_capacity=storage.buffer)
            self.trainer = DiskNodeClassificationTrainer(
                self.dataset, self.config, disk,
                checkpoint_incremental=spec.checkpoint.incremental,
                listeners=listeners, **ckpt)
        else:
            self.trainer = NodeClassificationTrainer(
                self.dataset, self.config, listeners=listeners, **ckpt)
        return self

    def run(self, verbose: bool = False):
        result = self.trainer.train(verbose=verbose)
        if verbose:
            print(f"\nfinal accuracy {result.final_accuracy:.4f} "
                  f"mean epoch {result.mean_epoch_seconds:.2f}s")
        return result

    def snapshot(self) -> Path:
        self._ensure_snapshot_manager()
        epochs = self.config.num_epochs
        if self.spec.kind == registry.NC_DISK:
            return self.trainer.save_snapshot(epochs, 0, 1)
        return self.trainer.save_snapshot(epochs)


# ---------------------------------------------------------------------------
# Serving job
# ---------------------------------------------------------------------------

def build_serving_engine(spec: JobSpec, workdir: Optional[Path] = None):
    """Build the serving engine a resolved serve/serve-fleet spec asks for.

    Returns ``(snapshot_path, snapshot_kind, engine)``. This is the one
    snapshot->engine path, shared by :class:`ServeJob` and each fleet
    worker process (every worker calls it against its own private
    workdir, so N workers page the same snapshot independently).
    """
    from ..serve import serve_link_prediction, serve_node_classification
    storage = spec.storage
    snap = _resolve_snapshot_dir(spec.serve.snapshot)
    meta = json.loads((snap / "manifest.json").read_text())["meta"]
    kind = meta["trainer"]
    if workdir is None:
        workdir = Path(storage.workdir) if storage.workdir else Path(
            tempfile.mkdtemp(prefix="repro-serve-"))
    if kind in registry.NC_SNAPSHOT_KINDS:
        dataset = _nc_dataset(spec)
        engine = serve_node_classification(
            snap, dataset, workdir, num_partitions=storage.partitions,
            buffer_capacity=storage.buffer)
    else:
        graph = None
        if meta.get("config", {}).get("encoder", "none") != "none":
            # Encoder snapshots sample neighborhoods on read; the job
            # regenerates the training graph the same way train-lp does.
            if not spec.data.dataset:
                raise JobError(
                    "this snapshot has a GNN encoder: pass data.dataset/"
                    "scale (the training data) so encode-on-read can "
                    "sample neighborhoods")
            graph = training_graph(_lp_dataset(spec))
        engine = serve_link_prediction(snap, workdir,
                                       num_partitions=storage.partitions,
                                       buffer_capacity=storage.buffer,
                                       graph=graph,
                                       ann=bool(spec.serve.ann),
                                       ann_cluster_size=(
                                           spec.serve.ann_cluster_size))
    return snap, kind, engine


class ServeJob(Job):
    """``serve``: query a trained snapshot out-of-core (docs/serving.md)."""

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "ServeJob":
        snap, kind, engine = build_serving_engine(self.spec)
        self.snapshot_path, self.snapshot_kind, self.engine = snap, kind, engine
        if verbose:
            print(f"serving {kind} snapshot {snap.name}: "
                  f"{engine.store.num_nodes:,} nodes x {engine.store.dim}, "
                  f"{engine.scheme.num_partitions} partitions, "
                  f"buffer {engine.buffer.capacity}")
        return self

    def telemetry_sources(self) -> Dict[str, Any]:
        return {"serve": self.engine.stats.as_dict,
                "storage": self.engine.buffer.stats.as_dict}

    # ------------------------------------------------------------------
    def run(self, verbose: bool = False) -> Dict[str, Any]:
        serve = self.spec.serve
        engine = self.engine
        results: Dict[str, Any] = {}
        if serve.embed or serve.score or serve.topk:
            # Query execution rides a micro-batcher wrapped in a drain
            # guard: SIGINT/SIGTERM stops admitting, finishes what's
            # queued, then exits 128+signum — the same drain discipline
            # the fleet workers reuse (docs/serving.md).
            from ..serve import GracefulDrain, RequestBatcher
            with RequestBatcher(engine, max_batch=serve.max_batch) as batcher:
                with GracefulDrain(batcher.stop):
                    self._run_queries(batcher, results, verbose)
        if serve.classify:
            preds = engine.classify(_parse_ids(serve.classify), seed=0)
            results["classify"] = preds
            if verbose:
                print("  predicted classes:", preds.tolist())
        if serve.bench:
            results["bench"] = self._bench(verbose)
        if verbose:
            s = engine.stats
            print(f"engine stats: {s.lookups} lookups, "
                  f"{s.edges_scored} edges scored, "
                  f"{s.topk_queries} topk "
                  f"({s.topk_parts_scanned} parts scanned, "
                  f"{s.topk_parts_pruned} pruned), "
                  f"{s.swaps} partition swaps")
        results["stats"] = engine.stats
        return results

    def _run_queries(self, batcher, results: Dict[str, Any],
                     verbose: bool) -> None:
        serve = self.spec.serve
        if serve.embed:
            ids = _parse_ids(serve.embed)
            rows = batcher.get_embeddings(ids)
            results["embed"] = (ids, rows)   # parallel arrays, duplicates kept
            if verbose:
                for node, row in zip(ids, rows):
                    head = ", ".join(f"{v:+.4f}" for v in row[:6])
                    more = ", ..." if len(row) > 6 else ""
                    print(f"  node {node}: [{head}{more}]")
        if serve.score:
            rows = []
            for edge_spec in serve.score:
                fields = [int(x) for x in edge_spec.split(":")]
                if len(fields) == 2:            # S:D — relation 0
                    fields = [fields[0], 0, fields[1]]
                elif len(fields) != 3:
                    raise JobError(f"bad --score spec {edge_spec!r}: "
                                     f"expected SRC:DST or SRC:REL:DST")
                rows.append(fields)
            pairs = np.array(rows, dtype=np.int64)
            scores = batcher.score_edges(pairs)
            results["score"] = scores        # aligned with serve.score order
            if verbose:
                for edge_spec, score in zip(serve.score, scores):
                    print(f"  score({edge_spec}) = {score:.6f}")
        if serve.topk:
            src, k = int(serve.topk[0]), int(serve.topk[1])
            try:
                ids, scores = batcher.topk_targets(src, k, rel=serve.rel,
                                                   exclude=[src],
                                                   exact=serve.exact)
            except RuntimeError as exc:  # e.g. encoder snapshots refuse top-k
                raise JobError(f"--topk: {exc}") from exc
            results["topk"] = (ids, scores)
            if verbose:
                mode = ("exact" if serve.exact or not serve.ann else "ann")
                print(f"  top-{k} targets for source {src} "
                      f"(rel {serve.rel}, {mode} sweep):")
                for rank, (node, score) in enumerate(zip(ids, scores), 1):
                    print(f"    #{rank:<3} node {node:<10} score {score:.6f}")

    def _bench(self, verbose: bool) -> Dict[str, float]:
        """Quick QPS probe over a random or Zipf-skewed single-lookup stream
        (the same workload definition the committed benchmark baseline
        uses)."""
        from ..serve import make_query_stream
        serve = self.spec.serve
        engine = self.engine
        queries = make_query_stream(serve.mix, serve.bench,
                                    engine.store.num_nodes, seed=serve.seed)
        swaps0 = engine.stats.swaps
        t0 = time.perf_counter()
        for start in range(0, len(queries), serve.max_batch):
            engine.get_embeddings(queries[start : start + serve.max_batch])
        seconds = time.perf_counter() - t0
        swaps = engine.stats.swaps - swaps0
        if verbose:
            print(f"  bench: {len(queries)} {serve.mix} lookups in "
                  f"{seconds:.2f}s = {len(queries) / seconds:,.0f} QPS "
                  f"({1000 * swaps / len(queries):.1f} swaps/1k queries, "
                  f"batch {serve.max_batch})")
        return {"queries": len(queries), "seconds": seconds,
                "qps": len(queries) / seconds,
                "swaps_per_1k": 1000 * swaps / len(queries)}


class ServeFleetJob(Job):
    """``serve-fleet``: N engine workers behind the partition-affinity
    HTTP gateway (docs/serving.md, "Serving fleet")."""

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "ServeFleetJob":
        from ..fleet import Fleet
        spec = self.spec
        # The snapshot is resolved eagerly so a bad path fails here, not
        # in N spawned children.
        self.snapshot_path = _resolve_snapshot_dir(spec.serve.snapshot)
        workdir = Path(spec.storage.workdir) if spec.storage.workdir else Path(
            tempfile.mkdtemp(prefix="repro-fleet-"))
        self.workdir = workdir
        self.fleet = Fleet(spec.to_dict(), workdir)
        return self

    def telemetry_sources(self) -> Dict[str, Any]:
        # Engines live in the worker processes; each worker writes its
        # own run log (worker-<i>/telemetry.jsonl), merged by `repro top`.
        return {}

    def run(self, verbose: bool = False) -> Dict[str, Any]:
        from ..serve import GracefulDrain
        fleet = self.fleet
        duration = float(self.spec.fleet.duration)
        with GracefulDrain(exit_after=False) as drain:
            fleet.start()
            try:
                if verbose:
                    info = fleet.worker_info[0]
                    print(f"serving fleet: {fleet.num_workers} workers x "
                          f"({info['num_nodes']:,} nodes x {info['dim']}, "
                          f"{info['num_partitions']} partitions, "
                          f"{info['kind']} snapshot)")
                    print(f"gateway listening on {fleet.url} "
                          f"(affinity={fleet.affinity}); Ctrl-C drains")
                if duration > 0:
                    drain.wait(duration)
                else:
                    while not drain.wait(1.0):
                        pass
                stats = fleet.worker_stats()
            finally:
                exitcodes = fleet.stop()
        if verbose:
            for entry in stats:
                serve = entry.get("serve", {})
                print(f"  worker {entry.get('worker')}: "
                      f"{serve.get('requests', 0)} requests, "
                      f"{serve.get('lookups', 0)} lookups, "
                      f"{serve.get('swaps', 0)} swaps")
            print(f"fleet drained; worker exit codes {exitcodes}")
        return {"url": fleet.url, "workers": fleet.num_workers,
                "exitcodes": exitcodes, "worker_stats": stats}


# ---------------------------------------------------------------------------
# Streaming jobs (``stream`` driver and ``lp-stream`` continual training)
# ---------------------------------------------------------------------------

class StreamJob(Job):
    """``stream`` / ``lp-stream``: live-graph ingestion with optional
    continual refresh training (docs/streaming.md). ``lp-stream`` is the
    same machinery with refresh-on-compaction resolved on by default."""

    def build(self, verbose: bool = False,
              listeners: Iterable[ProgressListener] = ()) -> "StreamJob":
        from ..graph.partition import PartitionScheme
        from ..serve.engine import ServingEngine
        from ..storage.atomic import atomic_write_json
        from ..storage.edge_store import EdgeBucketStore
        from ..storage.node_store import NodeStore
        from ..stream import (BackgroundCompactor, Compactor,
                              ContinualTrainer, LiveGraph, WriteAheadLog)

        spec = self.spec
        model, train, storage, stream = (spec.model, spec.train, spec.storage,
                                         spec.stream)
        workdir = Path(storage.workdir) if storage.workdir else Path(
            tempfile.mkdtemp(prefix="repro-stream-"))
        workdir.mkdir(parents=True, exist_ok=True)
        self.workdir = workdir
        nodes_path, edges_path = workdir / "nodes.bin", workdir / "edges.bin"
        state_path = workdir / "stream-state.json"
        wal_dir = workdir / "wal" if stream.wal else None
        recovery = None
        recovered_nodes_added = None
        self._wal_replay: list = []
        if spec.checkpoint.resume_from:
            # Reattach to the workdir's existing stores: the snapshot's
            # fingerprints pin the *compacted, grown* layout, which a rebuild
            # from the dataset could never reproduce.
            if not (nodes_path.exists() and edges_path.exists()):
                raise JobError(
                    "checkpoint.resume_from needs the original workdir: its "
                    "nodes.bin/edges.bin hold the compacted base state the "
                    "snapshot pins")
            stream_meta = _stream_snapshot_meta(
                Path(spec.checkpoint.resume_from))
            base_nodes = stream_meta["num_nodes"] - stream_meta["nodes_added"]
            scheme = PartitionScheme.uniform(
                base_nodes, storage.partitions).extended(
                    stream_meta["nodes_added"])
            # truncate=True: nodes appended after the snapshot are discarded
            # (growth is append-only) — with the WAL on they come back via
            # replay after resume(). Edge-bucket drift past the snapshot
            # (a post-snapshot compaction) is caught by the fingerprint check.
            store = NodeStore.open(nodes_path, scheme, model.dim,
                                   learnable=True, truncate=True)
            edge_store = EdgeBucketStore.open(edges_path, scheme)
            num_relations = edge_store.num_relations
            if wal_dir is not None:
                recovery = WriteAheadLog.scan(wal_dir)
        elif (stream.wal and state_path.exists()
              and nodes_path.exists() and edges_path.exists()):
            # Crash recovery without a snapshot: the workdir's stores plus
            # the WAL are the durable state. The node count to reattach at
            # is the *acknowledged* total (WAL meta and NODES frames), never
            # more — growth that reached the store file but not the journal
            # was never acknowledged and is cut back; growth journaled but
            # not yet in the file is re-grown by replay.
            state = json.loads(state_path.read_text())
            if state["partitions"] != storage.partitions or \
                    state["dim"] != model.dim:
                raise JobError(
                    f"stream.wal recovery: workdir {workdir} was built with "
                    f"p={state['partitions']}, dim={state['dim']} — the spec "
                    f"says p={storage.partitions}, dim={model.dim}")
            recovery = WriteAheadLog.scan(wal_dir)
            base_nodes = int(state["base_nodes"])
            acked = max(base_nodes, recovery.num_nodes,
                        recovery.max_nodes_recorded)
            file_rows = nodes_path.stat().st_size // (4 * model.dim)
            attach = min(acked, file_rows)
            recovered_nodes_added = attach - base_nodes
            scheme = PartitionScheme.uniform(
                base_nodes, storage.partitions).extended(attach - base_nodes)
            store = NodeStore.open(nodes_path, scheme, model.dim,
                                   learnable=True, truncate=True)
            edge_store = EdgeBucketStore.open(edges_path, scheme)
            num_relations = edge_store.num_relations
        else:
            graph = training_graph(_lp_dataset(spec))
            scheme = PartitionScheme.uniform(graph.num_nodes,
                                             storage.partitions)
            store = NodeStore(nodes_path, scheme, model.dim, learnable=True)
            store.initialize(rng=np.random.default_rng(train.seed))
            edge_store = EdgeBucketStore(edges_path, graph, scheme)
            num_relations = graph.num_relations
            atomic_write_json(state_path,
                              {"base_nodes": graph.num_nodes,
                               "partitions": storage.partitions,
                               "dim": model.dim,
                               "num_relations": num_relations,
                               "dataset": spec.data.dataset})
        self.live = LiveGraph(store, edge_store, seed=train.seed,
                              spill_threshold=storage.spill_threshold,
                              wal_dir=None if recovery is not None else wal_dir,
                              fsync_every=stream.fsync_every,
                              lock_stripes=stream.lock_stripes)
        if recovery is not None:
            # Rebuild the acknowledged overlay: reattach surviving spills,
            # then queue the WAL suffix past the durable floor for replay —
            # after resume() when a snapshot is being restored (its
            # fingerprints must see the pre-replay stores), else right here.
            self._wal_replay = self.live.log.restore(
                edge_store.compacted_seq, recovery, wal_dir=wal_dir)
            if recovered_nodes_added is not None:
                self.live.nodes_added = recovered_nodes_added
        self.config = LinkPredictionConfig(
            embedding_dim=model.dim, encoder="none",
            batch_size=train.batch_size, num_negatives=train.negatives,
            num_epochs=1, eval_every=train.eval_every, seed=train.seed)
        ckpt = _checkpoint_kwargs(spec.checkpoint, storage.workdir, verbose)
        self.trainer = ContinualTrainer(self.live, self.config,
                                        num_relations=num_relations,
                                        buffer_capacity=storage.buffer,
                                        listeners=listeners, **ckpt)
        self.engine = ServingEngine.over_live(self.live, self.trainer.model,
                                              buffer_capacity=storage.buffer)
        self.compactor = Compactor(self.live)
        self.background = None
        if stream.background_compaction:
            threshold = stream.compact_every if stream.compact_every else 1024
            self.background = BackgroundCompactor(
                self.compactor, staleness_threshold=threshold,
                seed=train.seed)
        if recovery is not None and not spec.checkpoint.resume_from:
            replayed = self.live.replay_wal(self._wal_replay)
            self._wal_replay = []
            if verbose and (replayed["frames"] or recovery.torn_frames):
                print(f"WAL recovery: replayed {replayed['edge_events']} "
                      f"edge events / {replayed['nodes']} node adds from "
                      f"{replayed['frames']} frames "
                      f"({recovery.torn_frames} torn frame(s) dropped)")
        if verbose:
            print(f"streaming over {spec.data.dataset}: "
                  f"{self.live.num_nodes:,} nodes, "
                  f"{edge_store.num_edges:,} base edges, "
                  f"p={storage.partitions}, buffer {storage.buffer}, "
                  f"workdir {workdir}")
        return self

    def telemetry_sources(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"stream": self.live.stats}
        if self.background is not None:
            out["compactor"] = self.background.health
        return out

    # ------------------------------------------------------------------
    def resume(self, path: Optional[Path] = None,
               verbose: bool = False) -> dict:
        p = Path(path) if path is not None else (
            Path(self.spec.checkpoint.resume_from)
            if self.spec.checkpoint.resume_from else None)
        meta = self.trainer.resume(p)
        self.live.nodes_added = int(meta["stream"]["nodes_added"])
        if self._wal_replay:
            # Snapshot restore + WAL replay compose: the snapshot pinned the
            # compacted base and model state; the journal holds everything
            # acknowledged after it. Replay re-grows truncated node adds and
            # re-enters log-only events, so nothing acknowledged is lost.
            replayed = self.live.replay_wal(self._wal_replay)
            self._wal_replay = []
            if verbose:
                print(f"WAL replay after snapshot: "
                      f"{replayed['edge_events']} edge events, "
                      f"{replayed['nodes']} node adds")
        if verbose:
            print(f"resumed at stream position {meta['stream']}")
        return meta

    def snapshot(self) -> Path:
        self._ensure_snapshot_manager()
        return self.trainer.save_snapshot()

    # ------------------------------------------------------------------
    def run(self, verbose: bool = False) -> Dict[str, Any]:
        stream = self.spec.stream
        driver_stats = None
        if self.background is not None:
            self.background.start()
        try:
            if stream.events:
                driver_stats = self._driver(verbose)
            if stream.repl:
                self._repl()
        finally:
            if self.background is not None:
                # Drain: the worker's last merge plus a synchronous sweep of
                # whatever arrived after it, so verify sees a settled view.
                self.background.stop(final_compact=True)
        if stream.verify:
            self.verify(self.workdir, verbose=verbose)
        s = self.live.stats()
        if verbose:
            print(f"stream stats: {s['events_appended']} events "
                  f"({s['edges_inserted']} ins / {s['edges_deleted']} del), "
                  f"{s['nodes_added']} nodes added, {s['pending']} pending, "
                  f"{self.compactor.compactions} compactions, "
                  f"{self.trainer.refreshes} refreshes, {s['spills']} spills")
        s["compactions"] = self.compactor.compactions
        s["refreshes"] = self.trainer.refreshes
        if stream.wal or stream.background_compaction:
            s["health"] = self.live.health()
        if driver_stats:
            s["driver"] = driver_stats
        return s

    def _driver(self, verbose: bool) -> Dict[str, Any]:
        """Synthetic event-stream driver: ingest on a cadence of compactions
        and refreshes, reporting throughput and staleness."""
        from ..stream import synth_events
        spec = self.spec.stream
        live, compactor, trainer = self.live, self.compactor, self.trainer
        rng = np.random.default_rng(self.spec.train.seed + 23)
        done = 0          # events actually appended (deletes can come up
        asked = 0         # short when the sampled bucket is empty)
        t_ingest = 0.0
        staleness = []
        batch_no = 0
        while asked < spec.events:
            count = min(spec.event_batch, spec.events - asked)
            if spec.add_nodes_every and batch_no % spec.add_nodes_every == 0:
                live.add_nodes(max(1, count // 50))
            ins, dels = synth_events(live, rng, count, spec.delete_fraction)
            t0 = time.perf_counter()
            lo, hi = live.insert_edges(ins)
            done += hi - lo
            if dels is not None and len(dels):
                lo, hi = live.delete_edges(dels)
                done += hi - lo
            t_ingest += time.perf_counter() - t0
            asked += count
            batch_no += 1
            staleness.append(live.staleness())
            if spec.compact_every and live.staleness() >= spec.compact_every:
                if self.background is not None:
                    # Background mode: nudge the worker and keep ingesting —
                    # the merge overlaps the next batches instead of
                    # stalling them.
                    self.background.kick()
                else:
                    report = compactor.compact()
                    if verbose:
                        print(f"  [{done:>8} events] compacted "
                              f"{report.merged_events} events in "
                              f"{report.seconds * 1000:.0f}ms "
                              f"-> {report.num_edges:,} base edges")
                if spec.refresh:
                    record = trainer.refresh()
                    if verbose:
                        print(f"  [{done:>8} events] refresh "
                              f"loss={record.loss:.4f} "
                              f"({record.num_batches} batches, "
                              f"{record.seconds:.2f}s)")
        qps_ids = np.arange(min(64, live.num_nodes))
        t0 = time.perf_counter()
        self.engine.get_embeddings(qps_ids)
        q_ms = 1000 * (time.perf_counter() - t0)
        if verbose:
            print(f"driver: {done} events in {t_ingest:.2f}s ingest time = "
                  f"{done / max(t_ingest, 1e-9):,.0f} events/s; staleness "
                  f"mean {np.mean(staleness):.0f} max {max(staleness)}; "
                  f"64-row lookup {q_ms:.1f}ms")
        return {"events": done, "ingest_seconds": t_ingest,
                "events_per_sec": done / max(t_ingest, 1e-9),
                "staleness_mean": float(np.mean(staleness)),
                "staleness_max": int(max(staleness))}

    def verify(self, workdir, verbose: bool = True) -> None:
        """Streamed-vs-rebuilt equivalence check over the current live
        state; raises ``ValueError`` on any divergence."""
        from ..core.sampler import DenseSampler
        from ..storage.edge_store import EdgeBucketStore
        live = self.live
        final = live.materialize()
        rebuilt = EdgeBucketStore(Path(workdir) / "verify-edges.bin", final,
                                  live.scheme)
        p = live.num_partitions
        for i in range(p):
            for j in range(p):
                a = live.bucket_edges(i, j, record_io=False)
                b = rebuilt.read_bucket(i, j, record_io=False)
                if not np.array_equal(a, b):
                    raise JobError(
                        f"verify FAILED: bucket ({i}, {j}) of the live view "
                        f"differs from the offline rebuild")
        parts = list(range(min(4, p)))
        s_live = DenseSampler.from_partitions(live.scheme,
                                              live.bucket_endpoints, parts,
                                              [5],
                                              rng=np.random.default_rng(99))
        s_built = DenseSampler.from_partitions(live.scheme,
                                               rebuilt.bucket_endpoints,
                                               parts, [5],
                                               rng=np.random.default_rng(99))
        targets = np.arange(0, live.num_nodes,
                            max(1, live.num_nodes // 64))
        a, b = s_live.sample(targets), s_built.sample(targets)
        if not np.array_equal(a.node_ids, b.node_ids):
            raise JobError("verify FAILED: sampling diverged from the "
                             "rebuild")
        rebuilt.close()
        if verbose:
            print(f"verify OK: {final.num_edges:,} live edges match an "
                  f"offline rebuild bucket-for-bucket; seeded sampling "
                  f"identical")

    def _repl(self) -> None:
        """Interactive ingest/compact/query loop over the live graph."""
        from ..stream import synth_events
        live, compactor, trainer = self.live, self.compactor, self.trainer
        engine = self.engine
        rng = np.random.default_rng(self.spec.train.seed + 31)
        print("stream REPL - commands: ingest N | delete N | add-nodes N | "
              "compact | refresh | embed IDS | topk SRC K | stats | verify "
              "| quit")
        while True:
            try:
                line = input("stream> ").strip()
            except EOFError:
                break
            if not line:
                continue
            cmd, *rest = line.split()
            try:
                if cmd == "quit" or cmd == "exit":
                    break
                elif cmd == "ingest":
                    ins, _ = synth_events(live, rng, int(rest[0]), 0.0)
                    lo, hi = live.insert_edges(ins)
                    print(f"  inserted {hi - lo} edges (seq [{lo}, {hi}))")
                elif cmd == "delete":
                    _, dels = synth_events(live, rng, int(rest[0]), 1.0)
                    if dels is None or not len(dels):
                        print("  nothing to delete")
                    else:
                        lo, hi = live.delete_edges(dels)
                        print(f"  deleted {hi - lo} edge keys "
                              f"(seq [{lo}, {hi}))")
                elif cmd == "add-nodes":
                    ids = live.add_nodes(int(rest[0]))
                    print(f"  added nodes [{ids[0]}, {ids[-1]}]")
                elif cmd == "compact":
                    report = compactor.compact()
                    print(f"  merged {report.merged_events} events in "
                          f"{report.seconds * 1000:.0f}ms -> "
                          f"{report.num_edges:,} base edges")
                elif cmd == "refresh":
                    record = trainer.refresh()
                    print(f"  loss={record.loss:.4f} "
                          f"({record.num_batches} batches)")
                elif cmd == "embed":
                    ids = _parse_ids(rest[0])
                    for node, row in zip(ids, engine.get_embeddings(ids)):
                        head = ", ".join(f"{v:+.4f}" for v in row[:6])
                        print(f"  node {node}: [{head}, ...]")
                elif cmd == "topk":
                    ids, scores = engine.topk_targets(int(rest[0]),
                                                      int(rest[1]))
                    for rank, (node, score) in enumerate(zip(ids, scores), 1):
                        print(f"    #{rank:<3} node {node:<10} "
                              f"score {score:.6f}")
                elif cmd == "stats":
                    print(f"  {live.stats()}")
                elif cmd == "verify":
                    self.verify(tempfile.mkdtemp(prefix="repro-verify-"))
                else:
                    print(f"  unknown command {cmd!r}")
            except Exception as exc:   # REPL survives bad input
                print(f"  error: {exc}")


def _resolve_snapshot_dir(path) -> Path:
    """checkpoint.py's dir-or-root rule, with its failure surfaced as the
    job layer's clean configuration error."""
    from ..train.checkpoint import SnapshotError, resolve_snapshot_dir
    try:
        return resolve_snapshot_dir(path)
    except SnapshotError as exc:
        raise JobError(str(exc)) from exc


def _stream_snapshot_meta(path: Path) -> dict:
    """The ``stream`` block of a snapshot's manifest (snap dir or root)."""
    path = _resolve_snapshot_dir(path)
    meta = json.loads((path / "manifest.json").read_text())["meta"]
    if "stream" not in meta:
        raise JobError(f"snapshot {path.name} was not written by the "
                         f"streaming trainer (trainer={meta.get('trainer')!r})")
    return meta["stream"]


# ---------------------------------------------------------------------------
# Factory bindings — the registry's executable half
# ---------------------------------------------------------------------------

for _kind in (registry.LP_MEM, registry.LP_DISK, registry.LP_PIPELINED):
    registry.bind(_kind, LinkPredictionJob)
for _kind in (registry.NC_MEM, registry.NC_DISK):
    registry.bind(_kind, NodeClassificationJob)
registry.bind(registry.SERVE, ServeJob)
registry.bind(registry.SERVE_FLEET, ServeFleetJob)
registry.bind(registry.STREAM, StreamJob)
registry.bind(registry.LP_STREAM, StreamJob)
