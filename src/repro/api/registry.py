"""The job-kind registry: the single authority for job and snapshot kinds.

Every runnable workload in the reproduction — the six trainers, the
serving engine, and the streaming driver — is a *job kind*. This module
owns the kind strings (trainer ``KIND`` attributes and the serving
loader's accepted snapshot kinds reference them, so they cannot drift),
the per-kind metadata (which :mod:`~repro.api.specs` sections a kind
reads and which defaults it resolves ``None`` fields to), and the
factory table mapping a kind to the :class:`~repro.api.jobs.Job`
implementation that executes it.

The module is deliberately import-light (stdlib only): trainers import
their ``KIND`` constants from here, and :mod:`repro.api.specs` reads the
kind table for validation/resolution, without either pulling in the
other's dependencies. Factories are *bound* by :mod:`repro.api.jobs` at
its import time; :func:`get_factory` imports that module lazily on first
use so ``import repro.api`` stays cheap.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

class JobError(ValueError):
    """A user-facing job configuration error: bad spec, unknown kind or
    dataset, missing snapshot, malformed query. The CLI converts these to
    clean exits; anything else (a real defect) propagates with a
    traceback."""


# ---------------------------------------------------------------------------
# Kind strings (also the snapshot ``meta["trainer"]`` strings)
# ---------------------------------------------------------------------------

LP_MEM = "lp-mem"
LP_DISK = "lp-disk"
LP_PIPELINED = "lp-pipelined"
NC_MEM = "nc-mem"
NC_DISK = "nc-disk"
LP_STREAM = "lp-stream"
SERVE = "serve"
SERVE_FLEET = "serve-fleet"
STREAM = "stream"

#: Snapshot kinds the link prediction serving loader accepts.
LP_SNAPSHOT_KINDS: Tuple[str, ...] = (LP_MEM, LP_DISK, LP_PIPELINED)
#: Snapshot kinds the node classification serving loader accepts.
NC_SNAPSHOT_KINDS: Tuple[str, ...] = (NC_MEM, NC_DISK)


@dataclass(frozen=True)
class KindInfo:
    """Registry metadata for one job kind."""

    kind: str
    description: str
    #: Spec sections this kind reads (in schema/display order).
    sections: Tuple[str, ...]
    #: ``"section.field" -> value`` fills for fields left ``None``.
    defaults: Dict[str, Any]


_LP_TRAIN_DEFAULTS = {
    "data.dataset": "fb15k237",
    "data.seed": 0,
    "model.encoder": "graphsage",
    "model.fanouts": (10,),
    "train.batch_size": 512,
    "train.epochs": 3,
    "train.eval_every": 1,
}

_NC_TRAIN_DEFAULTS = {
    "data.dataset": "papers100m-mini",
    "model.encoder": "graphsage",
    "model.fanouts": (10, 5),
    "train.batch_size": 256,
    "train.epochs": 5,
    "train.eval_every": 1,
}

_STREAM_DEFAULTS = {
    "data.dataset": "freebase86m-mini",
    "data.seed": 0,
    "model.encoder": "none",
    "model.fanouts": (),
    "train.batch_size": 512,
    "train.epochs": 1,
    "train.eval_every": 0,
    "storage.partitions": 16,
    "storage.buffer": 4,
}

REGISTRY: Dict[str, KindInfo] = {}


def _declare(info: KindInfo) -> None:
    REGISTRY[info.kind] = info


_declare(KindInfo(
    kind=LP_MEM,
    description="in-memory link prediction trainer (M-GNN_Mem)",
    sections=("data", "model", "train", "checkpoint", "telemetry"),
    defaults=dict(_LP_TRAIN_DEFAULTS)))
_declare(KindInfo(
    kind=LP_DISK,
    description="out-of-core link prediction (partition buffer + COMET/BETA)",
    sections=("data", "model", "train", "storage", "checkpoint", "telemetry"),
    defaults={**_LP_TRAIN_DEFAULTS,
              "storage.partitions": 16, "storage.buffer": 4}))
_declare(KindInfo(
    kind=LP_PIPELINED,
    description="threaded mini-batch pipeline link prediction (Figure 2)",
    sections=("data", "model", "train", "checkpoint", "telemetry"),
    defaults=dict(_LP_TRAIN_DEFAULTS)))
_declare(KindInfo(
    kind=NC_MEM,
    description="in-memory node classification trainer",
    sections=("data", "model", "train", "checkpoint", "telemetry"),
    defaults=dict(_NC_TRAIN_DEFAULTS)))
_declare(KindInfo(
    kind=NC_DISK,
    description="out-of-core node classification (training-node caching)",
    sections=("data", "model", "train", "storage", "checkpoint", "telemetry"),
    defaults={**_NC_TRAIN_DEFAULTS,
              "storage.partitions": 16, "storage.buffer": 8}))
_declare(KindInfo(
    kind=LP_STREAM,
    description="continual training over a live stream (refresh on compact)",
    sections=("data", "model", "train", "storage", "stream", "checkpoint",
              "telemetry"),
    defaults={**_STREAM_DEFAULTS, "stream.refresh": True}))
_declare(KindInfo(
    kind=SERVE,
    description="out-of-core query serving over a trained snapshot",
    sections=("data", "storage", "serve", "telemetry"),
    defaults={"storage.buffer": 4, "data.feat_dim": 32, "data.seed": 0,
              "serve.ann": True}))
_declare(KindInfo(
    kind=SERVE_FLEET,
    description="multi-worker serving fleet behind a partition-affinity "
                "HTTP gateway",
    sections=("data", "storage", "serve", "fleet", "telemetry"),
    defaults={"storage.buffer": 4, "data.feat_dim": 32, "data.seed": 0,
              "serve.ann": True}))
_declare(KindInfo(
    kind=STREAM,
    description="live-graph streaming driver (ingest, compact, query)",
    sections=("data", "model", "train", "storage", "stream", "checkpoint",
              "telemetry"),
    defaults=dict(_STREAM_DEFAULTS)))

#: Every runnable job kind, in display order.
JOB_KINDS: Tuple[str, ...] = tuple(REGISTRY)


def kind_info(kind: str) -> KindInfo:
    try:
        return REGISTRY[kind]
    except KeyError:
        raise JobError(f"unknown job kind {kind!r}; "
                       f"choose from {list(JOB_KINDS)}") from None


def job_kinds() -> Tuple[str, ...]:
    return JOB_KINDS


# ---------------------------------------------------------------------------
# Factory binding (populated by repro.api.jobs)
# ---------------------------------------------------------------------------

JobFactory = Callable[..., Any]

_FACTORIES: Dict[str, JobFactory] = {}


def bind(kind: str, factory: JobFactory) -> JobFactory:
    """Attach the factory that builds ``kind``'s Job (used by jobs.py)."""
    kind_info(kind)   # unknown kinds fail loudly at bind time
    _FACTORIES[kind] = factory
    return factory


def get_factory(kind: str) -> JobFactory:
    """The Job factory for ``kind`` (loads the implementations on demand)."""
    kind_info(kind)
    if kind not in _FACTORIES:
        importlib.import_module("repro.api.jobs")
    if kind not in _FACTORIES:
        raise JobError(f"job kind {kind!r} is declared but no factory is "
                       f"bound for it (missing registry.bind in jobs.py)")
    return _FACTORIES[kind]
