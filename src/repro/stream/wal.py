"""Write-ahead journal for the graph delta log.

Every acknowledged stream mutation — an edge insert/delete batch or a
node-growth step — is framed and written here *before* the in-memory
delta log acknowledges it, closing the window where a crash between an
append and the next spill/snapshot silently lost the suffix. Frames are
self-describing and self-checking:

``[magic "WFRM" | kind u8 | seq_lo u64 | count u32 | paylen u32 | crc u32
| payload]``

* ``EDGES`` frames carry an ``(n, 6)`` int64 payload of columns
  ``(op, src, dst, rel, bi, bj)``; the events' sequence numbers are
  ``seq_lo .. seq_lo + n`` (the delta log assigns them densely, so they
  need not be stored per event).
* ``NODES`` frames carry ``(old_total, new_total)`` — node rows
  themselves are a deterministic function of ``(stream seed, node id)``
  (:meth:`~repro.stream.live.LiveGraph._init_rows`), so replay only
  needs the count to regenerate them bit-identically. ``seq_lo`` records
  the log position, which totally orders node growth against edge frames.

The crc covers the header fields and the payload, so a torn tail write
(the crash happened mid-frame) is detected on recovery, **dropped
loudly**, and physically truncated; a bad frame that is *not* the tail
of the final segment is real corruption and raises.

Durability knobs: ``fsync_every=1`` fsyncs each frame before the append
returns (no acknowledged event can be lost); ``fsync_every=N`` group-
commits every N frames, trading a bounded ack'd-loss window for
throughput. Segments rotate at ``segment_bytes`` and are deleted by
:meth:`truncate_covered` only once everything in them is durable
elsewhere — edge frames below the spill/compaction horizon, node frames
at or below the node count recorded in ``wal-meta.json`` (which is
written atomically *before* any segment is unlinked).
"""

from __future__ import annotations

import json
import logging
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs.registry import get_registry
from ..storage.atomic import atomic_write_json, fsync_dir

logger = logging.getLogger(__name__)

MAGIC = b"WFRM"
KIND_EDGES = 1
KIND_NODES = 2

_HEADER = struct.Struct("<4sBQII")   # magic, kind, seq_lo, count, paylen
_CRC = struct.Struct("<I")
_NODES_PAYLOAD = struct.Struct("<qq")

_EDGE_COLS = 6                        # op, src, dst, rel, bi, bj

META_NAME = "wal-meta.json"


class WalCorruption(RuntimeError):
    """A damaged frame that is *not* an expected torn tail."""


@dataclass
class WalFrame:
    """One recovered frame, already decoded."""
    kind: int
    seq_lo: int
    count: int
    edges: Optional[np.ndarray] = None          # (n, 6) int64 for EDGES
    node_totals: Optional[Tuple[int, int]] = None  # (old, new) for NODES

    @property
    def seq_end(self) -> int:
        return self.seq_lo + (self.count if self.kind == KIND_EDGES else 0)


@dataclass
class _SegmentInfo:
    """Truncation bookkeeping for one closed (or scanned) segment."""
    index: int
    path: Path
    end_seq: int = 0      # max seq_lo + count over its edge frames
    max_nodes: int = 0    # max new_total over its node frames

    def note(self, frame: WalFrame) -> None:
        self.end_seq = max(self.end_seq, frame.seq_end, frame.seq_lo)
        if frame.kind == KIND_NODES:
            self.max_nodes = max(self.max_nodes, frame.node_totals[1])


@dataclass
class WalRecovery:
    """Result of scanning a WAL directory after a (possible) crash."""
    meta: Dict[str, int]
    frames: List[WalFrame] = field(default_factory=list)
    segments: List[_SegmentInfo] = field(default_factory=list)
    next_segment: int = 0
    torn_frames: int = 0
    torn_bytes: int = 0

    @property
    def covered_seq(self) -> int:
        return int(self.meta.get("covered_seq", 0))

    @property
    def num_nodes(self) -> int:
        return int(self.meta.get("num_nodes", 0))

    @property
    def max_seq(self) -> int:
        """Highest event seq recorded anywhere (meta or frames)."""
        seq = self.covered_seq
        for frame in self.frames:
            seq = max(seq, frame.seq_end)
        return seq

    @property
    def max_nodes_recorded(self) -> int:
        nodes = self.num_nodes
        for frame in self.frames:
            if frame.kind == KIND_NODES:
                nodes = max(nodes, frame.node_totals[1])
        return nodes


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.log"


def _valid_frame_after(data: bytes, start: int) -> bool:
    """True if any byte range at/after ``start`` decodes as a CRC-valid
    frame — the signature that a bad frame sits *before* intact data."""
    offset = data.find(MAGIC, start)
    while offset != -1:
        header = data[offset:offset + _HEADER.size]
        if len(header) == _HEADER.size:
            magic, kind, _, _, paylen = _HEADER.unpack(header)
            if kind in (KIND_EDGES, KIND_NODES):
                crc_off = offset + _HEADER.size
                body_off = crc_off + _CRC.size
                if body_off + paylen <= len(data):
                    (crc,) = _CRC.unpack(data[crc_off:body_off])
                    payload = data[body_off:body_off + paylen]
                    if zlib.crc32(header[4:] + payload) == crc:
                        return True
        offset = data.find(MAGIC, offset + 1)
    return False


def _parse_segment(path: Path, is_last: bool) -> Tuple[List[WalFrame], int]:
    """Decode a segment's frames; returns (frames, torn_bytes_truncated).

    A short/corrupt frame at the tail of the *final* segment is the
    expected signature of a crash mid-write: it is logged, counted, and
    physically truncated away so a later append never interleaves with
    garbage. Anywhere else it raises :class:`WalCorruption`.
    """
    frames: List[WalFrame] = []
    data = path.read_bytes()
    offset = 0
    bad_at: Optional[int] = None
    reason = ""
    while offset < len(data):
        header = data[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            bad_at, reason = offset, "short header"
            break
        magic, kind, seq_lo, count, paylen = _HEADER.unpack(header)
        if magic != MAGIC or kind not in (KIND_EDGES, KIND_NODES):
            bad_at, reason = offset, f"bad magic/kind {magic!r}/{kind}"
            break
        crc_off = offset + _HEADER.size
        body_off = crc_off + _CRC.size
        if body_off + paylen > len(data):
            bad_at, reason = offset, "short payload"
            break
        (crc,) = _CRC.unpack(data[crc_off:body_off])
        payload = data[body_off:body_off + paylen]
        if zlib.crc32(header[4:] + payload) != crc:
            bad_at, reason = offset, "crc mismatch"
            break
        if kind == KIND_EDGES:
            arr = np.frombuffer(payload, dtype=np.int64)
            if len(arr) != count * _EDGE_COLS:
                bad_at, reason = offset, "payload/count mismatch"
                break
            frames.append(WalFrame(kind=kind, seq_lo=seq_lo, count=count,
                                   edges=arr.reshape(count, _EDGE_COLS)))
        else:
            old_total, new_total = _NODES_PAYLOAD.unpack(payload)
            frames.append(WalFrame(kind=kind, seq_lo=seq_lo, count=count,
                                   node_totals=(old_total, new_total)))
        offset = body_off + paylen
    if bad_at is None:
        return frames, 0
    if not is_last:
        raise WalCorruption(
            f"corrupt WAL frame in non-final segment {path.name} at byte "
            f"{bad_at} ({reason}) — the journal is damaged beyond a torn "
            f"tail; refusing to recover silently")
    # A torn *write* can only damage the physical tail: frames are appended
    # sequentially, so a bad frame with another decodable frame after it is
    # media corruption of acknowledged data, not a crash artifact — dropping
    # it would silently lose durable events.
    if _valid_frame_after(data, bad_at + 1):
        raise WalCorruption(
            f"corrupt WAL frame mid-segment {path.name} at byte {bad_at} "
            f"({reason}) with intact frames after it — the journal is "
            f"damaged beyond a torn tail; refusing to recover silently")
    torn = len(data) - bad_at
    logger.warning(
        "dropping torn WAL tail: %d byte(s) at offset %d of %s (%s) — "
        "these events were never acknowledged durable",
        torn, bad_at, path.name, reason)
    with open(path, "rb+") as fh:
        fh.truncate(bad_at)
        fh.flush()
        os.fsync(fh.fileno())
    return frames, torn


class WriteAheadLog:
    """Framed, fsync'd, segment-rotating journal (see module docstring).

    ``fault_hook`` (test-only) fires named crash points:
    ``wal-frame-mid`` after the first half of a frame has been flushed to
    disk but before the rest, and ``wal-truncate-pre`` after the meta
    write but before covered segments are unlinked.
    """

    def __init__(self, wal_dir: os.PathLike, fsync_every: int = 1,
                 segment_bytes: int = 4 << 20,
                 resume: Optional[WalRecovery] = None) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self.segment_bytes = int(segment_bytes)
        self.fault_hook: Optional[Callable[[str], None]] = None
        self._closed_segments: List[_SegmentInfo] = []
        self._meta: Dict[str, int] = {"covered_seq": 0, "num_nodes": 0}
        index = 0
        if resume is not None:
            self._closed_segments = list(resume.segments)
            self._meta = dict(resume.meta)
            index = resume.next_segment
        self._segment = _SegmentInfo(index, self.wal_dir / _segment_name(index))
        self._fh = open(self._segment.path, "ab")
        self._cur_bytes = self._segment.path.stat().st_size
        self._pending = 0            # frames written since the last fsync
        self._synced_nodes = int(self._meta.get("num_nodes", 0))
        self._latest_nodes = self._synced_nodes
        # Telemetry.
        self.frames_written = 0
        self.edge_events = 0
        self.node_events = 0
        self.syncs = 0
        self.bytes_written = 0
        self.rotations = 0
        self.truncated_segments = 0

    # -- recovery ------------------------------------------------------
    @classmethod
    def scan(cls, wal_dir: os.PathLike) -> WalRecovery:
        """Read back everything durable in ``wal_dir``.

        Returns the meta horizon plus every decodable frame in segment
        order (frame order within a segment is append order, so replaying
        the returned list front to back reproduces the acknowledged
        history). Torn tail frames are dropped and truncated; see
        :func:`_parse_segment`.
        """
        wal_dir = Path(wal_dir)
        meta: Dict[str, int] = {"covered_seq": 0, "num_nodes": 0}
        meta_path = wal_dir / META_NAME
        if meta_path.exists():
            meta.update(json.loads(meta_path.read_text()))
        recovery = WalRecovery(meta=meta)
        if not wal_dir.is_dir():
            return recovery
        paths = sorted(wal_dir.glob("wal-*.log"))
        for pos, path in enumerate(paths):
            index = int(path.stem.split("-")[1])
            info = _SegmentInfo(index, path)
            frames, torn = _parse_segment(path, is_last=(pos == len(paths) - 1))
            for frame in frames:
                info.note(frame)
            recovery.frames.extend(frames)
            recovery.segments.append(info)
            recovery.torn_bytes += torn
            recovery.torn_frames += 1 if torn else 0
            recovery.next_segment = index + 1
        return recovery

    # -- append path ---------------------------------------------------
    def append_edges(self, seq_lo: int, op: int, src: np.ndarray,
                     dst: np.ndarray, rel: np.ndarray, bi: np.ndarray,
                     bj: np.ndarray) -> None:
        n = len(src)
        if n == 0:
            return
        payload = np.empty((n, _EDGE_COLS), dtype=np.int64)
        payload[:, 0] = op
        payload[:, 1] = src
        payload[:, 2] = dst
        payload[:, 3] = rel
        payload[:, 4] = bi
        payload[:, 5] = bj
        self._write_frame(KIND_EDGES, seq_lo, n, payload.tobytes())
        self.edge_events += n

    def append_nodes(self, seq_lo: int, old_total: int,
                     new_total: int) -> None:
        payload = _NODES_PAYLOAD.pack(int(old_total), int(new_total))
        self._latest_nodes = max(self._latest_nodes, int(new_total))
        self._write_frame(KIND_NODES, seq_lo, int(new_total - old_total),
                          payload)
        self.node_events += int(new_total - old_total)

    def _write_frame(self, kind: int, seq_lo: int, count: int,
                     payload: bytes) -> None:
        header = _HEADER.pack(MAGIC, kind, int(seq_lo), int(count),
                              len(payload))
        crc = zlib.crc32(header[4:] + payload)
        buf = header + _CRC.pack(crc) + payload
        if self.fault_hook is not None:
            # Crash-injection path: land the first half on disk so the
            # torn-tail recovery logic has a real partial frame to chew on.
            half = len(buf) // 2
            self._fh.write(buf[:half])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.fault_hook("wal-frame-mid")
            self._fh.write(buf[half:])
        else:
            self._fh.write(buf)
        self._segment.note(WalFrame(
            kind=kind, seq_lo=seq_lo, count=count,
            node_totals=(0, self._latest_nodes) if kind == KIND_NODES
            else None))
        self._cur_bytes += len(buf)
        self.bytes_written += len(buf)
        self.frames_written += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.sync()
        if self._cur_bytes >= self.segment_bytes:
            self._rotate()

    def sync(self) -> None:
        """Group-commit flush: after this returns, every frame written so
        far survives a crash."""
        if self._pending == 0:
            return
        t0 = time.perf_counter()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        get_registry().histogram("stream.wal.fsync_ms").observe(
            1000.0 * (time.perf_counter() - t0))
        self._pending = 0
        self._synced_nodes = self._latest_nodes
        self.syncs += 1

    def _rotate(self) -> None:
        self.sync()
        self._fh.close()
        self._closed_segments.append(self._segment)
        index = self._segment.index + 1
        self._segment = _SegmentInfo(index, self.wal_dir / _segment_name(index))
        self._fh = open(self._segment.path, "ab")
        fsync_dir(self.wal_dir)
        self._cur_bytes = 0
        self.rotations += 1

    # -- truncation ----------------------------------------------------
    def truncate_covered(self, covered_seq: int,
                         num_nodes: Optional[int] = None) -> int:
        """Delete closed segments whose entire contents are durable
        elsewhere: edge frames with ``seq_end <= covered_seq`` (merged by
        compaction or captured by a fsync'd spill file) and node frames
        whose totals are at or below the node count being recorded.

        The meta file — the durable claim that "events below
        ``covered_seq`` and nodes up to ``num_nodes`` need no journal" —
        is written atomically *before* any unlink, so a crash between the
        two merely leaves deletable segments behind (replay of already-
        covered frames is suppressed by the horizon, never double-applied).
        """
        covered_seq = int(covered_seq)
        if num_nodes is None:
            num_nodes = self._synced_nodes
        num_nodes = max(int(num_nodes), int(self._meta.get("num_nodes", 0)))
        covered_seq = max(covered_seq, int(self._meta.get("covered_seq", 0)))
        doomed = [seg for seg in self._closed_segments
                  if seg.end_seq <= covered_seq and seg.max_nodes <= num_nodes]
        self._meta = {"covered_seq": covered_seq, "num_nodes": num_nodes}
        atomic_write_json(self.wal_dir / META_NAME, self._meta)
        if self.fault_hook is not None:
            self.fault_hook("wal-truncate-pre")
        if not doomed:
            return 0
        for seg in doomed:
            seg.path.unlink(missing_ok=True)
        fsync_dir(self.wal_dir)
        self._closed_segments = [seg for seg in self._closed_segments
                                 if seg not in doomed]
        self.truncated_segments += len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    @property
    def covered_seq(self) -> int:
        return int(self._meta.get("covered_seq", 0))

    def close(self) -> None:
        self.sync()
        self._fh.close()

    def stats(self) -> Dict[str, int]:
        return {"frames": self.frames_written,
                "edge_events": self.edge_events,
                "node_events": self.node_events,
                "syncs": self.syncs,
                "bytes_written": self.bytes_written,
                "rotations": self.rotations,
                "segments": len(self._closed_segments) + 1,
                "truncated_segments": self.truncated_segments,
                "covered_seq": self.covered_seq,
                "fsync_every": self.fsync_every}
