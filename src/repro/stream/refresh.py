"""Continual training: fine-tune embeddings for delta-touched partitions.

A streamed graph drifts away from the embeddings trained on its base
snapshot. :class:`ContinualTrainer` closes that gap incrementally between
compactions: each :meth:`refresh` takes the edge buckets touched by delta
events since the previous refresh, greedily packs their partition pairs
into resident sets that fit the partition buffer, and runs the standard
mini-batch lifecycle (the same :class:`~repro.train.link_prediction.
_BatchStep` the offline trainers use) over each set's touched buckets —
sampling neighborhoods from the *live* composed view, negatives restricted
to resident nodes, row-sparse Adagrad updates applied through the buffer.

Because the sampler index, the buffer, and the batch step are byte-for-byte
the machinery of :class:`~repro.train.link_prediction.
DiskLinkPredictionTrainer`, a refresh over a streamed graph is
bit-identical to the same refresh over an offline rebuild of the final
edge list given equal tables, parameters, and RNG streams — the property
``tests/test_streaming.py`` enforces.

Snapshots extend the crash-safe checkpoint subsystem: alongside model and
table state they record the **log position** (sequence / compaction /
refresh cursors), so a restarted stream knows exactly which events its
durable state already reflects and replays only the suffix.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import registry as job_registry
from ..core.sampler import DenseSampler
from ..nn.optim import RowAdagrad
from ..storage.buffer import PartitionBuffer
from ..train.checkpoint import (SnapshotManager, _config_to_dict,
                                pack_model, pack_optimizer, resolve_snapshot,
                                rng_state, set_rng_state, unpack_model,
                                unpack_optimizer, validate_meta)
from ..train.evaluation import EpochRecord
from ..train.hooks import ListenerHooks, ProgressListener
from ..train.link_prediction import (LinkPredictionConfig,
                                     LinkPredictionModel, _BatchStep)
from ..train.negative_sampling import UniformNegativeSampler
from .live import LiveGraph


def pack_pairs(pairs: Sequence[Tuple[int, int]], capacity: int
               ) -> List[Tuple[List[int], List[Tuple[int, int]]]]:
    """Greedily pack partition pairs into resident sets of <= capacity.

    Returns ``(partitions, pairs)`` groups covering every input pair exactly
    once; each group's partitions fit the buffer together. Greedy first-fit
    over the sorted pairs — not optimal, but deterministic and linear.
    """
    if capacity < 2:
        for i, j in pairs:
            if i != j:
                raise ValueError("buffer capacity < 2 cannot co-locate a "
                                 f"cross-partition bucket {(i, j)}")
    remaining = sorted({(int(i), int(j)) for i, j in pairs})
    groups: List[Tuple[List[int], List[Tuple[int, int]]]] = []
    while remaining:
        parts: set = set()
        batch: List[Tuple[int, int]] = []
        rest: List[Tuple[int, int]] = []
        for i, j in remaining:
            need = {i, j} - parts
            if len(parts) + len(need) <= capacity:
                parts |= need
                batch.append((i, j))
            else:
                rest.append((i, j))
        groups.append((sorted(parts), batch))
        remaining = rest
    return groups


class ContinualTrainer(ListenerHooks):
    """Streams embedding updates into a live graph between compactions.

    Parameters
    ----------
    live:
        The :class:`LiveGraph` to follow. The trainer registers bucket /
        growth listeners so its sampler index and buffer stay coherent
        with every ingest.
    config:
        Standard :class:`LinkPredictionConfig` (model shape, batch size,
        learning rates, seed).
    num_relations:
        Relation vocabulary size for the decoder.
    buffer_capacity:
        Physical partitions resident during a refresh.
    checkpoint_dir / checkpoint_every / checkpoint_compress:
        Snapshot root, auto-snapshot cadence in *refreshes* (0 = manual
        only), and on-disk compression of the array payload.
    """

    KIND = job_registry.LP_STREAM

    def __init__(self, live: LiveGraph,
                 config: Optional[LinkPredictionConfig] = None,
                 num_relations: int = 1, buffer_capacity: int = 4,
                 checkpoint_dir: Optional[Path] = None,
                 checkpoint_every: int = 0,
                 checkpoint_compress: bool = False,
                 listeners: Optional[Sequence[ProgressListener]] = None) -> None:
        self._init_hooks(listeners)
        self.live = live
        self.config = config or LinkPredictionConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        self.model = LinkPredictionModel(cfg, num_relations, rng=self.rng)
        self.buffer = PartitionBuffer(live.node_store, buffer_capacity,
                                      optimizer=RowAdagrad(lr=cfg.embedding_lr))
        self.sampler = DenseSampler.from_partitions(
            live.scheme, live.bucket_endpoints, (), list(cfg.fanouts),
            directions=cfg.directions, rng=self.rng)
        self.buffer.add_swap_listener(
            lambda added, removed: self.sampler.update_graph(added, removed))
        live.add_bucket_listener(self.sampler.index.refresh_buckets)
        # The trainer's own touched-pair accumulator: unlike the log (which
        # forgets merged events at compaction), this survives compactions,
        # so a post-compaction refresh still knows what drifted. The
        # listener closes over the attribute, not the set object — resume()
        # replaces the contents and must not orphan the subscription.
        self._pending_pairs: set = set()
        live.add_bucket_listener(
            lambda pairs: self._pending_pairs.update(pairs))
        live.add_growth_listener(self._on_growth)
        live.add_compact_listener(self.buffer.refresh_from_store)
        self.negatives = UniformNegativeSampler(live.num_nodes,
                                                cfg.num_negatives, rng=self.rng)
        self.step_runner = _BatchStep(self.model, cfg, self.rng)
        self.snapshots = (SnapshotManager(checkpoint_dir,
                                          compress=checkpoint_compress)
                          if checkpoint_dir is not None else None)
        self.checkpoint_every = int(checkpoint_every)
        self.refreshes = 0
        self._refreshed_seq = live.log.compacted_seq

    # ------------------------------------------------------------------
    def _on_growth(self, new_scheme) -> None:
        self.sampler.index.extend_nodes(new_scheme)
        # Only the last partition's rows changed (the growth rule).
        self.buffer.refresh_from_store(parts=[new_scheme.num_partitions - 1])
        self.negatives.num_nodes = new_scheme.num_nodes

    @property
    def refreshed_seq(self) -> int:
        """Events below this sequence number have been trained on."""
        return self._refreshed_seq

    # ------------------------------------------------------------------
    def refresh(self, pairs: Optional[Sequence[Tuple[int, int]]] = None
                ) -> EpochRecord:
        """One fine-tuning pass over the delta-touched edge buckets.

        ``pairs`` defaults to every bucket with a delta event since the
        previous refresh (tracked across compactions). The refresh trains
        on those buckets' *entire composed content* (old and new edges —
        new edges are learned in the context of their surviving neighbors,
        not in isolation). Passing explicit ``pairs`` trains exactly those
        buckets and leaves the pending accumulator untouched.
        """
        live = self.live
        cfg = self.config
        explicit = pairs is not None
        if not explicit:
            pairs = sorted(self._pending_pairs)
        t0 = time.perf_counter()
        record = EpochRecord(epoch=self.refreshes, loss=0.0, seconds=0.0,
                             metric=0.0)
        losses: List[float] = []
        trained: set = set()
        for parts, group_pairs in pack_pairs(pairs, self.buffer.capacity):
            trained.update(parts)
            # set_partitions writes the previous group's dirty partitions
            # back to the shared store — under the table-version seqlock,
            # so a concurrent serving query detects the write window and
            # retries instead of reading a half-written row. (Gradient
            # application between swaps touches only this trainer's
            # private slab.)
            with live.table_write():
                self.buffer.set_partitions(parts)
            self.negatives.set_allowed(self.buffer.resident_nodes())
            chunks = [live.bucket_edges(i, j) for i, j in group_pairs]
            edges = np.concatenate(chunks, axis=0) if chunks else None
            if edges is None or len(edges) == 0:
                continue
            order = self.rng.permutation(len(edges))
            for start in range(0, len(order), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                loss = self.step_runner.run(edges[idx], self.sampler,
                                            self.negatives,
                                            self.buffer.gather,
                                            self.buffer.apply_gradients,
                                            record)
                losses.append(loss)
        # Land the updates and tell the stream: the snapshot table must
        # reflect the refresh, and read-only serving buffers over the same
        # live graph must re-read the retrained partitions. The row writes
        # happen inside a table-version write window (queries racing them
        # retry); between the flush and the re-sync a reader serves its
        # still-consistent pre-refresh rows.
        with live.table_write():
            self.buffer.flush()
        live.notify_table_updated(sorted(trained))
        if not explicit:
            # The cursor only advances when the default full-coverage pass
            # ran; an explicit-pairs refresh may leave other touched
            # buckets untrained, and recording their events as refreshed
            # would let a resume skip them forever.
            self._pending_pairs.clear()
            self._refreshed_seq = live.log.seq
        self.refreshes += 1
        record.seconds = time.perf_counter() - t0
        record.loss = float(np.mean(losses)) if losses else 0.0
        self._emit("refresh", trainer=self.KIND, refreshes=self.refreshes,
                   loss=record.loss, seconds=record.seconds,
                   num_batches=record.num_batches)
        if (self.snapshots is not None and self.checkpoint_every
                and self.refreshes % self.checkpoint_every == 0):
            self.save_snapshot()
        return record

    # ------------------------------------------------------------------
    def _store_fingerprints(self) -> Dict[str, str]:
        return {"node": self.live.node_store.fingerprint(),
                "edge": self.live.edge_store.fingerprint()}

    def save_snapshot(self) -> Path:
        """Atomic snapshot of model, table, and the stream log position."""
        if self.snapshots is None:
            raise RuntimeError("trainer was built without a checkpoint_dir")
        self.buffer.flush()
        self.live.node_store.flush()
        arrays = {"node_table": self.live.node_store.read_all()}
        state = self.live.node_store.read_all_state()
        if state is not None:
            arrays["node_state"] = state
        pack_model(self.model, arrays)
        pack_optimizer("gnn_opt", self.step_runner.gnn_optimizer, arrays)
        log = self.live.log
        meta = {"trainer": self.KIND,
                "stream": {"seq": int(log.seq),
                           "compacted_seq": int(log.compacted_seq),
                           "refreshed_seq": int(self._refreshed_seq),
                           "num_nodes": int(self.live.num_nodes),
                           "nodes_added": int(self.live.nodes_added),
                           "pending_pairs": sorted(
                               [int(i), int(j)]
                               for i, j in self._pending_pairs)},
                "rng": rng_state(self.rng),
                "stores": self._store_fingerprints(),
                "config": _config_to_dict(self.config)}
        path = self.snapshots.save(log.seq, meta, arrays)
        self._emit("snapshot", trainer=self.KIND, path=str(path),
                   seq=int(log.seq))
        return path

    def resume(self, path: Optional[Path] = None) -> dict:
        """Restore a snapshot; the caller replays events from
        ``meta["stream"]["compacted_seq"]`` onward from its event source —
        events past the compaction horizon were still log-only at snapshot
        time and do not survive a process restart (the snapshot's store
        fingerprints pin exactly the compacted base that horizon refers
        to). In-process resumes keep the live log's own numbering; after a
        restart the fresh log is fast-forwarded to the horizon so stream
        cursors stay in one consistent numbering.
        """
        meta, arrays = resolve_snapshot(path, self.snapshots)
        validate_meta(meta, self.KIND, stores=self._store_fingerprints(),
                      config=self.config)
        stream = meta["stream"]
        self.buffer.drop_all()
        self.live.node_store.restore(arrays["node_table"],
                                     arrays.get("node_state"))
        unpack_model(self.model, arrays)
        unpack_optimizer("gnn_opt", self.step_runner.gnn_optimizer, arrays)
        set_rng_state(self.rng, meta["rng"])
        log = self.live.log
        horizon = int(stream["compacted_seq"])
        if log.seq < horizon:      # fresh log after a restart: align
            log.seq = horizon
            log.compacted_seq = horizon
        self._refreshed_seq = min(int(stream["refreshed_seq"]), log.seq)
        self._pending_pairs.clear()
        self._pending_pairs.update(
            (int(i), int(j)) for i, j in stream.get("pending_pairs", []))
        return meta
