"""Compaction: merge the delta log into the base partitioned stores.

The compactor folds every live event into the base
:class:`~repro.storage.edge_store.EdgeBucketStore`: each bucket's new base
content is exactly the composed view :meth:`LiveGraph.bucket_edges` already
serves (base survivors in base order, then surviving insertions in arrival
order), so compaction is **behaviour-preserving by construction** — a
query, sample, or training step sees bit-identical data before and after.
The node table needs no merge (streamed nodes grow it at ingest time); it
is flushed so the whole post-compaction state is durable.

The rewrite reuses the snapshot subsystem's atomicity discipline
(write-temp + fsync + rename, via
:meth:`EdgeBucketStore.rewrite_buckets`): a crash mid-compaction leaves
either the old bucket file or the new one, never a torn mix. The
compaction *horizon* travels with the rewrite — it is recorded in the
staged layout sidecar that commits atomically with the bucket-file
rename — so recovery never replays journal events a durable compaction
already merged. After the rename the log forgets everything below the
horizon (:meth:`GraphDeltaLog.mark_compacted` — bounded history), store
fingerprints now reflect the new layout, and registered compact listeners
(partition buffers, serving engines) re-sync.

:class:`BackgroundCompactor` runs the same merge on a worker thread with
a staleness trigger, retry with exponential backoff + jitter on failure,
and graceful degradation: a failing compaction never takes the service
down — the overlay keeps serving, the failure is logged and surfaced
through ``LiveGraph.health()``, and the next attempt waits out the
backoff.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .live import LiveGraph

logger = logging.getLogger(__name__)

CompactionListener = Callable[[str, dict], None]


@dataclass
class CompactionReport:
    """What one compaction did (telemetry for the CLI and benchmark)."""

    merged_events: int
    num_edges: int          # base edges after the merge
    seconds: float
    fingerprints: Dict[str, str]


class Compactor:
    """Merges a :class:`LiveGraph`'s delta log into its base stores."""

    def __init__(self, live: LiveGraph) -> None:
        self.live = live
        self.compactions = 0
        self.total_merged_events = 0

    def compact(self) -> CompactionReport:
        """Fold all pending events into the base edge buckets, atomically.

        Safe to call with resident partition buffers and live adjacency
        indexes attached: their in-memory composed state already equals the
        post-compaction base, and the compact listeners re-read from the
        new base anyway (defense against drift, and the hook any lossy
        future merge policy would rely on).

        Runs under the structural mutex *and* the exclusive side of the
        shared/exclusive lock: ingest and queries drain before the base
        swap and resume against the new base immediately after.
        """
        live = self.live
        t0 = time.perf_counter()
        with live.lock, live.rw.exclusive():
            upto = live.log.seq
            merged = upto - live.log.compacted_seq
            p = live.num_partitions
            buckets = (live.bucket_edges(i, j, upto_seq=upto, record_io=False)
                       for i in range(p) for j in range(p))
            live.edge_store.rewrite_buckets(buckets, scheme=live.scheme,
                                            compacted_seq=upto)
            live.node_store.flush()
            live.log.mark_compacted(upto)
            live.notify_compacted()
        self.compactions += 1
        self.total_merged_events += merged
        return CompactionReport(
            merged_events=merged,
            num_edges=live.edge_store.num_edges,
            seconds=time.perf_counter() - t0,
            fingerprints={"node": live.node_store.fingerprint(),
                          "edge": live.edge_store.fingerprint()})


class BackgroundCompactor:
    """Runs compaction on a worker thread so ingest and serving never wait.

    Parameters
    ----------
    compactor:
        The synchronous :class:`Compactor` to drive.
    staleness_threshold:
        Pending-event count that triggers a merge.
    poll_interval:
        Seconds between staleness checks while idle.
    max_backoff:
        Ceiling of the exponential retry backoff after failures.
    seed:
        Seeds the backoff jitter (deterministic in tests).

    Failure semantics — *graceful degradation*: a compaction error is
    caught, logged, counted, and surfaced via :meth:`health` and the
    ``compaction-failed`` listener event; the live graph keeps serving
    from the overlay (which is exactly what it does between compactions
    anyway), and the next attempt waits ``backoff * (1 + jitter)``
    seconds, doubling per consecutive failure up to ``max_backoff``. A
    success resets the backoff and emits ``compaction-done``.
    """

    def __init__(self, compactor: Compactor, staleness_threshold: int = 1024,
                 poll_interval: float = 0.05, max_backoff: float = 30.0,
                 seed: int = 0) -> None:
        self.compactor = compactor
        self.staleness_threshold = int(staleness_threshold)
        self.poll_interval = float(poll_interval)
        self.max_backoff = float(max_backoff)
        self._rng = np.random.default_rng(seed)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._mutex = threading.Lock()
        self._listeners: List[CompactionListener] = []
        self._state = "idle"
        self._consecutive_failures = 0
        self._last_error: Optional[str] = None
        self._last_report: Optional[CompactionReport] = None
        self._next_attempt_at = 0.0
        self.runs = 0
        self.failures = 0
        self.compactor.live.register_health("compaction", self.health)

    # ------------------------------------------------------------------
    def add_listener(self, fn: CompactionListener) -> None:
        """``fn(event, info)`` with ``event`` one of ``compaction-done`` /
        ``compaction-failed``."""
        self._listeners.append(fn)

    def _emit(self, event: str, info: dict) -> None:
        for fn in self._listeners:
            try:
                fn(event, info)
            except Exception:       # listeners must not kill the worker
                logger.exception("compaction listener failed")

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundCompactor":
        if self._thread is not None:
            raise RuntimeError("background compactor already started")
        self._thread = threading.Thread(target=self._run,
                                        name="bg-compactor", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_compact: bool = False) -> None:
        """Graceful shutdown; with ``final_compact`` a last synchronous
        merge drains whatever the worker had not gotten to."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_compact and self.compactor.live.staleness() > 0:
            self.compactor.compact()

    def kick(self) -> None:
        """Request an immediate staleness check (e.g. after a burst)."""
        self._wake.set()

    def __enter__(self) -> "BackgroundCompactor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.poll_interval)
            self._wake.clear()
            if self._stop.is_set():
                break
            now = time.monotonic()
            if now < self._next_attempt_at:
                continue
            if (self.compactor.live.staleness()
                    < max(self.staleness_threshold, 1)):
                continue
            self._attempt()

    def _attempt(self) -> None:
        with self._mutex:
            self._state = "compacting"
        try:
            report = self.compactor.compact()
        except Exception as exc:
            self.failures += 1
            with self._mutex:
                self._consecutive_failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                backoff = min(self.max_backoff,
                              0.05 * (2 ** (self._consecutive_failures - 1)))
                backoff *= 1.0 + 0.25 * float(self._rng.random())
                self._next_attempt_at = time.monotonic() + backoff
                self._state = "degraded"
            logger.warning(
                "background compaction failed (%d consecutive): %s — "
                "serving continues from the overlay; retrying in %.2fs",
                self._consecutive_failures, self._last_error, backoff)
            self._emit("compaction-failed",
                       {"error": self._last_error,
                        "consecutive_failures": self._consecutive_failures,
                        "retry_in": backoff})
        else:
            self.runs += 1
            with self._mutex:
                self._consecutive_failures = 0
                self._last_error = None
                self._last_report = report
                self._next_attempt_at = 0.0
                self._state = "idle"
            self._emit("compaction-done",
                       {"merged_events": report.merged_events,
                        "num_edges": report.num_edges,
                        "seconds": report.seconds})

    # ------------------------------------------------------------------
    def health(self) -> dict:
        with self._mutex:
            out = {"ts": time.time(),
                   "state": self._state,
                   "runs": self.runs,
                   "failures": self.failures,
                   "consecutive_failures": self._consecutive_failures,
                   "last_error": self._last_error,
                   "staleness_threshold": self.staleness_threshold,
                   "retry_in": max(0.0, self._next_attempt_at
                                   - time.monotonic())
                   if self._next_attempt_at else 0.0}
            if self._last_report is not None:
                out["last_merged_events"] = self._last_report.merged_events
                out["last_seconds"] = self._last_report.seconds
        return out
