"""Compaction: merge the delta log into the base partitioned stores.

The compactor folds every live event into the base
:class:`~repro.storage.edge_store.EdgeBucketStore`: each bucket's new base
content is exactly the composed view :meth:`LiveGraph.bucket_edges` already
serves (base survivors in base order, then surviving insertions in arrival
order), so compaction is **behaviour-preserving by construction** — a
query, sample, or training step sees bit-identical data before and after.
The node table needs no merge (streamed nodes grow it at ingest time); it
is flushed so the whole post-compaction state is durable.

The rewrite reuses the snapshot subsystem's atomicity discipline
(write-temp + fsync + rename, via
:meth:`EdgeBucketStore.rewrite_buckets`): a crash mid-compaction leaves
either the old bucket file or the new one, never a torn mix. After the
rename the log forgets everything below the compaction horizon
(:meth:`GraphDeltaLog.mark_compacted` — bounded history), store
fingerprints now reflect the new layout, and registered compact listeners
(partition buffers, serving engines) re-sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from .live import LiveGraph


@dataclass
class CompactionReport:
    """What one compaction did (telemetry for the CLI and benchmark)."""

    merged_events: int
    num_edges: int          # base edges after the merge
    seconds: float
    fingerprints: Dict[str, str]


class Compactor:
    """Merges a :class:`LiveGraph`'s delta log into its base stores."""

    def __init__(self, live: LiveGraph) -> None:
        self.live = live
        self.compactions = 0
        self.total_merged_events = 0

    def compact(self) -> CompactionReport:
        """Fold all pending events into the base edge buckets, atomically.

        Safe to call with resident partition buffers and live adjacency
        indexes attached: their in-memory composed state already equals the
        post-compaction base, and the compact listeners re-read from the
        new base anyway (defense against drift, and the hook any lossy
        future merge policy would rely on).
        """
        live = self.live
        t0 = time.perf_counter()
        with live.lock:
            upto = live.log.seq
            merged = upto - live.log.compacted_seq
            p = live.num_partitions
            buckets = (live.bucket_edges(i, j, upto_seq=upto, record_io=False)
                       for i in range(p) for j in range(p))
            live.edge_store.rewrite_buckets(buckets, scheme=live.scheme)
            live.node_store.flush()
            live.log.mark_compacted(upto)
            live.notify_compacted()
        self.compactions += 1
        self.total_merged_events += merged
        return CompactionReport(
            merged_events=merged,
            num_edges=live.edge_store.num_edges,
            seconds=time.perf_counter() - t0,
            fingerprints={"node": live.node_store.fingerprint(),
                          "edge": live.edge_store.fingerprint()})
