"""The append-only graph delta log: edge events bucketed by partition pair.

Streamed edge insertions and deletions land here before compaction merges
them into the base :class:`~repro.storage.edge_store.EdgeBucketStore`. The
log is the write-path analogue of the edge buckets — and it is *physically*
bucketed: every append groups its events by the partition pair ``(i, j)``
of their endpoints (stable under node growth, because streamed nodes only
ever extend the *last* partition), so reading one bucket's events touches
only that bucket's arrays, never the whole log. Events carry a monotone
sequence number and their operation, so the overlay composition — and the
compactor — can replay exactly one bucket's events in arrival order.

Two disciplines keep the log bounded:

* **Spill** — once more than ``spill_threshold`` events are buffered in
  memory, the in-memory segments are written to ``spill-<n>.npz`` files
  under ``spill_dir`` (one archive member per bucket and column, so a
  later per-bucket read decompresses only its own members) and dropped
  from RAM. Ingest throughput therefore never depends on how long
  compaction has been deferred.
* **Forgetting** — :meth:`mark_compacted` discards every event below the
  compaction horizon (memory and spill files alike). This is the
  bounded-history principle of the online-caching literature behind
  :class:`~repro.policies.query_lru.QueryLRU` (Colussi: the work function
  algorithm can forget history): once deltas are merged into the base
  structures, replaying them can never change observable behaviour, so
  they need not be retained.

With ``wal_dir`` set the log is additionally **durable**: every append is
framed and fsync'd to a :class:`~repro.stream.wal.WriteAheadLog` before
it is acknowledged (group-commit window configurable via
``fsync_every``), spill files are written with the
write-temp+fsync+rename idiom, and WAL segments are truncated only once
their seq range is covered by a spill file or the compaction horizon.
:meth:`restore` rebuilds the exact acknowledged state after a crash from
the surviving spill files plus a WAL scan.

The log is internally thread-safe (``_mutex``): ingest, spill, overlay
composition, and compaction bookkeeping may be driven from different
threads — the higher-level striped/shared locking in
:class:`~repro.stream.live.LiveGraph` provides ordering *between*
buckets, this mutex protects the log's own containers.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..obs.registry import get_registry
from ..storage.atomic import atomic_write
from .wal import KIND_EDGES, KIND_NODES, WalFrame, WalRecovery, WriteAheadLog

OP_INSERT = 0
OP_DELETE = 1

_COLUMNS = ("op", "src", "dst", "rel", "seq")

Pair = Tuple[int, int]
# One bucket's events within a segment: columnar, arrival-ordered.
PairEvents = Dict[str, np.ndarray]
# One segment: events grouped by bucket.
Segment = Dict[Pair, PairEvents]


def _empty_events() -> PairEvents:
    return {"op": np.empty(0, dtype=np.uint8),
            "src": np.empty(0, dtype=np.int64),
            "dst": np.empty(0, dtype=np.int64),
            "rel": np.empty(0, dtype=np.int64),
            "seq": np.empty(0, dtype=np.int64)}


def _concat_events(parts: List[PairEvents]) -> PairEvents:
    if not parts:
        return _empty_events()
    if len(parts) == 1:
        return parts[0]
    return {col: np.concatenate([p[col] for p in parts]) for col in _COLUMNS}


class _SpillFile:
    """One spilled segment: the archive plus its in-memory pair index."""

    def __init__(self, path: Path, pair_max_seq: Dict[Pair, int],
                 max_seq: int) -> None:
        self.path = path
        self.pair_max_seq = pair_max_seq   # last seq per bucket in the file
        self.max_seq = max_seq

    def load_pair(self, pair: Pair) -> PairEvents:
        # npz members are decompressed lazily on access: only this
        # bucket's five arrays are read, not the whole archive.
        i, j = pair
        with np.load(self.path) as archive:
            return {col: archive[f"{i}:{j}:{col}"] for col in _COLUMNS}

    @classmethod
    def reattach(cls, path: Path) -> Optional["_SpillFile"]:
        """Rebuild the pair index of an existing spill file (recovery);
        only the per-pair ``seq`` members are decompressed."""
        pair_max_seq: Dict[Pair, int] = {}
        with np.load(path) as archive:
            for name in archive.files:
                i, j, col = name.split(":")
                if col != "seq":
                    continue
                seqs = archive[name]
                if len(seqs):
                    pair_max_seq[(int(i), int(j))] = int(seqs[-1])
        if not pair_max_seq:
            return None
        return cls(path, pair_max_seq, max(pair_max_seq.values()))


class GraphDeltaLog:
    """Append-only, spillable, optionally WAL-durable log of edge events.

    Parameters
    ----------
    num_partitions:
        Bucket grid size ``p`` (fixed for the lifetime of the stream; node
        growth extends the last partition, never the grid).
    has_relations:
        Whether events carry a relation column.
    spill_dir:
        Directory for spilled segments; created on first spill. ``None``
        disables spilling (the log stays purely in-memory).
    spill_threshold:
        Soft cap on in-memory events before the segments spill.
    wal_dir:
        Directory for the write-ahead journal; ``None`` (default) keeps
        the pre-durability behaviour — nothing survives a crash except
        spill files and snapshots.
    fsync_every:
        Group-commit window of the journal: fsync after every N frames.
        1 = every acknowledged append is durable.
    wal_segment_bytes:
        Journal segment rotation size.
    """

    def __init__(self, num_partitions: int, has_relations: bool = False,
                 spill_dir: Optional[os.PathLike] = None,
                 spill_threshold: int = 1 << 20,
                 wal_dir: Optional[os.PathLike] = None,
                 fsync_every: int = 1,
                 wal_segment_bytes: int = 4 << 20) -> None:
        self.num_partitions = int(num_partitions)
        self.has_relations = bool(has_relations)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.spill_threshold = int(spill_threshold)
        self.seq = 0               # next sequence number to assign
        self.compacted_seq = 0     # events below this are merged into base
        self._segments: List[Segment] = []
        self._spilled: List[_SpillFile] = []       # oldest first
        self._mem_events = 0
        self._spill_counter = 0
        self._mutex = threading.RLock()
        self.fault_hook: Optional[Callable[[str], None]] = None
        self._fsync_every = int(fsync_every)
        self._wal_segment_bytes = int(wal_segment_bytes)
        self.wal: Optional[WriteAheadLog] = None
        if wal_dir is not None:
            self.wal = WriteAheadLog(wal_dir, fsync_every=fsync_every,
                                     segment_bytes=wal_segment_bytes)
        # Telemetry for the benchmark / CLI stats.
        self.events_appended = 0
        self.edges_inserted = 0
        self.edges_deleted = 0
        self.spills = 0

    def _fire(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events not yet merged into the base structures (the staleness
        the compaction cadence trades against)."""
        return self.seq - self.compacted_seq

    @property
    def memory_events(self) -> int:
        return self._mem_events

    # ------------------------------------------------------------------
    def append(self, op: int, src: np.ndarray, dst: np.ndarray,
               rel: Optional[np.ndarray], bi: np.ndarray,
               bj: np.ndarray) -> Tuple[int, int]:
        """Append one batch of same-op events; returns its ``[lo, hi)`` seq
        range. Endpoint validation and bucket assignment are the caller's
        (the :class:`~repro.stream.live.LiveGraph`'s) responsibility.

        With a WAL attached, the batch is journaled and (per the
        ``fsync_every`` policy) fsync'd **before** any in-memory state
        changes — a crash during the journal write leaves the log exactly
        as if the append never happened, so nothing unacknowledged can
        leak into recovery and nothing acknowledged can be lost.
        """
        n = len(src)
        if n == 0:
            return self.seq, self.seq
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rel = (np.asarray(rel, dtype=np.int64) if rel is not None
               else np.zeros(n, dtype=np.int64))
        bi = np.asarray(bi, dtype=np.int64)
        bj = np.asarray(bj, dtype=np.int64)
        t0 = time.perf_counter()
        with self._mutex:
            lo = self.seq
            if self.wal is not None:
                self.wal.append_edges(lo, op, src, dst, rel, bi, bj)
            seq = np.arange(lo, lo + n, dtype=np.int64)
            ops = np.full(n, op, dtype=np.uint8)
            self._ingest_segment(ops, src, dst, rel, bi, bj, seq)
            self.seq += n
            self.events_appended += n
            if op == OP_INSERT:
                self.edges_inserted += n
            else:
                self.edges_deleted += n
            if (self.spill_dir is not None
                    and self._mem_events > self.spill_threshold):
                self._spill()
            get_registry().histogram("stream.append_ms").observe(
                1000.0 * (time.perf_counter() - t0))
            return lo, self.seq

    def _ingest_segment(self, ops: np.ndarray, src: np.ndarray,
                        dst: np.ndarray, rel: np.ndarray, bi: np.ndarray,
                        bj: np.ndarray, seq: np.ndarray) -> None:
        """Group one batch by bucket and add it as an in-memory segment.
        Caller holds ``_mutex``."""
        n = len(src)
        # Group the batch by bucket once, at append time: every later read
        # of bucket (i, j) then touches only (i, j)'s arrays.
        codes = bi * self.num_partitions + bj
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        starts = np.concatenate(
            [[0], np.nonzero(np.diff(sorted_codes))[0] + 1, [n]])
        segment: Segment = {}
        for s, e in zip(starts[:-1], starts[1:]):
            rows = order[s:e]
            code = int(sorted_codes[s])
            pair = (code // self.num_partitions, code % self.num_partitions)
            segment[pair] = {"op": ops[rows], "src": src[rows],
                             "dst": dst[rows], "rel": rel[rows],
                             "seq": seq[rows]}
        self._segments.append(segment)
        self._mem_events += n

    def journal_nodes(self, old_total: int, new_total: int) -> None:
        """Journal a node-growth step (rows are deterministic per node id,
        so only the totals need to survive — see
        :class:`~repro.stream.wal.WriteAheadLog`)."""
        if self.wal is None:
            return
        with self._mutex:
            self.wal.append_nodes(self.seq, old_total, new_total)

    def _spill(self) -> None:
        """Move the in-memory segments to one on-disk npz segment.

        The archive is staged and renamed atomically (a crash mid-spill
        leaves no torn file for recovery to trip on), and once it is
        durable the WAL no longer needs the covered frames — segments
        wholly below the new coverage point are truncated.
        """
        if not self._segments:
            return
        merged: Dict[Pair, List[PairEvents]] = {}
        for segment in self._segments:
            for pair, events in segment.items():
                merged.setdefault(pair, []).append(events)
        arrays = {}
        pair_max_seq: Dict[Pair, int] = {}
        for pair, parts in merged.items():
            events = _concat_events(parts)
            i, j = pair
            for col in _COLUMNS:
                arrays[f"{i}:{j}:{col}"] = events[col]
            pair_max_seq[pair] = int(events["seq"][-1])
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self.spill_dir / f"spill-{self._spill_counter:08d}.npz"
        self._spill_counter += 1
        with atomic_write(path) as fh:
            np.savez(fh, **arrays)
        self._spilled.append(_SpillFile(path, pair_max_seq,
                                        max(pair_max_seq.values())))
        self._segments = []
        self._mem_events = 0
        self.spills += 1
        self._fire("spill-post-write")
        if self.wal is not None:
            # Everything below self.seq is now durable in spill files (or
            # already compacted): the journal may forget it.
            self.wal.truncate_covered(self.seq)

    # ------------------------------------------------------------------
    def events_for_bucket(self, i: int, j: int,
                          upto_seq: Optional[int] = None) -> PairEvents:
        """Live events of bucket ``(i, j)`` with ``compacted_seq <= seq <
        upto_seq``, in arrival order, as columnar arrays."""
        pair = (int(i), int(j))
        with self._mutex:
            # Snapshot the containers; spill files are immutable until
            # deleted by compaction (which holds the structural lock), so
            # the archive reads below can happen outside the mutex.
            spilled = list(self._spilled)
            segments = list(self._segments)
            compacted = self.compacted_seq
            upto = self.seq if upto_seq is None else int(upto_seq)
        picked: List[PairEvents] = []
        for spill in spilled:
            last = spill.pair_max_seq.get(pair)
            if last is None or last < compacted:
                continue
            picked.append(spill.load_pair(pair))
        for segment in segments:
            events = segment.get(pair)
            if events is not None:
                picked.append(events)
        out = _concat_events(picked)
        if len(out["seq"]) == 0:
            return out
        # Per-pair seqs are appended in order, so the live window is one
        # contiguous slice.
        lo = int(np.searchsorted(out["seq"], compacted, side="left"))
        hi = int(np.searchsorted(out["seq"], upto, side="left"))
        if lo == 0 and hi == len(out["seq"]):
            return out
        return {col: out[col][lo:hi] for col in _COLUMNS}

    def touched_pairs(self, since_seq: Optional[int] = None) -> Set[Pair]:
        """Partition pairs with at least one live event at or past
        ``since_seq`` (default: the compaction horizon)."""
        with self._mutex:
            floor = self.compacted_seq if since_seq is None else int(since_seq)
            pairs: Set[Pair] = set()
            for spill in self._spilled:
                for pair, last in spill.pair_max_seq.items():
                    if last >= floor:
                        pairs.add(pair)
            for segment in self._segments:
                for pair, events in segment.items():
                    if int(events["seq"][-1]) >= floor:
                        pairs.add(pair)
            return pairs

    # ------------------------------------------------------------------
    def mark_compacted(self, upto_seq: int) -> None:
        """Forget every event below ``upto_seq`` (now merged into base).

        Segments entirely below the horizon are dropped (spill files
        deleted); a segment straddling it is filtered in place. Observable
        behaviour is unchanged by construction: composition already ignores
        events below ``compacted_seq``. With a WAL attached, journal
        segments covered by the new horizon are truncated too.
        """
        upto = int(upto_seq)
        with self._mutex:
            if upto < self.compacted_seq:
                raise ValueError("compaction horizon cannot move backwards")
            self.compacted_seq = upto
            kept_spills: List[_SpillFile] = []
            for spill in self._spilled:
                if spill.max_seq >= upto:
                    kept_spills.append(spill)
                else:
                    spill.path.unlink(missing_ok=True)
            self._spilled = kept_spills
            kept: List[Segment] = []
            removed = 0
            for segment in self._segments:
                filtered: Segment = {}
                for pair, events in segment.items():
                    cut = int(np.searchsorted(events["seq"], upto,
                                              side="left"))
                    removed += cut
                    if cut == 0:
                        filtered[pair] = events
                    elif cut < len(events["seq"]):
                        filtered[pair] = {col: events[col][cut:]
                                          for col in _COLUMNS}
                if filtered:
                    kept.append(filtered)
            self._segments = kept
            self._mem_events -= removed
            if self.wal is not None:
                self.wal.truncate_covered(upto)

    # ------------------------------------------------------------------
    def restore(self, compacted_seq: int, recovery: WalRecovery,
                wal_dir: Optional[os.PathLike] = None) -> List[WalFrame]:
        """Rebuild acknowledged state after a crash; must be called on a
        fresh, empty log.

        ``compacted_seq`` is the durable compaction horizon (from the edge
        store's layout sidecar — it commits atomically with the compacted
        bucket file). Surviving spill files are reattached (those wholly
        below the horizon are deleted), then WAL frames from ``recovery``
        are filtered against the durable floor — the first seq *not*
        already covered by base + spills — and the remainder is returned
        for the :class:`~repro.stream.live.LiveGraph` to replay, in
        acknowledged order, with original sequence numbers. Edge frames
        straddling the floor are sliced, never double-applied.

        If ``wal_dir`` is given, a fresh journal is attached that resumes
        after ``recovery``'s segments (they stay on disk, still guarding
        the replayed suffix, until coverage truncates them).
        """
        with self._mutex:
            if self.seq or self._segments or self._spilled:
                raise RuntimeError("restore() requires an empty log")
            self.compacted_seq = int(compacted_seq)
            spill_floor = self.compacted_seq
            if self.spill_dir is not None and self.spill_dir.is_dir():
                for path in sorted(self.spill_dir.glob("spill-*.npz")):
                    self._spill_counter = max(
                        self._spill_counter,
                        int(path.stem.split("-")[1]) + 1)
                    spill = _SpillFile.reattach(path)
                    if spill is None or spill.max_seq < self.compacted_seq:
                        path.unlink(missing_ok=True)
                        continue
                    self._spilled.append(spill)
                    spill_floor = max(spill_floor, spill.max_seq + 1)
            floor = max(spill_floor, recovery.covered_seq)
            self.seq = floor
            replay: List[WalFrame] = []
            for frame in recovery.frames:
                if frame.kind == KIND_NODES:
                    replay.append(frame)
                    continue
                if frame.seq_end <= floor:
                    continue          # already durable in base or spills
                if frame.seq_lo < floor:
                    keep = frame.edges[floor - frame.seq_lo:]
                    frame = WalFrame(kind=KIND_EDGES, seq_lo=floor,
                                     count=len(keep), edges=keep)
                replay.append(frame)
            if wal_dir is not None:
                self.wal = WriteAheadLog(wal_dir,
                                         fsync_every=self._fsync_every,
                                         segment_bytes=self._wal_segment_bytes,
                                         resume=recovery)
            return replay

    def restore_events(self, frame: WalFrame) -> Tuple[int, int]:
        """Re-apply one recovered EDGES frame with its original seqs (used
        only by WAL replay — nothing is re-journaled; the surviving WAL
        segments already hold these frames)."""
        edges = frame.edges
        n = len(edges)
        if n == 0:
            return self.seq, self.seq
        with self._mutex:
            if frame.seq_lo != self.seq:
                raise RuntimeError(
                    f"WAL replay out of order: frame starts at seq "
                    f"{frame.seq_lo}, log expects {self.seq}")
            seq = np.arange(frame.seq_lo, frame.seq_lo + n, dtype=np.int64)
            ops = edges[:, 0].astype(np.uint8)
            self._ingest_segment(ops, edges[:, 1], edges[:, 2], edges[:, 3],
                                 edges[:, 4], edges[:, 5], seq)
            self.seq += n
            self.events_appended += n
            self.edges_inserted += int(np.sum(edges[:, 0] == OP_INSERT))
            self.edges_deleted += int(np.sum(edges[:, 0] == OP_DELETE))
            return frame.seq_lo, self.seq

    # ------------------------------------------------------------------
    def clear_spill(self) -> None:
        """Delete any remaining spill files (stream shutdown)."""
        with self._mutex:
            for spill in self._spilled:
                spill.path.unlink(missing_ok=True)
            self._spilled = []
            if self.spill_dir is not None and self.spill_dir.is_dir():
                shutil.rmtree(self.spill_dir, ignore_errors=True)

    def close(self) -> None:
        """Flush and close the journal (stream shutdown)."""
        with self._mutex:
            if self.wal is not None:
                self.wal.close()

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            out = {"seq": self.seq, "compacted_seq": self.compacted_seq,
                   "pending": self.pending_events,
                   "memory_events": self._mem_events,
                   "spilled_segments": len(self._spilled),
                   "events_appended": self.events_appended,
                   "edges_inserted": self.edges_inserted,
                   "edges_deleted": self.edges_deleted,
                   "spills": self.spills}
            if self.wal is not None:
                out["wal"] = self.wal.stats()
            return out
