"""The append-only graph delta log: edge events bucketed by partition pair.

Streamed edge insertions and deletions land here before compaction merges
them into the base :class:`~repro.storage.edge_store.EdgeBucketStore`. The
log is the write-path analogue of the edge buckets — and it is *physically*
bucketed: every append groups its events by the partition pair ``(i, j)``
of their endpoints (stable under node growth, because streamed nodes only
ever extend the *last* partition), so reading one bucket's events touches
only that bucket's arrays, never the whole log. Events carry a monotone
sequence number and their operation, so the overlay composition — and the
compactor — can replay exactly one bucket's events in arrival order.

Two disciplines keep the log bounded:

* **Spill** — once more than ``spill_threshold`` events are buffered in
  memory, the in-memory segments are written to ``spill-<n>.npz`` files
  under ``spill_dir`` (one archive member per bucket and column, so a
  later per-bucket read decompresses only its own members) and dropped
  from RAM. Ingest throughput therefore never depends on how long
  compaction has been deferred.
* **Forgetting** — :meth:`mark_compacted` discards every event below the
  compaction horizon (memory and spill files alike). This is the
  bounded-history principle of the online-caching literature behind
  :class:`~repro.policies.query_lru.QueryLRU` (Colussi: the work function
  algorithm can forget history): once deltas are merged into the base
  structures, replaying them can never change observable behaviour, so
  they need not be retained.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

OP_INSERT = 0
OP_DELETE = 1

_COLUMNS = ("op", "src", "dst", "rel", "seq")

Pair = Tuple[int, int]
# One bucket's events within a segment: columnar, arrival-ordered.
PairEvents = Dict[str, np.ndarray]
# One segment: events grouped by bucket.
Segment = Dict[Pair, PairEvents]


def _empty_events() -> PairEvents:
    return {"op": np.empty(0, dtype=np.uint8),
            "src": np.empty(0, dtype=np.int64),
            "dst": np.empty(0, dtype=np.int64),
            "rel": np.empty(0, dtype=np.int64),
            "seq": np.empty(0, dtype=np.int64)}


def _concat_events(parts: List[PairEvents]) -> PairEvents:
    if not parts:
        return _empty_events()
    if len(parts) == 1:
        return parts[0]
    return {col: np.concatenate([p[col] for p in parts]) for col in _COLUMNS}


class _SpillFile:
    """One spilled segment: the archive plus its in-memory pair index."""

    def __init__(self, path: Path, pair_max_seq: Dict[Pair, int],
                 max_seq: int) -> None:
        self.path = path
        self.pair_max_seq = pair_max_seq   # last seq per bucket in the file
        self.max_seq = max_seq

    def load_pair(self, pair: Pair) -> PairEvents:
        # npz members are decompressed lazily on access: only this
        # bucket's five arrays are read, not the whole archive.
        i, j = pair
        with np.load(self.path) as archive:
            return {col: archive[f"{i}:{j}:{col}"] for col in _COLUMNS}


class GraphDeltaLog:
    """Append-only, spillable log of edge insert/delete events.

    Parameters
    ----------
    num_partitions:
        Bucket grid size ``p`` (fixed for the lifetime of the stream; node
        growth extends the last partition, never the grid).
    has_relations:
        Whether events carry a relation column.
    spill_dir:
        Directory for spilled segments; created on first spill. ``None``
        disables spilling (the log stays purely in-memory).
    spill_threshold:
        Soft cap on in-memory events before the segments spill.
    """

    def __init__(self, num_partitions: int, has_relations: bool = False,
                 spill_dir: Optional[os.PathLike] = None,
                 spill_threshold: int = 1 << 20) -> None:
        self.num_partitions = int(num_partitions)
        self.has_relations = bool(has_relations)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.spill_threshold = int(spill_threshold)
        self.seq = 0               # next sequence number to assign
        self.compacted_seq = 0     # events below this are merged into base
        self._segments: List[Segment] = []
        self._spilled: List[_SpillFile] = []       # oldest first
        self._mem_events = 0
        self._spill_counter = 0
        # Telemetry for the benchmark / CLI stats.
        self.events_appended = 0
        self.edges_inserted = 0
        self.edges_deleted = 0
        self.spills = 0

    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events not yet merged into the base structures (the staleness
        the compaction cadence trades against)."""
        return self.seq - self.compacted_seq

    @property
    def memory_events(self) -> int:
        return self._mem_events

    # ------------------------------------------------------------------
    def append(self, op: int, src: np.ndarray, dst: np.ndarray,
               rel: Optional[np.ndarray], bi: np.ndarray,
               bj: np.ndarray) -> Tuple[int, int]:
        """Append one batch of same-op events; returns its ``[lo, hi)`` seq
        range. Endpoint validation and bucket assignment are the caller's
        (the :class:`~repro.stream.live.LiveGraph`'s) responsibility."""
        n = len(src)
        if n == 0:
            return self.seq, self.seq
        lo = self.seq
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rel = (np.asarray(rel, dtype=np.int64) if rel is not None
               else np.zeros(n, dtype=np.int64))
        seq = np.arange(lo, lo + n, dtype=np.int64)
        ops = np.full(n, op, dtype=np.uint8)
        # Group the batch by bucket once, at append time: every later read
        # of bucket (i, j) then touches only (i, j)'s arrays.
        codes = (np.asarray(bi, dtype=np.int64) * self.num_partitions
                 + np.asarray(bj, dtype=np.int64))
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        starts = np.concatenate(
            [[0], np.nonzero(np.diff(sorted_codes))[0] + 1, [n]])
        segment: Segment = {}
        for s, e in zip(starts[:-1], starts[1:]):
            rows = order[s:e]
            code = int(sorted_codes[s])
            pair = (code // self.num_partitions, code % self.num_partitions)
            segment[pair] = {"op": ops[rows], "src": src[rows],
                             "dst": dst[rows], "rel": rel[rows],
                             "seq": seq[rows]}
        self._segments.append(segment)
        self._mem_events += n
        self.seq += n
        self.events_appended += n
        if op == OP_INSERT:
            self.edges_inserted += n
        else:
            self.edges_deleted += n
        if (self.spill_dir is not None
                and self._mem_events > self.spill_threshold):
            self._spill()
        return lo, self.seq

    def _spill(self) -> None:
        """Move the in-memory segments to one on-disk npz segment."""
        if not self._segments:
            return
        merged: Segment = {}
        for segment in self._segments:
            for pair, events in segment.items():
                merged.setdefault(pair, []).append(events)
        arrays = {}
        pair_max_seq: Dict[Pair, int] = {}
        for pair, parts in merged.items():
            events = _concat_events(parts)
            i, j = pair
            for col in _COLUMNS:
                arrays[f"{i}:{j}:{col}"] = events[col]
            pair_max_seq[pair] = int(events["seq"][-1])
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        path = self.spill_dir / f"spill-{self._spill_counter:08d}.npz"
        self._spill_counter += 1
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        self._spilled.append(_SpillFile(path, pair_max_seq,
                                        max(pair_max_seq.values())))
        self._segments = []
        self._mem_events = 0
        self.spills += 1

    # ------------------------------------------------------------------
    def events_for_bucket(self, i: int, j: int,
                          upto_seq: Optional[int] = None) -> PairEvents:
        """Live events of bucket ``(i, j)`` with ``compacted_seq <= seq <
        upto_seq``, in arrival order, as columnar arrays."""
        upto = self.seq if upto_seq is None else int(upto_seq)
        pair = (int(i), int(j))
        picked: List[PairEvents] = []
        for spill in self._spilled:
            last = spill.pair_max_seq.get(pair)
            if last is None or last < self.compacted_seq:
                continue
            picked.append(spill.load_pair(pair))
        for segment in self._segments:
            events = segment.get(pair)
            if events is not None:
                picked.append(events)
        out = _concat_events(picked)
        if len(out["seq"]) == 0:
            return out
        # Per-pair seqs are appended in order, so the live window is one
        # contiguous slice.
        lo = int(np.searchsorted(out["seq"], self.compacted_seq, side="left"))
        hi = int(np.searchsorted(out["seq"], upto, side="left"))
        if lo == 0 and hi == len(out["seq"]):
            return out
        return {col: out[col][lo:hi] for col in _COLUMNS}

    def touched_pairs(self, since_seq: Optional[int] = None) -> Set[Pair]:
        """Partition pairs with at least one live event at or past
        ``since_seq`` (default: the compaction horizon)."""
        floor = self.compacted_seq if since_seq is None else int(since_seq)
        pairs: Set[Pair] = set()
        for spill in self._spilled:
            for pair, last in spill.pair_max_seq.items():
                if last >= floor:
                    pairs.add(pair)
        for segment in self._segments:
            for pair, events in segment.items():
                if int(events["seq"][-1]) >= floor:
                    pairs.add(pair)
        return pairs

    # ------------------------------------------------------------------
    def mark_compacted(self, upto_seq: int) -> None:
        """Forget every event below ``upto_seq`` (now merged into base).

        Segments entirely below the horizon are dropped (spill files
        deleted); a segment straddling it is filtered in place. Observable
        behaviour is unchanged by construction: composition already ignores
        events below ``compacted_seq``.
        """
        upto = int(upto_seq)
        if upto < self.compacted_seq:
            raise ValueError("compaction horizon cannot move backwards")
        self.compacted_seq = upto
        kept_spills: List[_SpillFile] = []
        for spill in self._spilled:
            if spill.max_seq >= upto:
                kept_spills.append(spill)
            else:
                spill.path.unlink(missing_ok=True)
        self._spilled = kept_spills
        kept: List[Segment] = []
        removed = 0
        for segment in self._segments:
            filtered: Segment = {}
            for pair, events in segment.items():
                cut = int(np.searchsorted(events["seq"], upto, side="left"))
                removed += cut
                if cut == 0:
                    filtered[pair] = events
                elif cut < len(events["seq"]):
                    filtered[pair] = {col: events[col][cut:]
                                      for col in _COLUMNS}
            if filtered:
                kept.append(filtered)
        self._segments = kept
        self._mem_events -= removed

    def clear_spill(self) -> None:
        """Delete any remaining spill files (stream shutdown)."""
        for spill in self._spilled:
            spill.path.unlink(missing_ok=True)
        self._spilled = []
        if self.spill_dir is not None and self.spill_dir.is_dir():
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        return {"seq": self.seq, "compacted_seq": self.compacted_seq,
                "pending": self.pending_events,
                "memory_events": self._mem_events,
                "spilled_segments": len(self._spilled),
                "events_appended": self.events_appended,
                "edges_inserted": self.edges_inserted,
                "edges_deleted": self.edges_deleted,
                "spills": self.spills}
