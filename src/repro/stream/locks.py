"""Locking primitives for concurrent ingest + serve over a live graph.

PR 4's streaming subsystem serialized *everything* — every ingest,
compaction, refresh write-back, and query — behind one
:class:`threading.RLock`. That is correct but means a long top-k sweep
blocks ingestion and vice versa. This module provides the finer-grained
pieces :class:`~repro.stream.live.LiveGraph` composes instead:

* :class:`SharedExclusiveLock` — a reentrant readers/writer lock.
  *Structural* mutations (node growth, compaction: they swap partition
  schemes, rename bucket files, resize slab maps) take the exclusive
  side; ingest and queries take the shared side and therefore run
  concurrently with each other.
* :class:`StripedLock` — per-bucket-range mutual exclusion under the
  shared side. An ingest appending to buckets ``{(0,1), (2,3)}`` and a
  query composing bucket ``(4,4)`` touch disjoint stripes and proceed in
  parallel; same-stripe access serializes, which is what keeps one
  bucket's delta segments consistent under composition.
* :class:`VersionCounter` — a seqlock-style counter for the node table.
  The continual trainer's refresh write-back touches table *rows* (not
  structure), so instead of blocking queries it bumps the counter odd →
  writes → even; a query validates the counter around its read and
  retries on a concurrent write, falling back to the writer mutex after
  repeated collisions so progress is guaranteed.

Lock ordering (outermost first), kept consistent everywhere to stay
deadlock-free: ``LiveGraph.lock`` (writer mutex) → shared/exclusive →
engine-local lock → stripes → delta-log mutex.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Tuple

__all__ = ["SharedExclusiveLock", "StripedLock", "VersionCounter"]


class SharedExclusiveLock:
    """A reentrant readers/writer lock.

    Many threads may hold the shared side at once; the exclusive side is
    single-holder and excludes all sharers. Both sides are reentrant
    within a thread, and the exclusive holder may freely acquire the
    shared side (a compaction composes bucket reads while holding the
    exclusive lock). Writer-preference: a waiting writer blocks *new*
    readers, so a steady query stream cannot starve compaction.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0                      # active shared holds
        self._writer: int | None = None        # thread id of the writer
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()        # per-thread shared depth

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    # -- shared side ---------------------------------------------------
    def acquire_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or self._depth() > 0:
                # Reentrant (or writer downgrading for a nested read):
                # no new global reader slot needed beyond bookkeeping.
                self._local.depth = self._depth() + 1
                if self._writer != me:
                    self._readers += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._local.depth = 1

    def release_shared(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._depth()
            if depth <= 0:
                raise RuntimeError("release_shared without acquire_shared")
            self._local.depth = depth - 1
            if self._writer != me:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    # -- exclusive side ------------------------------------------------
    def acquire_exclusive(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._depth() > 0:
                raise RuntimeError(
                    "cannot upgrade a shared hold to exclusive (deadlock)")
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_exclusive(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_exclusive by a non-holder")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ----------------------------------------------
    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire, release) -> None:
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc):
            self._release()

    def shared(self) -> "_Guard":
        return self._Guard(self.acquire_shared, self.release_shared)

    def exclusive(self) -> "_Guard":
        return self._Guard(self.acquire_exclusive, self.release_exclusive)


class StripedLock:
    """``num_stripes`` reentrant locks over the bucket grid.

    Bucket ``(i, j)`` of a ``p``-partition grid maps to stripe
    ``(i * p + j) % num_stripes`` — contiguous bucket-major ranges land
    on distinct stripes, so an ingest batch and a query sweeping a
    different partition row rarely collide. Multi-stripe acquisition is
    always in ascending stripe order (deadlock-free).
    """

    def __init__(self, num_stripes: int) -> None:
        if num_stripes < 1:
            raise ValueError("num_stripes must be at least 1")
        self.num_stripes = int(num_stripes)
        self._locks = [threading.RLock() for _ in range(self.num_stripes)]

    def stripe_of(self, i: int, j: int, p: int) -> int:
        return (int(i) * int(p) + int(j)) % self.num_stripes

    def _stripes_for(self, pairs: Iterable[Tuple[int, int]],
                     p: int) -> List[int]:
        return sorted({self.stripe_of(i, j, p) for i, j in pairs})

    class _Guard:
        __slots__ = ("_locks",)

        def __init__(self, locks) -> None:
            self._locks = locks

        def __enter__(self):
            for lock in self._locks:
                lock.acquire()
            return self

        def __exit__(self, *exc):
            for lock in reversed(self._locks):
                lock.release()

    def pairs(self, pairs: Iterable[Tuple[int, int]], p: int) -> "_Guard":
        """Guard holding the stripes of the given buckets, in order."""
        return self._Guard([self._locks[s] for s in self._stripes_for(pairs, p)])

    def all(self) -> "_Guard":
        return self._Guard(list(self._locks))


class VersionCounter:
    """Seqlock-style version counter: odd while a write is in flight.

    Writers wrap row updates in :meth:`write` (the counter goes odd, the
    rows change, the counter lands even+2). Readers call :meth:`begin`
    (waits out any in-flight write, returns an even version), do the
    read, then check :meth:`changed`; a change means the read may be
    torn and must retry.
    """

    def __init__(self) -> None:
        self._value = 0
        self._cond = threading.Condition()

    @property
    def value(self) -> int:
        return self._value

    def begin(self) -> int:
        with self._cond:
            while self._value % 2:
                self._cond.wait()
            return self._value

    def changed(self, token: int) -> bool:
        return self._value != token

    class _Write:
        __slots__ = ("_counter",)

        def __init__(self, counter) -> None:
            self._counter = counter

        def __enter__(self):
            with self._counter._cond:
                while self._counter._value % 2:
                    self._counter._cond.wait()
                self._counter._value += 1          # odd: write in flight
            return self

        def __exit__(self, *exc):
            with self._counter._cond:
                self._counter._value += 1          # even: settled
                self._counter._cond.notify_all()

    def write(self) -> "_Write":
        return self._Write(self)
