"""The live graph: base partitioned stores composed with the delta overlay.

:class:`LiveGraph` is the single write path of the streaming subsystem and
the read surface everything else queries. It owns the base
:class:`~repro.storage.node_store.NodeStore` /
:class:`~repro.storage.edge_store.EdgeBucketStore` pair plus a
:class:`~repro.stream.delta_log.GraphDeltaLog`, and exposes *composed*
bucket reads: bucket ``(i, j)``'s live edges are its base edges (minus
tombstoned ones, base order preserved) followed by its un-deleted delta
insertions in arrival order.

That composition order is the correctness keystone. An offline preprocess
of the final edge list — base edges with deletions applied, then surviving
insertions appended, bucket-majored by the *stable* sort of
:class:`~repro.graph.partition.EdgeBuckets` — produces exactly the same
per-bucket edge order, so a :class:`~repro.graph.csr.
PartitionedAdjacencyIndex` built over either sees identical virtual
neighbor runs and samples bit-identically under a fixed RNG. Compaction
(:class:`~repro.stream.compactor.Compactor`) writes the composed buckets
as the new base, which by the same argument changes nothing observable.

Node additions take effect immediately: new IDs extend the *last*
partition (:meth:`PartitionScheme.extended` — existing bucket assignments
are stable), the node table grows in place with deterministically seeded
rows (a pure function of ``(seed, node_id)``, so any interleaving of adds
yields the same values), and registered listeners re-size their derived
structures (adjacency index degree arrays, partition-buffer slab maps).

Deletion semantics: a delete event removes **every** live occurrence of
the edge — base copies and earlier un-compacted insertions alike; a later
insertion of the same edge re-adds it.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.edge_list import Graph
from ..graph.partition import PartitionScheme
from ..storage.edge_store import EdgeBucketStore
from ..storage.node_store import NodeStore
from .delta_log import OP_DELETE, OP_INSERT, GraphDeltaLog
from .locks import SharedExclusiveLock, StripedLock, VersionCounter
from .wal import KIND_NODES, WalFrame

BucketListener = Callable[[List[Tuple[int, int]]], None]
GrowthListener = Callable[[PartitionScheme], None]
CompactListener = Callable[[], None]
TableListener = Callable[[List[int]], None]


class LiveGraph:
    """Base stores + delta overlay: the streaming read/write surface.

    Parameters
    ----------
    node_store:
        The partitioned node table (grows in place on node additions).
    edge_store:
        The base edge buckets (rewritten by compaction).
    spill_dir:
        Delta-log spill directory (default: ``<edge file>.spill``).
    spill_threshold:
        In-memory event cap before the log spills.
    seed:
        Stream seed for deterministic new-node row initialization.
    wal_dir:
        Write-ahead journal directory for the delta log (``None`` keeps
        the non-durable behaviour).
    fsync_every:
        Journal group-commit window (1 = fsync per acknowledged append).
    lock_stripes:
        Number of bucket-range lock stripes. Ingest batches and bucket
        listeners touching disjoint stripes run in parallel; 1 degrades
        to a single ingest lock (the benchmark's comparison arm).
    """

    def __init__(self, node_store: NodeStore, edge_store: EdgeBucketStore,
                 spill_dir: Optional[os.PathLike] = None,
                 spill_threshold: int = 1 << 20, seed: int = 0,
                 wal_dir: Optional[os.PathLike] = None,
                 fsync_every: int = 1, lock_stripes: int = 8,
                 wal_segment_bytes: int = 4 << 20) -> None:
        if node_store.num_partitions != edge_store.num_partitions:
            raise ValueError("node and edge stores disagree on partitions")
        self.node_store = node_store
        self.edge_store = edge_store
        self.seed = int(seed)
        if spill_dir is None:
            spill_dir = edge_store.path.with_suffix(
                edge_store.path.suffix + ".spill")
        self.log = GraphDeltaLog(node_store.num_partitions,
                                 has_relations=edge_store.has_relations,
                                 spill_dir=spill_dir,
                                 spill_threshold=spill_threshold,
                                 wal_dir=wal_dir, fsync_every=fsync_every,
                                 wal_segment_bytes=wal_segment_bytes)
        self.nodes_added = 0
        # Lock hierarchy (outermost first; see repro.stream.locks):
        #
        # * ``lock`` — the structural mutex. Serializes the rare,
        #   whole-graph mutations against each other: node growth,
        #   compaction, refresh write-back, WAL replay. Held together
        #   with ``rw.exclusive()`` where readers must be excluded too.
        # * ``rw`` — shared/exclusive. Ingest and queries take the shared
        #   side and run concurrently; growth/compaction/replay take the
        #   exclusive side because they swap schemes and rename files.
        # * ``stripes`` — per-bucket-range locks under the shared side:
        #   ingest batches (and the listener invalidations they trigger)
        #   for disjoint bucket ranges proceed in parallel.
        # * ``table_version`` — seqlock over node-table *rows*: refresh
        #   write-back bumps it instead of blocking every query.
        self.lock = threading.RLock()
        self.rw = SharedExclusiveLock()
        self.stripes = StripedLock(lock_stripes)
        self.table_version = VersionCounter()
        self._bucket_listeners: List[BucketListener] = []
        self._growth_listeners: List[GrowthListener] = []
        self._compact_listeners: List[CompactListener] = []
        self._table_listeners: List[TableListener] = []
        self._health_sources: Dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    @property
    def scheme(self) -> PartitionScheme:
        return self.node_store.scheme

    @property
    def num_nodes(self) -> int:
        return self.node_store.num_nodes

    @property
    def num_partitions(self) -> int:
        return self.node_store.num_partitions

    @property
    def has_relations(self) -> bool:
        return self.edge_store.has_relations

    @property
    def width(self) -> int:
        return self.edge_store.width

    # ------------------------------------------------------------------
    # Listener registry (samplers, buffers, engines follow the stream)
    # ------------------------------------------------------------------
    def add_bucket_listener(self, fn: BucketListener) -> None:
        """``fn(pairs)`` runs after events change the given edge buckets."""
        self._bucket_listeners.append(fn)

    def add_growth_listener(self, fn: GrowthListener) -> None:
        """``fn(new_scheme)`` runs after the node table grows."""
        self._growth_listeners.append(fn)

    def add_compact_listener(self, fn: CompactListener) -> None:
        """``fn()`` runs after a compaction rewrites the base stores."""
        self._compact_listeners.append(fn)

    def add_table_listener(self, fn: TableListener) -> None:
        """``fn(parts)`` runs after node-table *rows* of the given
        partitions change on disk outside the listener's own writes — the
        continual trainer announces each refresh this way so read-only
        serving buffers re-read the retrained partitions."""
        self._table_listeners.append(fn)

    def notify_compacted(self) -> None:
        for fn in self._compact_listeners:
            fn()

    def notify_table_updated(self, parts: Sequence[int]) -> None:
        parts = sorted(int(q) for q in parts)
        if not parts:
            return
        for fn in self._table_listeners:
            fn(parts)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _init_rows(self, node_ids: np.ndarray) -> np.ndarray:
        """Deterministic per-node initialization: a pure function of
        ``(stream seed, node id)``, independent of add batching."""
        rows = np.empty((len(node_ids), self.node_store.dim), dtype=np.float32)
        scale = 1.0 / self.node_store.dim
        for k, node in enumerate(node_ids):
            rng = np.random.default_rng([self.seed, int(node)])
            rows[k] = rng.uniform(-scale, scale, size=self.node_store.dim)
        return rows

    def add_nodes(self, count: int) -> np.ndarray:
        """Append ``count`` new nodes (last partition grows); returns their IDs.

        The growth step is journaled (totals only — the rows are the
        deterministic function above, so replay regenerates them
        bit-identically) *before* any in-memory structure changes."""
        if count <= 0:
            raise ValueError("count must be positive")
        with self.lock, self.rw.exclusive():
            lo = self.num_nodes
            self.log.journal_nodes(lo, lo + count)
            ids = np.arange(lo, lo + count, dtype=np.int64)
            new_scheme = self.scheme.extended(count)
            self.node_store.grow(new_scheme, self._init_rows(ids))
            self.edge_store.scheme = new_scheme
            self.nodes_added += count
            for fn in self._growth_listeners:
                fn(new_scheme)
        return ids

    def _append_edges(self, op: int, edges: np.ndarray) -> Tuple[int, int]:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != self.width:
            raise ValueError(f"edges must be (n, {self.width}) "
                             f"[src{', rel' if self.width == 3 else ''}, dst]")
        if len(edges) == 0:
            return self.log.seq, self.log.seq
        # Shared side: ingest runs concurrently with queries and other
        # ingest batches; only the touched bucket stripes serialize (the
        # delta log itself orders seq assignment under its own mutex).
        with self.rw.shared():
            src, dst = edges[:, 0], edges[:, -1]
            if ((src < 0).any() or (dst < 0).any()
                    or (src >= self.num_nodes).any()
                    or (dst >= self.num_nodes).any()):
                raise ValueError("edge endpoint outside the live node ID "
                                 f"space [0, {self.num_nodes})")
            rel = edges[:, 1] if self.width == 3 else None
            bi = self.scheme.partition_of(src)
            bj = self.scheme.partition_of(dst)
            pairs = sorted({(int(i), int(j)) for i, j in zip(bi, bj)})
            with self.stripes.pairs(pairs, self.num_partitions):
                span = self.log.append(op, src, dst, rel, bi, bj)
                for fn in self._bucket_listeners:
                    fn(pairs)
        return span

    def insert_edges(self, edges: np.ndarray) -> Tuple[int, int]:
        """Log edge insertions; returns their ``[lo, hi)`` sequence range."""
        return self._append_edges(OP_INSERT, edges)

    def delete_edges(self, edges: np.ndarray) -> Tuple[int, int]:
        """Log edge deletions (every live occurrence is removed)."""
        return self._append_edges(OP_DELETE, edges)

    # ------------------------------------------------------------------
    # Read path: composed buckets
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_keys(rows: np.ndarray) -> np.ndarray:
        """Rows as one comparable key each (byte view; fixed-width int64
        columns make byte equality == row equality)."""
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        return rows.view([("", np.int64)] * rows.shape[1]).ravel()

    def bucket_edges(self, i: int, j: int, upto_seq: Optional[int] = None,
                     record_io: bool = True) -> np.ndarray:
        """Bucket ``(i, j)``'s live edges: base minus tombstones (base order
        preserved), then surviving delta insertions in arrival order.

        Deletion is resolved in one vectorized pass, not per delete event:
        a base edge dies if its key was ever deleted (base rows precede
        every event; a later re-insert survives as a delta row), and a
        delta insertion dies iff a delete of its key arrived *after* it
        (compared by sequence number).
        """
        base = self.edge_store.read_bucket(i, j, record_io=record_io)
        events = self.log.events_for_bucket(i, j, upto_seq=upto_seq)
        n_events = len(events["seq"])
        if n_events == 0:
            return base
        cols = [events["src"]]
        if self.width == 3:
            cols.append(events["rel"])
        cols.append(events["dst"])
        event_rows = np.stack(cols, axis=1)
        is_ins = events["op"] == OP_INSERT
        del_mask = ~is_ins
        if not del_mask.any():
            return np.concatenate([base, event_rows], axis=0)
        event_keys = self._edge_keys(event_rows)
        del_keys = event_keys[del_mask]
        del_seq = events["seq"][del_mask]
        # Latest delete seq per distinct deleted key.
        order = np.argsort(del_keys, kind="stable")
        sk, ss = del_keys[order], del_seq[order]
        starts = np.concatenate([[0], np.nonzero(sk[1:] != sk[:-1])[0] + 1])
        uniq_keys = sk[starts]
        last_del_seq = np.maximum.reduceat(ss, starts)
        base_live = ~np.isin(self._edge_keys(base), uniq_keys)
        ins_keys = event_keys[is_ins]
        ins_seq = events["seq"][is_ins]
        idx = np.searchsorted(uniq_keys, ins_keys)
        idx_c = np.minimum(idx, len(uniq_keys) - 1)
        matched = uniq_keys[idx_c] == ins_keys
        ins_live = ~(matched & (last_del_seq[idx_c] > ins_seq))
        return np.concatenate([base[base_live], event_rows[is_ins][ins_live]],
                              axis=0)

    def bucket_endpoints(self, i: int, j: int,
                         record_io: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Composed ``(src, dst)`` arrays of bucket ``(i, j)`` — the bucket
        source for overlay-aware adjacency indexes and serving engines."""
        edges = self.bucket_edges(i, j, record_io=record_io)
        return edges[:, 0], edges[:, -1]

    def num_live_edges(self) -> int:
        """Total edges in the composed view (O(p^2) bucket compositions)."""
        p = self.num_partitions
        return int(sum(len(self.bucket_edges(i, j, record_io=False))
                       for i in range(p) for j in range(p)))

    def materialize(self, record_io: bool = False) -> Graph:
        """The full composed edge list as an in-memory :class:`Graph`, in
        bucket-major order — what an offline rebuild of the final edge list
        would preprocess. Used by equivalence tests and the CLI verifier."""
        p = self.num_partitions
        chunks = [self.bucket_edges(i, j, record_io=record_io)
                  for i in range(p) for j in range(p)]
        edges = (np.concatenate(chunks, axis=0) if chunks
                 else np.empty((0, self.width), dtype=np.int64))
        return Graph(num_nodes=self.num_nodes, src=edges[:, 0],
                     dst=edges[:, -1],
                     rel=edges[:, 1] if self.width == 3 else None,
                     num_relations=self.edge_store.num_relations,
                     name="live")

    # ------------------------------------------------------------------
    def touched_partitions(self, since_seq: Optional[int] = None) -> List[int]:
        """Partitions with a live delta event at or past ``since_seq``."""
        parts: Set[int] = set()
        for i, j in self.log.touched_pairs(since_seq):
            parts.add(i)
            parts.add(j)
        return sorted(parts)

    def staleness(self) -> int:
        """Un-compacted events: the live view's distance from its base."""
        return self.log.pending_events

    # ------------------------------------------------------------------
    # Concurrency surface
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def table_write(self):
        """Guard for node-table *row* rewrites (the continual trainer's
        refresh write-back). Takes the structural mutex plus a seqlock
        write window — concurrent queries validate ``table_version``
        around their reads and retry instead of blocking for the whole
        write-back."""
        with self.lock:
            with self.table_version.write():
                yield

    def replay_wal(self, frames: Sequence[WalFrame],
                   ) -> Dict[str, int]:
        """Re-apply recovered WAL frames in acknowledged order (see
        :meth:`GraphDeltaLog.restore`, which produced ``frames``).

        Node frames re-grow the table idempotently — only totals beyond
        the restored node count are applied, and the regenerated rows are
        the same deterministic function of ``(seed, node id)`` as the
        original adds, so rows restored from a snapshot or store are never
        clobbered. Edge frames re-enter the delta overlay with their
        original sequence numbers. Listeners fire exactly as live traffic
        would, so engines and trainers registered before replay track the
        recovered state."""
        replayed_edges = 0
        replayed_nodes = 0
        with self.lock, self.rw.exclusive():
            for frame in frames:
                if frame.kind == KIND_NODES:
                    _, new_total = frame.node_totals
                    if new_total <= self.num_nodes:
                        continue   # already covered by the restored stores
                    lo = self.num_nodes
                    count = new_total - lo
                    ids = np.arange(lo, new_total, dtype=np.int64)
                    new_scheme = self.scheme.extended(count)
                    self.node_store.grow(new_scheme, self._init_rows(ids))
                    self.edge_store.scheme = new_scheme
                    self.nodes_added += count
                    replayed_nodes += count
                    for fn in self._growth_listeners:
                        fn(new_scheme)
                else:
                    self.log.restore_events(frame)
                    pairs = sorted({(int(i), int(j)) for i, j in
                                    zip(frame.edges[:, 4], frame.edges[:, 5])})
                    for fn in self._bucket_listeners:
                        fn(pairs)
                    replayed_edges += frame.count
        return {"frames": len(frames), "edge_events": replayed_edges,
                "nodes": replayed_nodes}

    def register_health(self, name: str, fn: Callable[[], dict]) -> None:
        """Attach a named health source (the background compactor reports
        its state this way) surfaced by :meth:`health`."""
        self._health_sources[name] = fn

    def health(self) -> dict:
        """One dict describing the service's liveness: overlay staleness,
        journal state, lock configuration, and every registered source
        (e.g. background-compaction status)."""
        out = {"ts": time.time(),
               "num_nodes": self.num_nodes,
               "nodes_added": self.nodes_added,
               "base_edges": self.edge_store.num_edges,
               "staleness": self.staleness(),
               "lock_stripes": self.stripes.num_stripes,
               "table_version": self.table_version.value,
               "log": self.log.stats()}
        for name, fn in self._health_sources.items():
            out[name] = fn()
        return out

    def stats(self) -> dict:
        out = self.log.stats()
        out.update({"num_nodes": self.num_nodes,
                    "nodes_added": self.nodes_added,
                    "base_edges": self.edge_store.num_edges})
        return out
