"""Live-graph streaming: online ingestion over the partitioned stores.

The write path the out-of-core design was missing: edge/node updates are
appended to a partition-bucketed :class:`GraphDeltaLog` (journaled and
fsync'd through a :class:`WriteAheadLog` when durability is on), served
immediately through the :class:`LiveGraph` overlay (base edge buckets +
delta, composed per bucket without rebuilding), folded into the base
stores by the atomic :class:`Compactor` — synchronously or on a
:class:`BackgroundCompactor` worker thread with retry/backoff — and
learned by the :class:`ContinualTrainer` refresh loop between
compactions. The invariant throughout: any interleaving of ingest and
compaction answers queries and trains bit-identically to an offline
preprocess of the final edge list — and with the WAL on, that holds
across a crash for every acknowledged event. See ``docs/streaming.md``.
"""

from .compactor import BackgroundCompactor, CompactionReport, Compactor
from .delta_log import OP_DELETE, OP_INSERT, GraphDeltaLog
from .events import synth_events
from .live import LiveGraph
from .locks import SharedExclusiveLock, StripedLock, VersionCounter
from .refresh import ContinualTrainer, pack_pairs
from .wal import WalCorruption, WalFrame, WalRecovery, WriteAheadLog

__all__ = ["GraphDeltaLog", "LiveGraph", "Compactor", "CompactionReport",
           "BackgroundCompactor", "ContinualTrainer", "pack_pairs",
           "synth_events", "OP_INSERT", "OP_DELETE",
           "WriteAheadLog", "WalRecovery", "WalFrame", "WalCorruption",
           "SharedExclusiveLock", "StripedLock", "VersionCounter"]
