"""Synthetic event generation for drivers and benchmarks.

One definition shared by the ``repro stream`` CLI driver/REPL and
``benchmarks/test_streaming_ingest`` so both measure the same workload:
uniform-random insertions over the current live node ID space (relation
IDs drawn when the graph has relations) plus deletions of *real* live
edges sampled from one random composed bucket.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .live import LiveGraph


def synth_events(live: LiveGraph, rng: np.random.Generator, count: int,
                 delete_fraction: float
                 ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One event batch: ``(inserts, deletes-or-None)``.

    The delete rows come from a single randomly chosen bucket's composed
    view, so they always name currently-live edges; when that bucket is
    empty (or holds fewer rows than asked) the batch comes up short —
    callers must count ingested events from the ``(lo, hi)`` spans the
    ingest calls return, not from ``count``.
    """
    n_del = int(count * delete_fraction)
    n_ins = count - n_del
    width = live.width
    ins = np.empty((n_ins, width), dtype=np.int64)
    ins[:, 0] = rng.integers(0, live.num_nodes, n_ins)
    ins[:, -1] = rng.integers(0, live.num_nodes, n_ins)
    if width == 3:
        ins[:, 1] = rng.integers(0, live.edge_store.num_relations, n_ins)
    dels = None
    if n_del > 0:
        p = live.num_partitions
        i, j = int(rng.integers(0, p)), int(rng.integers(0, p))
        bucket = live.bucket_edges(i, j, record_io=False)
        if len(bucket):
            rows = rng.integers(0, len(bucket), min(n_del, len(bucket)))
            dels = bucket[np.unique(rows)]
    return ins, dels
