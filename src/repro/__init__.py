"""repro — a pure-Python reproduction of MariusGNN (EuroSys 2023).

Resource-efficient out-of-core training of Graph Neural Networks: the DENSE
multi-hop sampling structure (Section 4), the COMET partition replacement
policy (Section 5), auto-tuning rules (Section 6), and a full training stack
(autograd engine, GNN layers, disk-backed partitioned storage) to run them.

Quickstart::

    from repro.graph import load_fb15k237
    from repro.train import LinkPredictionTrainer, LinkPredictionConfig

    data = load_fb15k237(scale=0.1)
    trainer = LinkPredictionTrainer(data, LinkPredictionConfig(num_epochs=3))
    result = trainer.train()
    print(result.final_mrr)
"""

__version__ = "1.0.0"

from . import baselines, core, graph, nn

__all__ = ["nn", "graph", "core", "baselines", "__version__"]
