"""Mini-batch samplers: the DENSE sampler and its construction utilities.

:class:`DenseSampler` is MariusGNN's sampler — it owns the dual-sorted
adjacency index over the in-memory (sub)graph and produces
:class:`~repro.core.dense.DenseBatch` objects via Algorithm 1. For in-memory
training the index is a flat :class:`~repro.graph.csr.AdjacencyIndex`
(optionally pre-built and shared read-only between samplers, e.g. one per
pipeline worker). For disk-based training, :meth:`from_partitions` builds a
two-level :class:`~repro.graph.csr.PartitionedAdjacencyIndex` and a
partition-buffer swap costs only an incremental :meth:`update_graph` — the
"preparing each S_i for training" cost of Section 6, Quantity 2 — instead of
a full re-sort of the in-buffer edge list (:meth:`set_graph`, kept as the
fallback).

The sampler also owns the reusable per-``num_nodes`` scratch arrays of the
batch fast path: the boolean membership array that replaces ``np.isin``
dedup inside :func:`~repro.core.dense.build_dense`, and the int64 row
scratch that turns ``repr_map`` into a sortless scatter + gather. A sampler
instance is therefore not thread-safe; share the *index* across threads, not
the sampler.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.csr import AdjacencyIndex, PartitionedAdjacencyIndex
from ..graph.edge_list import Graph
from ..graph.partition import PartitionScheme
from .dense import DenseBatch, build_dense


class DenseSampler:
    """Multi-hop neighborhood sampler producing DENSE batches.

    Parameters
    ----------
    graph:
        The graph (or in-buffer subgraph) over which sampling is legal.
        May be ``None`` when ``index`` is given.
    fanouts:
        Per-layer fanouts ordered away from the target nodes.
    directions:
        Neighbor directions to draw from (``"out"``/``"in"``/``"both"``).
    index:
        Optional pre-built adjacency index (flat or partitioned) to use
        instead of building one from ``graph`` — lets many samplers share
        one read-only index.
    """

    def __init__(self, graph: Optional[Graph], fanouts: Sequence[int],
                 directions: Optional[str] = None,
                 rng: Optional[np.random.Generator] = None,
                 index: Optional[Union[AdjacencyIndex,
                                       PartitionedAdjacencyIndex]] = None) -> None:
        if any(not isinstance(f, (int, np.integer)) for f in fanouts):
            raise TypeError("fanouts must be integers")
        self.fanouts = list(int(f) for f in fanouts)
        self._rng = rng or np.random.default_rng()
        if index is not None:
            if directions is not None and directions != index.directions:
                raise ValueError(
                    f"directions {directions!r} conflicts with the pre-built "
                    f"index's {index.directions!r}")
            self.index = index
            self.directions = index.directions
        elif graph is not None:
            self.directions = directions or "both"
            self.index = AdjacencyIndex(graph, directions=self.directions)
        else:
            raise ValueError("need a graph or a pre-built index")
        self.index_builds = 1
        self.index_updates = 0
        self._member: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_partitions(cls, scheme: PartitionScheme,
                        bucket_source: Callable[[int, int],
                                                Tuple[np.ndarray, np.ndarray]],
                        partitions: Iterable[int], fanouts: Sequence[int],
                        directions: str = "both",
                        rng: Optional[np.random.Generator] = None,
                        cache_evicted: bool = False) -> "DenseSampler":
        """Build a sampler over the two-level partition-aware index.

        ``bucket_source(i, j)`` must return edge bucket ``(i, j)``'s endpoint
        arrays (e.g. :meth:`EdgeBucketStore.bucket_endpoints`). Buffer swaps
        then go through :meth:`update_graph`.
        """
        index = PartitionedAdjacencyIndex(scheme, bucket_source, partitions,
                                          directions=directions,
                                          cache_evicted=cache_evicted)
        return cls(None, fanouts, directions=directions, rng=rng, index=index)

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    # ------------------------------------------------------------------
    def set_graph(self, graph: Graph) -> None:
        """Full-rebuild fallback: re-sort the whole in-memory edge list."""
        self.index = AdjacencyIndex(graph, directions=self.directions)
        self.index_builds += 1

    def update_graph(self, added_parts: Iterable[int] = (),
                     removed_parts: Iterable[int] = ()) -> None:
        """Incremental swap (Steps A-D): re-index only partitions that moved.

        Requires a partition-aware index (see :meth:`from_partitions`); the
        flat index has no notion of partitions, so callers holding one must
        use :meth:`set_graph` instead.
        """
        if not isinstance(self.index, PartitionedAdjacencyIndex):
            raise TypeError("update_graph needs a partition-aware index; "
                            "use set_graph (full rebuild) instead")
        self.index.update_partitions(added_parts, removed_parts)
        self.index_updates += 1

    def reseed(self, rng: np.random.Generator) -> None:
        """Swap the draw stream in place (per-batch seeding reuses one
        sampler — and its O(num_nodes) scratch — across batches)."""
        self._rng = rng

    # ------------------------------------------------------------------
    def _scratch(self) -> Tuple[np.ndarray, np.ndarray]:
        n = self.index.num_nodes
        if self._member is None or len(self._member) != n:
            self._member = np.zeros(n, dtype=bool)
            self._rows = np.empty(n, dtype=np.int64)
        return self._member, self._rows

    def sample(self, target_nodes: np.ndarray) -> DenseBatch:
        """Build the DENSE structure for a batch of target nodes."""
        member, rows = self._scratch()
        batch = build_dense(target_nodes, self.fanouts, self.index,
                            rng=self._rng, member=member)
        batch.compute_repr_map(row_scratch=rows)
        return batch

    def sample_no_neighbors(self, target_nodes: np.ndarray) -> DenseBatch:
        """Zero-layer batch (decoder-only models, e.g. DistMult in Table 8)."""
        return build_dense(target_nodes, [], self.index, rng=self._rng)
