"""Mini-batch samplers: the DENSE sampler and its construction utilities.

:class:`DenseSampler` is MariusGNN's sampler — it owns the dual-sorted
adjacency index over the in-memory (sub)graph and produces
:class:`~repro.core.dense.DenseBatch` objects via Algorithm 1. The index is
rebuilt whenever the in-memory edge set changes (a partition-buffer swap);
the rebuild cost is what the paper counts as "preparing each S_i for
training" (Section 6, Quantity 2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import AdjacencyIndex
from ..graph.edge_list import Graph
from .dense import DenseBatch, build_dense


class DenseSampler:
    """Multi-hop neighborhood sampler producing DENSE batches.

    Parameters
    ----------
    graph:
        The graph (or in-buffer subgraph) over which sampling is legal.
    fanouts:
        Per-layer fanouts ordered away from the target nodes.
    directions:
        Neighbor directions to draw from (``"out"``/``"in"``/``"both"``).
    """

    def __init__(self, graph: Graph, fanouts: Sequence[int],
                 directions: str = "both",
                 rng: Optional[np.random.Generator] = None) -> None:
        if any(not isinstance(f, (int, np.integer)) for f in fanouts):
            raise TypeError("fanouts must be integers")
        self.fanouts = list(int(f) for f in fanouts)
        self.directions = directions
        self._rng = rng or np.random.default_rng()
        self.index = AdjacencyIndex(graph, directions=directions)
        self.index_builds = 1

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    def set_graph(self, graph: Graph) -> None:
        """Rebuild the adjacency index after a partition swap (Steps A-D)."""
        self.index = AdjacencyIndex(graph, directions=self.directions)
        self.index_builds += 1

    def sample(self, target_nodes: np.ndarray) -> DenseBatch:
        """Build the DENSE structure for a batch of target nodes."""
        batch = build_dense(target_nodes, self.fanouts, self.index, rng=self._rng)
        batch.compute_repr_map()
        return batch

    def sample_no_neighbors(self, target_nodes: np.ndarray) -> DenseBatch:
        """Zero-layer batch (decoder-only models, e.g. DistMult in Table 8)."""
        return build_dense(target_nodes, [], self.index, rng=self._rng)
