"""The DENSE data structure: Delta Encoding of Neighborhood SamplEs.

Implements the paper's Section 4 verbatim:

* :func:`build_dense` — Algorithm 1 (multi-hop neighborhood sampling). Nodes
  are one-hop sampled **only on their first appearance**; later layers reuse
  the sample. DENSE is four arrays (``node_id_offsets``, ``node_ids``,
  ``nbr_offsets``, ``nbrs``) plus ``repr_map`` added "on the GPU".
* :meth:`DenseBatch.advance` — Algorithm 2 (on-GPU DENSE update after layer
  ``i``): drops the innermost delta and the consumed neighbor block so every
  GNN layer sees the same array layout.

Layout invariants (checked by :meth:`DenseBatch.validate`):

* ``node_ids = [Δ_0 | Δ_1 | ... | Δ_k]`` with ``node_id_offsets`` marking the
  start of each delta; all IDs unique.
* ``nbrs = [Δ_1-nbrs | Δ_2-nbrs | ... | Δ_k-nbrs]`` — neighbor runs for every
  node in ``node_ids[node_id_offsets[1]:]``, in node order, delimited by
  ``nbr_offsets``.
* every ID in ``nbrs`` appears in ``node_ids``; ``repr_map[j]`` is the row of
  ``nbrs[j]`` within ``node_ids``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..graph.csr import AdjacencyIndex
from ..nn.layers import DenseLayerView


@dataclass
class SamplingStats:
    """Work counters for one multi-hop sample (feeds Table 6 and the perf model)."""

    num_target_nodes: int = 0
    num_unique_nodes: int = 0       # len(node_ids)
    num_sampled_edges: int = 0      # len(nbrs)
    one_hop_calls: int = 0          # nodes passed to oneHopSample, summed
    dedup_candidates: int = 0       # nodes examined by computeNextDelta


@dataclass
class DenseBatch:
    """The DENSE structure for one mini batch (paper Figure 3)."""

    node_id_offsets: np.ndarray
    node_ids: np.ndarray
    nbr_offsets: np.ndarray
    nbrs: np.ndarray
    repr_map: Optional[np.ndarray] = None
    num_layers: int = 1
    stats: SamplingStats = field(default_factory=SamplingStats)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_deltas(self) -> int:
        return len(self.node_id_offsets)

    def delta(self, idx: int) -> np.ndarray:
        """Return Δ_idx (idx counts from the innermost delta, 0-based)."""
        start = self.node_id_offsets[idx]
        stop = (self.node_id_offsets[idx + 1]
                if idx + 1 < len(self.node_id_offsets) else len(self.node_ids))
        return self.node_ids[start:stop]

    def target_nodes(self) -> np.ndarray:
        """The outermost delta Δ_k — the mini batch's target nodes."""
        return self.delta(self.num_deltas - 1)

    # ------------------------------------------------------------------
    def compute_repr_map(self) -> None:
        """Add the fifth array (Section 4.2): index into node_ids per nbr entry.

        In MariusGNN this happens on the GPU right after transfer; here it is
        a sorted-search since ``node_ids`` entries are unique by construction.
        """
        order = np.argsort(self.node_ids, kind="stable")
        pos = np.searchsorted(self.node_ids[order], self.nbrs)
        self.repr_map = order[pos].astype(np.int64)

    def layer_view(self) -> DenseLayerView:
        """The view a GNN layer consumes (same layout at every layer)."""
        if self.repr_map is None:
            self.compute_repr_map()
        self_start = int(self.node_id_offsets[1]) if len(self.node_id_offsets) > 1 else 0
        return DenseLayerView(
            repr_map=self.repr_map,
            nbr_offsets=self.nbr_offsets,
            self_start=self_start,
            num_outputs=len(self.node_ids) - self_start,
        )

    # ------------------------------------------------------------------
    def advance(self) -> "DenseBatch":
        """Algorithm 2: trim DENSE after computing one GNN layer.

        Removes Δ_{i-1} (no longer needed as input) and the neighbor block of
        Δ_i (already consumed), returning a new :class:`DenseBatch` whose
        node_ids exactly match the rows of the layer output H^i.
        """
        if len(self.node_id_offsets) < 2:
            raise ValueError("cannot advance a DENSE with a single delta")
        len_prev_delta = int(self.node_id_offsets[1])          # |Δ_{i-1}|
        if len(self.node_id_offsets) > 2:
            len_cur_delta = int(self.node_id_offsets[2] - self.node_id_offsets[1])
        else:
            len_cur_delta = len(self.node_ids) - len_prev_delta
        # Start of the neighbor run after Δ_i's block.
        if len_cur_delta < len(self.nbr_offsets):
            nbr_drop = int(self.nbr_offsets[len_cur_delta])
        else:
            nbr_drop = len(self.nbrs)

        new = DenseBatch(
            node_id_offsets=self.node_id_offsets[1:] - len_prev_delta,
            node_ids=self.node_ids[len_prev_delta:],
            nbr_offsets=self.nbr_offsets[len_cur_delta:] - nbr_drop,
            nbrs=self.nbrs[nbr_drop:],
            repr_map=(self.repr_map[nbr_drop:] - len_prev_delta
                      if self.repr_map is not None else None),
            num_layers=self.num_layers - 1,
            stats=self.stats,
        )
        return new

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the DENSE layout invariants; raises ``AssertionError``."""
        offsets = self.node_id_offsets
        assert len(offsets) >= 1 and offsets[0] == 0, "node_id_offsets must start at 0"
        assert np.all(np.diff(offsets) >= 0), "node_id_offsets must be nondecreasing"
        assert offsets[-1] <= len(self.node_ids), "offset exceeds node_ids"
        assert len(np.unique(self.node_ids)) == len(self.node_ids), \
            "node_ids must be unique (delta encoding)"
        n_with_nbrs = len(self.node_ids) - (int(offsets[1]) if len(offsets) > 1 else 0)
        assert len(self.nbr_offsets) == n_with_nbrs, \
            f"nbr_offsets length {len(self.nbr_offsets)} != nodes with neighbors {n_with_nbrs}"
        if len(self.nbr_offsets):
            assert self.nbr_offsets[0] == 0, "nbr_offsets must start at 0"
            assert np.all(np.diff(self.nbr_offsets) >= 0)
            assert self.nbr_offsets[-1] <= len(self.nbrs)
        if len(self.nbrs):
            assert np.isin(self.nbrs, self.node_ids).all(), \
                "every sampled neighbor must appear in node_ids"
        if self.repr_map is not None:
            assert len(self.repr_map) == len(self.nbrs)
            assert np.array_equal(self.node_ids[self.repr_map], self.nbrs), \
                "repr_map must map nbrs to their node_ids rows"


def compute_next_delta(nbrs: np.ndarray, node_ids: np.ndarray) -> np.ndarray:
    """Algorithm 1 line 7: unique sampled neighbors not yet in node_ids."""
    candidates = np.unique(nbrs)
    return candidates[~np.isin(candidates, node_ids)]


def build_dense(
    target_nodes: np.ndarray,
    fanouts: Sequence[int],
    index: AdjacencyIndex,
    rng: Optional[np.random.Generator] = None,
) -> DenseBatch:
    """Algorithm 1: multi-hop neighborhood sampling with delta encoding.

    Parameters
    ----------
    target_nodes:
        Unique node IDs forming Δ_k (the mini batch's training nodes).
    fanouts:
        Per-layer max neighbors, **ordered away from the target nodes** —
        ``fanouts[0]`` applies to the first hop from the targets (the paper's
        convention, e.g. ``[30, 20, 10]`` for a 3-layer GraphSage).
    index:
        The in-memory adjacency over which sampling is legal (only in-buffer
        edges for disk-based training, Section 3).
    """
    rng = rng or np.random.default_rng()
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    if len(np.unique(target_nodes)) != len(target_nodes):
        target_nodes = np.unique(target_nodes)
    k = len(fanouts)
    if k == 0:
        batch = DenseBatch(
            node_id_offsets=np.zeros(1, dtype=np.int64),
            node_ids=target_nodes.copy(),
            nbr_offsets=np.empty(0, dtype=np.int64),
            nbrs=np.empty(0, dtype=np.int64),
            num_layers=0,
        )
        batch.stats.num_target_nodes = len(target_nodes)
        batch.stats.num_unique_nodes = len(target_nodes)
        return batch

    stats = SamplingStats(num_target_nodes=len(target_nodes))

    # Line 1-2 of Algorithm 1.
    node_id_offsets = np.zeros(1, dtype=np.int64)
    node_ids = target_nodes.copy()
    nbr_offsets = np.empty(0, dtype=np.int64)
    nbrs = np.empty(0, dtype=np.int64)
    delta = target_nodes

    # Line 3: k rounds, hop t uses fanouts[t] (paper's i runs k..1).
    for t in range(k):
        delta_nbrs, delta_offsets = index.sample_one_hop(delta, int(fanouts[t]), rng=rng)
        stats.one_hop_calls += len(delta)
        # Lines 5-6: stack the new one-hop sample *before* the existing arrays.
        nbr_offsets = np.concatenate([delta_offsets, nbr_offsets + len(delta_nbrs)])
        nbrs = np.concatenate([delta_nbrs, nbrs])
        # Line 7: nodes needing a sample at the next hop.
        next_delta = compute_next_delta(delta_nbrs, node_ids)
        stats.dedup_candidates += len(np.unique(delta_nbrs))
        # Lines 8-9: prepend the new delta.
        node_id_offsets = np.concatenate([np.zeros(1, dtype=np.int64),
                                          node_id_offsets + len(next_delta)])
        node_ids = np.concatenate([next_delta, node_ids])
        delta = next_delta

    stats.num_unique_nodes = len(node_ids)
    stats.num_sampled_edges = len(nbrs)
    batch = DenseBatch(
        node_id_offsets=node_id_offsets,
        node_ids=node_ids,
        nbr_offsets=nbr_offsets,
        nbrs=nbrs,
        num_layers=k,
        stats=stats,
    )
    return batch
