"""The DENSE data structure: Delta Encoding of Neighborhood SamplEs.

Implements the paper's Section 4 verbatim:

* :func:`build_dense` — Algorithm 1 (multi-hop neighborhood sampling). Nodes
  are one-hop sampled **only on their first appearance**; later layers reuse
  the sample. DENSE is four arrays (``node_id_offsets``, ``node_ids``,
  ``nbr_offsets``, ``nbrs``) plus ``repr_map`` added "on the GPU".
* :meth:`DenseBatch.advance` — Algorithm 2 (on-GPU DENSE update after layer
  ``i``): drops the innermost delta and the consumed neighbor block so every
  GNN layer sees the same array layout.

Two construction paths produce bit-identical batches under the same seeded
generator:

* :func:`build_dense` — the allocation-lean fast path. Per-hop segments are
  collected in Python lists and written into each output array exactly once
  at the end (the reference path's prepend-concatenate chain re-copies hop
  ``t``'s arrays ``k - t`` times). Deduplication against already-seen nodes
  (Algorithm 1 line 7) uses a reusable boolean *membership array* scoped to
  ``num_nodes``: seen nodes are marked as deltas are produced and the marks
  are reset via the touched IDs at the end, so each hop pays a single
  ``np.unique`` over the sampled neighbors — shared between
  ``stats.dedup_candidates`` and the novel-node filter — instead of the
  reference path's ``np.unique`` twice plus ``np.isin``.
* :func:`build_dense_reference` — the direct Algorithm 1 transcription, kept
  as the correctness oracle for the property tests and benchmarks.

Layout invariants (checked by :meth:`DenseBatch.validate`):

* ``node_ids = [Δ_0 | Δ_1 | ... | Δ_k]`` with ``node_id_offsets`` marking the
  start of each delta; all IDs unique.
* ``nbrs = [Δ_1-nbrs | Δ_2-nbrs | ... | Δ_k-nbrs]`` — neighbor runs for every
  node in ``node_ids[node_id_offsets[1]:]``, in node order, delimited by
  ``nbr_offsets``.
* every ID in ``nbrs`` appears in ``node_ids``; ``repr_map[j]`` is the row of
  ``nbrs[j]`` within ``node_ids``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import DenseLayerView


@dataclass
class SamplingStats:
    """Work counters for one multi-hop sample (feeds Table 6 and the perf model)."""

    num_target_nodes: int = 0
    num_unique_nodes: int = 0       # len(node_ids)
    num_sampled_edges: int = 0      # len(nbrs)
    one_hop_calls: int = 0          # nodes passed to oneHopSample, summed
    dedup_candidates: int = 0       # nodes examined by computeNextDelta


@dataclass
class DenseBatch:
    """The DENSE structure for one mini batch (paper Figure 3)."""

    node_id_offsets: np.ndarray
    node_ids: np.ndarray
    nbr_offsets: np.ndarray
    nbrs: np.ndarray
    repr_map: Optional[np.ndarray] = None
    num_layers: int = 1
    stats: SamplingStats = field(default_factory=SamplingStats)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_deltas(self) -> int:
        return len(self.node_id_offsets)

    def delta(self, idx: int) -> np.ndarray:
        """Return Δ_idx (idx counts from the innermost delta, 0-based)."""
        start = self.node_id_offsets[idx]
        stop = (self.node_id_offsets[idx + 1]
                if idx + 1 < len(self.node_id_offsets) else len(self.node_ids))
        return self.node_ids[start:stop]

    def target_nodes(self) -> np.ndarray:
        """The outermost delta Δ_k — the mini batch's target nodes."""
        return self.delta(self.num_deltas - 1)

    # ------------------------------------------------------------------
    def compute_repr_map(self, row_scratch: Optional[np.ndarray] = None) -> None:
        """Add the fifth array (Section 4.2): index into node_ids per nbr entry.

        In MariusGNN this happens on the GPU right after transfer. With
        ``row_scratch`` (an int64 array of at least ``num_nodes`` entries,
        typically owned by the sampler and reused across batches) the map is
        a scatter + gather with no sorting: ``row_scratch[node_ids]`` is
        overwritten with each node's row and read back at the ``nbrs``
        entries — legal because every sampled neighbor appears in
        ``node_ids``. Without a scratch it falls back to a sorted search.
        """
        if row_scratch is not None:
            row_scratch[self.node_ids] = np.arange(len(self.node_ids), dtype=np.int64)
            self.repr_map = row_scratch[self.nbrs]
            return
        order = np.argsort(self.node_ids, kind="stable")
        pos = np.searchsorted(self.node_ids[order], self.nbrs)
        self.repr_map = order[pos].astype(np.int64)

    def layer_view(self) -> DenseLayerView:
        """The view a GNN layer consumes (same layout at every layer)."""
        if self.repr_map is None:
            self.compute_repr_map()
        self_start = int(self.node_id_offsets[1]) if len(self.node_id_offsets) > 1 else 0
        return DenseLayerView(
            repr_map=self.repr_map,
            nbr_offsets=self.nbr_offsets,
            self_start=self_start,
            num_outputs=len(self.node_ids) - self_start,
        )

    # ------------------------------------------------------------------
    def advance(self) -> "DenseBatch":
        """Algorithm 2: trim DENSE after computing one GNN layer.

        Removes Δ_{i-1} (no longer needed as input) and the neighbor block of
        Δ_i (already consumed), returning a new :class:`DenseBatch` whose
        node_ids exactly match the rows of the layer output H^i. Every array
        of the result is a *view* into the parent wherever the offset shift
        is zero; only nonzero shifts allocate (the subtraction must
        materialize).
        """
        if len(self.node_id_offsets) < 2:
            raise ValueError("cannot advance a DENSE with a single delta")
        len_prev_delta = int(self.node_id_offsets[1])          # |Δ_{i-1}|
        if len(self.node_id_offsets) > 2:
            len_cur_delta = int(self.node_id_offsets[2] - self.node_id_offsets[1])
        else:
            len_cur_delta = len(self.node_ids) - len_prev_delta
        # Start of the neighbor run after Δ_i's block.
        if len_cur_delta < len(self.nbr_offsets):
            nbr_drop = int(self.nbr_offsets[len_cur_delta])
        else:
            nbr_drop = len(self.nbrs)

        node_id_offsets = self.node_id_offsets[1:]
        if len_prev_delta:
            node_id_offsets = node_id_offsets - len_prev_delta
        nbr_offsets = self.nbr_offsets[len_cur_delta:]
        if nbr_drop:
            nbr_offsets = nbr_offsets - nbr_drop
        repr_map = None
        if self.repr_map is not None:
            repr_map = self.repr_map[nbr_drop:]
            if len_prev_delta:
                repr_map = repr_map - len_prev_delta

        return DenseBatch(
            node_id_offsets=node_id_offsets,
            node_ids=self.node_ids[len_prev_delta:],
            nbr_offsets=nbr_offsets,
            nbrs=self.nbrs[nbr_drop:],
            repr_map=repr_map,
            num_layers=self.num_layers - 1,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the DENSE layout invariants; raises ``AssertionError``."""
        offsets = self.node_id_offsets
        assert len(offsets) >= 1 and offsets[0] == 0, "node_id_offsets must start at 0"
        assert np.all(np.diff(offsets) >= 0), "node_id_offsets must be nondecreasing"
        assert offsets[-1] <= len(self.node_ids), "offset exceeds node_ids"
        assert len(np.unique(self.node_ids)) == len(self.node_ids), \
            "node_ids must be unique (delta encoding)"
        n_with_nbrs = len(self.node_ids) - (int(offsets[1]) if len(offsets) > 1 else 0)
        assert len(self.nbr_offsets) == n_with_nbrs, \
            f"nbr_offsets length {len(self.nbr_offsets)} != nodes with neighbors {n_with_nbrs}"
        if len(self.nbr_offsets):
            assert self.nbr_offsets[0] == 0, "nbr_offsets must start at 0"
            assert np.all(np.diff(self.nbr_offsets) >= 0)
            assert self.nbr_offsets[-1] <= len(self.nbrs)
        if len(self.nbrs):
            assert np.isin(self.nbrs, self.node_ids).all(), \
                "every sampled neighbor must appear in node_ids"
        if self.repr_map is not None:
            assert len(self.repr_map) == len(self.nbrs)
            assert np.array_equal(self.node_ids[self.repr_map], self.nbrs), \
                "repr_map must map nbrs to their node_ids rows"


def compute_next_delta(nbrs: np.ndarray, node_ids: np.ndarray) -> np.ndarray:
    """Algorithm 1 line 7: unique sampled neighbors not yet in node_ids."""
    candidates = np.unique(nbrs)
    return candidates[~np.isin(candidates, node_ids)]


def _empty_batch(target_nodes: np.ndarray) -> DenseBatch:
    batch = DenseBatch(
        node_id_offsets=np.zeros(1, dtype=np.int64),
        node_ids=target_nodes.copy(),
        nbr_offsets=np.empty(0, dtype=np.int64),
        nbrs=np.empty(0, dtype=np.int64),
        num_layers=0,
    )
    batch.stats.num_target_nodes = len(target_nodes)
    batch.stats.num_unique_nodes = len(target_nodes)
    return batch


def build_dense(
    target_nodes: np.ndarray,
    fanouts: Sequence[int],
    index,
    rng: Optional[np.random.Generator] = None,
    member: Optional[np.ndarray] = None,
) -> DenseBatch:
    """Algorithm 1: multi-hop neighborhood sampling with delta encoding.

    The allocation-lean fast path: per-hop segments are buffered in lists and
    each output array is written exactly once; membership testing uses O(1)
    boolean lookups instead of ``np.isin``. Produces batches bit-identical to
    :func:`build_dense_reference` (same arrays, same stats) under the same
    seeded generator.

    Parameters
    ----------
    target_nodes:
        Unique node IDs forming Δ_k (the mini batch's training nodes).
    fanouts:
        Per-layer max neighbors, **ordered away from the target nodes** —
        ``fanouts[0]`` applies to the first hop from the targets (the paper's
        convention, e.g. ``[30, 20, 10]`` for a 3-layer GraphSage).
    index:
        The in-memory adjacency over which sampling is legal (only in-buffer
        edges for disk-based training, Section 3). Either index class works.
    member:
        Optional reusable ``bool`` scratch array of length ``num_nodes``
        (all-False on entry, restored to all-False on return), typically
        owned by :class:`~repro.core.sampler.DenseSampler`; marks nodes
        already in ``node_ids``. A fresh array is allocated when omitted.
    """
    rng = rng or np.random.default_rng()
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    if len(np.unique(target_nodes)) != len(target_nodes):
        target_nodes = np.unique(target_nodes)
    k = len(fanouts)
    if k == 0:
        return _empty_batch(target_nodes)

    stats = SamplingStats(num_target_nodes=len(target_nodes))
    if member is None:
        member = np.zeros(index.num_nodes, dtype=bool)

    deltas = [target_nodes]            # Δ_k first; prepend order reversed below
    nbr_segments: List[np.ndarray] = []
    offset_segments: List[np.ndarray] = []
    try:
        member[target_nodes] = True
        delta = target_nodes

        # Line 3: k rounds, hop t uses fanouts[t] (paper's i runs k..1).
        for t in range(k):
            delta_nbrs, delta_offsets = index.sample_one_hop(delta, int(fanouts[t]),
                                                             rng=rng)
            stats.one_hop_calls += len(delta)
            nbr_segments.append(delta_nbrs)
            offset_segments.append(delta_offsets)
            # Line 7: one np.unique shared by the stats counter and the
            # membership filter (the reference path uniques twice + isin).
            if len(delta_nbrs):
                uniq = np.unique(delta_nbrs)
                stats.dedup_candidates += len(uniq)
                next_delta = uniq[~member[uniq]]
                member[next_delta] = True
            else:
                next_delta = np.empty(0, dtype=np.int64)
            deltas.append(next_delta)
            delta = next_delta
    except BaseException:
        # The caller-owned scratch must come back all-False even when a
        # hop raises (bad target ID, index mid-swap): stale marks would
        # silently drop nodes from every later batch sharing the scratch.
        # Bounds-filter so an out-of-range target doesn't mask the error.
        n = len(member)
        for d in deltas:
            member[d[(d >= 0) & (d < n)]] = False
        raise
    else:
        for d in deltas:            # reset via touched IDs (== node_ids)
            member[d] = False

    # Assemble each output array exactly once (reference path: O(k^2) prepends).
    delta_lens = [len(d) for d in deltas]
    total_ids = sum(delta_lens)
    node_ids = np.empty(total_ids, dtype=np.int64)
    node_id_offsets = np.empty(k + 1, dtype=np.int64)
    pos = 0
    for i, d in enumerate(reversed(deltas)):            # innermost delta first
        node_id_offsets[i] = pos
        node_ids[pos : pos + len(d)] = d
        pos += len(d)

    seg_lens = [len(s) for s in nbr_segments]
    total_nbrs = sum(seg_lens)
    nbrs = np.empty(total_nbrs, dtype=np.int64)
    nbr_offsets = np.empty(sum(len(o) for o in offset_segments), dtype=np.int64)
    npos = opos = 0
    for seg, off in zip(reversed(nbr_segments), reversed(offset_segments)):
        nbrs[npos : npos + len(seg)] = seg
        nbr_offsets[opos : opos + len(off)] = off
        if npos:
            nbr_offsets[opos : opos + len(off)] += npos
        npos += len(seg)
        opos += len(off)

    stats.num_unique_nodes = total_ids
    stats.num_sampled_edges = total_nbrs
    return DenseBatch(
        node_id_offsets=node_id_offsets,
        node_ids=node_ids,
        nbr_offsets=nbr_offsets,
        nbrs=nbrs,
        num_layers=k,
        stats=stats,
    )


def build_dense_reference(
    target_nodes: np.ndarray,
    fanouts: Sequence[int],
    index,
    rng: Optional[np.random.Generator] = None,
) -> DenseBatch:
    """Direct transcription of Algorithm 1 — the correctness oracle.

    Prepends every hop's arrays (quadratic re-copying) and deduplicates with
    ``np.unique`` + ``np.isin``. Kept verbatim so the property tests can
    assert the fast path is bit-identical, and so the benchmark can measure
    the before/after gap.
    """
    rng = rng or np.random.default_rng()
    target_nodes = np.asarray(target_nodes, dtype=np.int64)
    if len(np.unique(target_nodes)) != len(target_nodes):
        target_nodes = np.unique(target_nodes)
    k = len(fanouts)
    if k == 0:
        return _empty_batch(target_nodes)

    stats = SamplingStats(num_target_nodes=len(target_nodes))

    # Line 1-2 of Algorithm 1.
    node_id_offsets = np.zeros(1, dtype=np.int64)
    node_ids = target_nodes.copy()
    nbr_offsets = np.empty(0, dtype=np.int64)
    nbrs = np.empty(0, dtype=np.int64)
    delta = target_nodes

    # Line 3: k rounds, hop t uses fanouts[t] (paper's i runs k..1).
    for t in range(k):
        delta_nbrs, delta_offsets = index.sample_one_hop(delta, int(fanouts[t]), rng=rng)
        stats.one_hop_calls += len(delta)
        # Lines 5-6: stack the new one-hop sample *before* the existing arrays.
        nbr_offsets = np.concatenate([delta_offsets, nbr_offsets + len(delta_nbrs)])
        nbrs = np.concatenate([delta_nbrs, nbrs])
        # Line 7: nodes needing a sample at the next hop.
        next_delta = compute_next_delta(delta_nbrs, node_ids)
        stats.dedup_candidates += len(np.unique(delta_nbrs))
        # Lines 8-9: prepend the new delta.
        node_id_offsets = np.concatenate([np.zeros(1, dtype=np.int64),
                                          node_id_offsets + len(next_delta)])
        node_ids = np.concatenate([next_delta, node_ids])
        delta = next_delta

    stats.num_unique_nodes = len(node_ids)
    stats.num_sampled_edges = len(nbrs)
    return DenseBatch(
        node_id_offsets=node_id_offsets,
        node_ids=node_ids,
        nbr_offsets=nbr_offsets,
        nbrs=nbrs,
        num_layers=k,
        stats=stats,
    )
