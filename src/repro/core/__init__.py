"""Core contribution: the DENSE data structure, samplers, and GNN encoder."""

from .dense import (DenseBatch, SamplingStats, build_dense,
                    build_dense_reference, compute_next_delta)
from .encoder import GNNEncoder
from .sampler import DenseSampler

__all__ = [
    "DenseBatch", "SamplingStats", "build_dense", "build_dense_reference",
    "compute_next_delta", "DenseSampler", "GNNEncoder",
]
