"""GNN encoder: the forward pass over DENSE (paper Section 4.2).

:class:`GNNEncoder` iterates layers ``i in [1..k]``, each time computing the
output H^i for all nodes after ``node_id_offsets[1]`` (Algorithm 3) and then
trimming DENSE (Algorithm 2) so the next layer sees the identical layout —
the property that lets MariusGNN share one layer implementation across
depths. The final output rows align with the batch's target nodes Δ_k.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import make_layer
from ..nn.module import Module, ModuleList
from ..nn.tensor import Tensor
from .dense import DenseBatch


class GNNEncoder(Module):
    """A stack of GNN layers evaluated over a DENSE batch.

    Parameters
    ----------
    layer_kind:
        ``"graphsage"``, ``"gcn"``, or ``"gat"``.
    dims:
        Layer dimensions ``[in, hidden..., out]`` — ``len(dims) - 1`` layers.
    """

    def __init__(self, layer_kind: str, dims: Sequence[int],
                 final_activation: Optional[str] = None,
                 dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 **layer_kwargs) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("dims must contain at least [in, out]")
        self.layer_kind = layer_kind
        self.dims = list(dims)
        layers = []
        for i in range(len(dims) - 1):
            activation = "relu" if i < len(dims) - 2 else final_activation
            layers.append(make_layer(layer_kind, dims[i], dims[i + 1],
                                     activation=activation, dropout=dropout,
                                     rng=rng, **layer_kwargs))
        self.layers = ModuleList(layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def forward(self, h0: Tensor, batch: DenseBatch) -> Tensor:
        """Compute target-node representations h^k.

        ``h0`` must hold the base representations of ``batch.node_ids`` in
        order. Returns a tensor aligned with ``batch.target_nodes()``.
        """
        if batch.num_layers != self.num_layers:
            raise ValueError(
                f"batch was sampled for {batch.num_layers} layers, "
                f"encoder has {self.num_layers}"
            )
        if h0.data.shape[0] != batch.num_nodes:
            raise ValueError(
                f"h0 has {h0.data.shape[0]} rows but DENSE holds {batch.num_nodes} nodes"
            )
        h = h0
        current = batch
        for i, layer in enumerate(self.layers):
            view = current.layer_view()
            h = layer(h, view)  # Step 1 (Algorithm 3)
            if i < self.num_layers - 1:
                current = current.advance()  # Step 2 (Algorithm 2)
        return h

    def flops_per_batch(self, batch: DenseBatch) -> int:
        """Dense-kernel FLOP estimate for this batch (feeds the perf model)."""
        total = 0
        current = batch
        num_nodes = current.num_nodes
        num_nbrs = len(current.nbrs)
        dims = self.dims
        for i in range(self.num_layers):
            in_dim, out_dim = dims[i], dims[i + 1]
            outputs = num_nodes - int(current.node_id_offsets[1]) if current.num_deltas > 1 else num_nodes
            # gather + segment reduce over neighbor entries, two matmuls per output
            total += 2 * num_nbrs * in_dim          # aggregate
            total += 4 * outputs * in_dim * out_dim  # self + neighbor matmul
            if i < self.num_layers - 1:
                current = current.advance()
                num_nodes = current.num_nodes
                num_nbrs = len(current.nbrs)
        return int(total)
