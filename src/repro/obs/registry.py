"""Process-wide metrics: counters, gauges, and bounded histograms.

One :class:`MetricsRegistry` holds every metric the subsystems publish,
under hierarchical dotted names (``serve.topk.latency_ms``) with
optional labeled children (``registry.counter("storage.swaps",
store="nodes")``). Two constraints from the telemetry literature the
roadmap cites shape the design:

* **bounded memory** — a :class:`Histogram` is a fixed set of log-spaced
  buckets plus streamed count/sum/min/max: O(1) space no matter how many
  samples flow through, never an unbounded per-sample list;
* **tail-first reporting** — summaries carry p50/p95/p99/max, not just
  means, because the worst case is what an out-of-core system's users
  actually feel (an unlucky partition swap, a slow fsync).

Everything is thread-safe: each metric carries its own lock, and the
registry's get-or-create is serialized, so concurrent trainers, serving
workers, and stream ingest threads can publish without coordination.
:meth:`MetricsRegistry.snapshot` exports the raw state as a flat dict;
:meth:`MetricsRegistry.delta` renders activity *since* a snapshot
(counter differences, interval histogram percentiles) — the shape the
run-log sinks write.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, Optional, Tuple, Type

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_registry", "summarize_histogram", "delta_state",
           "merge_histogram_states"]

# Log-spaced bucket geometry shared by every histogram: 20 buckets per
# decade over 1e-3 .. 1e9 (covers sub-millisecond latencies through
# multi-gigabyte sizes). The geometric bucket midpoint bounds the
# relative quantization error of any reported quantile by
# 10**(1/40) - 1 ~= 5.9%.
_BUCKETS_PER_DECADE = 20
_DECADES = 12
_NUM_BUCKETS = _BUCKETS_PER_DECADE * _DECADES
_LOW = 1e-3
_LOG_LOW = math.log10(_LOW)


def _bucket_index(value: float) -> int:
    i = int(math.floor((math.log10(value) - _LOG_LOW) * _BUCKETS_PER_DECADE))
    return min(max(i, 0), _NUM_BUCKETS - 1)


def _bucket_value(index: int) -> float:
    return 10.0 ** (_LOG_LOW + (index + 0.5) / _BUCKETS_PER_DECADE)


LabelKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _full_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class _Metric:
    """Shared shape: a name, optional labels, and a private lock."""

    kind = ""

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()


class Counter(_Metric):
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        super().__init__(name, labels)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += int(n)

    @property
    def value(self) -> int:
        return self._value

    def state(self) -> int:
        return self._value


class Gauge(_Metric):
    """A point-in-time value (queue depth, resident partitions)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> float:
        return self._value


class Histogram(_Metric):
    """A bounded distribution sketch: fixed log-spaced buckets plus
    streamed count/sum/min/max. ``observe`` is O(1) time and the whole
    histogram is O(1) space; quantiles interpolate at the geometric
    midpoint of the covering bucket (clamped into the observed
    [min, max]). Values ``<= 0`` land in a dedicated zero bucket."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._zero = 0
        self._counts: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if value <= 0.0:
                self._zero += 1
            else:
                i = _bucket_index(value)
                self._counts[i] = self._counts.get(i, 0) + 1

    def state(self) -> Dict[str, Any]:
        """Raw exportable state (the sparse bucket counts travel along so
        :func:`delta_state` can difference two exports)."""
        with self._lock:
            return {"count": self.count, "sum": self.sum,
                    "min": self.min if self.count else 0.0,
                    "max": self.max if self.count else 0.0,
                    "zero": self._zero, "buckets": dict(self._counts)}

    def quantile(self, q: float) -> float:
        return _quantile(self.state(), q)

    def percentiles(self) -> Dict[str, float]:
        """The tail-first summary: count/sum/mean/min/max/p50/p95/p99."""
        return summarize_histogram(self.state())


def _quantile(state: Dict[str, Any], q: float) -> float:
    count = state["count"]
    if count == 0:
        return 0.0
    target = q * (count - 1) + 1.0          # rank in [1, count]
    cum = state["zero"]
    if cum >= target:
        return min(0.0, state["min"])
    for i in sorted(state["buckets"]):
        cum += state["buckets"][i]
        if cum >= target:
            value = _bucket_value(i)
            return min(max(value, state["min"]), state["max"])
    return state["max"]


def summarize_histogram(state: Dict[str, Any],
                        quantiles: Iterable[float] = (0.5, 0.95, 0.99)
                        ) -> Dict[str, float]:
    """Render a histogram state (or state delta) as a summary dict."""
    count = state["count"]
    out = {"count": count, "sum": state["sum"],
           "mean": state["sum"] / count if count else 0.0,
           "min": state["min"] if count else 0.0,
           "max": state["max"] if count else 0.0}
    for q in quantiles:
        out[f"p{int(q * 100)}"] = _quantile(state, q)
    return out


def delta_state(current: Dict[str, Any],
                baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Histogram activity between two :meth:`Histogram.state` exports.

    Bucket counts and count/sum subtract exactly; min/max are not
    recoverable for an interval from bucket counts alone, so the
    current (since-construction) extremes are carried through.
    """
    buckets = dict(current["buckets"])
    for i, n in baseline.get("buckets", {}).items():
        left = buckets.get(i, 0) - n
        if left > 0:
            buckets[i] = left
        else:
            buckets.pop(i, None)
    return {"count": current["count"] - baseline.get("count", 0),
            "sum": current["sum"] - baseline.get("sum", 0.0),
            "min": current["min"], "max": current["max"],
            "zero": current["zero"] - baseline.get("zero", 0),
            "buckets": buckets}


def merge_histogram_states(states: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum histogram states (or summaries carrying raw buckets) exactly.

    Bucket counts from the same fixed geometry add; count/sum/zero add;
    min/max combine. The result is a state :func:`summarize_histogram`
    accepts, so per-worker run logs merge into one distribution with no
    loss beyond each worker's own bucket quantization — the ``repro top``
    multi-log path. Bucket keys may arrive as strings (JSON round trip).
    """
    out: Dict[str, Any] = {"count": 0, "sum": 0.0, "min": math.inf,
                           "max": -math.inf, "zero": 0, "buckets": {}}
    for state in states:
        count = int(state.get("count", 0))
        if not count:
            continue
        out["count"] += count
        out["sum"] += float(state.get("sum", 0.0))
        out["min"] = min(out["min"], float(state.get("min", 0.0)))
        out["max"] = max(out["max"], float(state.get("max", 0.0)))
        out["zero"] += int(state.get("zero", 0))
        for key, n in (state.get("buckets") or {}).items():
            i = int(key)
            out["buckets"][i] = out["buckets"].get(i, 0) + int(n)
    if not out["count"]:
        out["min"] = out["max"] = 0.0
    return out


class MetricsRegistry:
    """Get-or-create home for every metric, keyed by name + labels."""

    _TYPES: Tuple[Type[_Metric], ...] = (Counter, Gauge, Histogram)

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, cls: Type[_Metric], name: str,
             labels: Dict[str, Any]) -> _Metric:
        key = _labels_key(labels)
        full = _full_name(name, key)
        with self._lock:
            metric = self._metrics.get(full)
            if metric is None:
                metric = cls(name, key)
                self._metrics[full] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {full!r} is a {metric.kind}, not a "
                                f"{cls.kind}")
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def metrics(self) -> Dict[str, _Metric]:
        with self._lock:
            return dict(self._metrics)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat raw-state export: counters/gauges as numbers, histograms
        as their :meth:`Histogram.state` dicts. The baseline input of
        :meth:`delta`."""
        return {full: m.state() for full, m in self.metrics().items()}

    def delta(self, baseline: Optional[Dict[str, Any]] = None,
              buckets: bool = False) -> Dict[str, Any]:
        """Readable activity since ``baseline`` (a prior :meth:`snapshot`;
        ``None`` means since process start): counters differenced, gauges
        at their current value, histograms as interval summaries. With
        ``buckets=True`` each histogram summary additionally carries its
        raw ``zero``/``buckets`` state, so exports from several processes
        can be re-merged exactly (:func:`merge_histogram_states`)."""
        baseline = baseline or {}
        out: Dict[str, Any] = {}
        for full, metric in sorted(self.metrics().items()):
            if isinstance(metric, Counter):
                base = baseline.get(full, 0)
                out[full] = metric.value - (base if isinstance(base, int) else 0)
            elif isinstance(metric, Gauge):
                out[full] = metric.value
            else:
                state = metric.state()
                base = baseline.get(full)
                if isinstance(base, dict):
                    state = delta_state(state, base)
                summary = summarize_histogram(state)
                if buckets:
                    summary["zero"] = state["zero"]
                    summary["buckets"] = dict(state["buckets"])
                out[full] = summary
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# The process-wide default every instrumentation site publishes into.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY
