"""Tracing spans: timed blocks feeding duration histograms.

``span("swap.load")`` times its block into the ``trace.swap.load.ms``
histogram of the default registry (tags become metric labels — keep them
low-cardinality). Spans nest through a :mod:`contextvars` variable, so a
child's duration is attributed to its parent: every finished span knows
its inclusive time *and* its self time (inclusive minus direct
children), and the :class:`SpanRecord` ring keeps the most recent
completions in a bounded deque for post-mortem inspection without any
persistence cost.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .registry import MetricsRegistry, get_registry

__all__ = ["span", "traced", "SpanRecord", "recent_spans",
           "set_ring_capacity", "clear_spans"]


@dataclass
class SpanRecord:
    """One finished span: wall-clock start, inclusive and self duration."""

    name: str
    parent: Optional[str]
    ts: float
    ms: float
    self_ms: float
    tags: Dict[str, Any] = field(default_factory=dict)


class _ActiveSpan:
    __slots__ = ("name", "tags", "child_ms")

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self.child_ms = 0.0


_current: "contextvars.ContextVar[Optional[_ActiveSpan]]" = \
    contextvars.ContextVar("repro_obs_span", default=None)

_ring_lock = threading.Lock()
_ring: deque = deque(maxlen=256)


def set_ring_capacity(n: int) -> None:
    """Resize the recent-span ring (keeps the newest records)."""
    global _ring
    with _ring_lock:
        _ring = deque(_ring, maxlen=max(0, int(n)))


def recent_spans(n: Optional[int] = None) -> List[SpanRecord]:
    """The newest completed spans, oldest first (all, or the last ``n``)."""
    with _ring_lock:
        items = list(_ring)
    return items if n is None else items[-n:]


def clear_spans() -> None:
    with _ring_lock:
        _ring.clear()


@contextlib.contextmanager
def span(name: str, registry: Optional[MetricsRegistry] = None, **tags: Any):
    """Time a block into ``trace.<name>.ms`` and the recent-span ring.

    Nested spans attribute time upward: the parent accumulates each
    child's inclusive duration, so its record's ``self_ms`` is the time
    it spent outside its children. ``tags`` label the histogram child
    and ride along on the :class:`SpanRecord`.
    """
    reg = registry if registry is not None else get_registry()
    parent = _current.get()
    node = _ActiveSpan(name, tags)
    token = _current.set(node)
    ts = time.time()
    t0 = time.perf_counter()
    try:
        yield node
    finally:
        ms = 1000.0 * (time.perf_counter() - t0)
        _current.reset(token)
        if parent is not None:
            parent.child_ms += ms
        reg.histogram(f"trace.{name}.ms", **tags).observe(ms)
        record = SpanRecord(name=name,
                            parent=parent.name if parent else None,
                            ts=ts, ms=ms,
                            self_ms=max(0.0, ms - node.child_ms),
                            tags=dict(tags))
        with _ring_lock:
            _ring.append(record)


def traced(name: Optional[Any] = None,
           registry: Optional[MetricsRegistry] = None) -> Callable:
    """Decorator form of :func:`span`: ``@traced`` or ``@traced("label")``
    wraps every call of the function in a span (default label: the
    function's qualified name)."""
    if callable(name):                       # bare @traced
        fn = name
        return traced(fn.__qualname__)(fn)

    def deco(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, registry=registry):
                return fn(*args, **kwargs)

        return wrapper

    return deco
