"""Run-log sinks and the :class:`Recorder` that drives them.

A sink persists timestamped records for one run. Two record shapes,
one JSON object per line in the :class:`JsonlSink` form::

    {"ts": 1722.5, "type": "event", "event": "epoch", "payload": {...}}
    {"ts": 1724.1, "type": "metrics", "label": "periodic", "metrics": {...}}

Event records mirror the trainer listener hook
(:mod:`repro.train.hooks`) verbatim; metrics records carry the registry
delta since the recorder started (counters as numbers, histograms as
tail summaries) merged with any registered pull *sources* (e.g. a
serving engine's :class:`~repro.serve.stats.ServeStats`).

Durability follows the storage layer's discipline scaled to an
append-only log: each flush appends complete lines and fsyncs (the
parent directory is fsynced once at creation, via
:func:`~repro.storage.atomic.fsync_dir`). A crash mid-flush can tear at
most the trailing line, which :func:`read_jsonl` detects and drops — the
prefix is always a valid record sequence. The ``sink-flush-mid`` crash
point (see ``tests/faultinject.py``) lands half a flush on disk to prove
exactly that.

:class:`NullSink` is the Comet-style silent default: telemetry off means
zero records and zero files.
"""

from __future__ import annotations

import csv
import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..storage.atomic import fsync_dir
from .registry import MetricsRegistry, get_registry

__all__ = ["Sink", "NullSink", "JsonlSink", "CsvSink", "Recorder",
           "make_sink", "read_jsonl", "SINK_KINDS", "CRASH_FLUSH_MID"]

#: Crash point fired between the two halves of a flush's bytes.
CRASH_FLUSH_MID = "sink-flush-mid"

SINK_KINDS = ("none", "jsonl", "csv")


def _json_default(obj: Any) -> Any:
    if hasattr(obj, "item"):                 # numpy scalars
        return obj.item()
    return str(obj)                          # paths and friends


def _flatten(payload: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    """``{"a": {"b": 1}} -> {"a.b": 1}`` — nested dicts join with dots."""
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=name + "."))
        else:
            out[name] = value
    return out


class Sink:
    """Record sink protocol: :meth:`emit` buffers one record in memory;
    :meth:`flush` makes the buffered records durable; :meth:`close`
    flushes a final time."""

    path: Optional[Path] = None

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()


class NullSink(Sink):
    """Telemetry disabled: drops everything, touches no files."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class _AppendingSink(Sink):
    """Shared append+fsync machinery of the file-backed sinks."""

    def __init__(self, path: os.PathLike,
                 fault_hook: Optional[Callable[[str], None]] = None) -> None:
        self.path = Path(path)
        self.fault_hook = fault_hook
        self._lock = threading.Lock()
        self._buffer: List[Any] = []
        self._synced_dir = False

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._buffer.extend(self._encode(record))

    def _encode(self, record: Dict[str, Any]) -> List[Any]:
        raise NotImplementedError

    def _serialize(self, items: List[Any]) -> bytes:
        raise NotImplementedError

    def flush(self) -> None:
        with self._lock:
            items, self._buffer = self._buffer, []
        if not items:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = self._serialize(items)
        with open(self.path, "ab") as fh:
            if self.fault_hook is not None and len(data) > 1:
                # Crash-injection path: land the first half so the
                # torn-tail reader has a real partial record to drop.
                half = len(data) // 2
                fh.write(data[:half])
                fh.flush()
                os.fsync(fh.fileno())
                self.fault_hook(CRASH_FLUSH_MID)
                fh.write(data[half:])
            else:
                fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        if not self._synced_dir:
            fsync_dir(self.path.parent)
            self._synced_dir = True


class JsonlSink(_AppendingSink):
    """One JSON object per line, appended durably per flush."""

    def _encode(self, record: Dict[str, Any]) -> List[Any]:
        return [record]

    def _serialize(self, items: List[Any]) -> bytes:
        return "".join(json.dumps(r, default=_json_default) + "\n"
                       for r in items).encode("utf-8")


class CsvSink(_AppendingSink):
    """Flat ``ts,type,name,value`` rows (numeric values only; histogram
    summaries arrive pre-flattened as ``name.p99`` etc.)."""

    HEADER = ("ts", "type", "name", "value")

    def _encode(self, record: Dict[str, Any]) -> List[Any]:
        ts = record.get("ts", time.time())
        rows: List[Tuple[Any, ...]] = []
        if record.get("type") == "event":
            event = record.get("event", "?")
            rows.append((ts, "event", event, 1))
            for key, value in _flatten(record.get("payload", {})).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    rows.append((ts, "event", f"{event}.{key}", value))
        elif record.get("type") == "metrics":
            label = record.get("label", "metrics")
            for key, value in _flatten(record.get("metrics", {})).items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    rows.append((ts, label, key, value))
        return rows

    def _serialize(self, items: List[Any]) -> bytes:
        out = io.StringIO()
        writer = csv.writer(out)
        if not self.path.exists():
            writer.writerow(self.HEADER)
        writer.writerows(items)
        return out.getvalue().encode("utf-8")


def make_sink(kind: Optional[str], path: Optional[os.PathLike] = None,
              fault_hook: Optional[Callable[[str], None]] = None) -> Sink:
    """Build a sink from its spec spelling (``none`` | ``jsonl`` | ``csv``)."""
    if kind in (None, "none"):
        return NullSink()
    if kind not in SINK_KINDS:
        raise ValueError(f"unknown telemetry sink {kind!r} "
                         f"(expected one of {list(SINK_KINDS)})")
    if path is None:
        raise ValueError(f"telemetry sink {kind!r} needs a path")
    if kind == "jsonl":
        return JsonlSink(path, fault_hook=fault_hook)
    return CsvSink(path, fault_hook=fault_hook)


def read_jsonl(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse a JSONL run log, dropping at most one torn trailing line.

    A crash mid-flush leaves the durable prefix plus possibly a partial
    final line; that tail is silently dropped. A malformed record
    anywhere *else* is real corruption and raises ``ValueError``.
    """
    raw = Path(path).read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break                        # torn tail from a crash
            raise ValueError(f"{path}: corrupt record at line {i + 1}")
    return records


class Recorder:
    """One run's telemetry pump: listener events in, records out.

    Attach :meth:`listener` wherever a ``fn(event, payload)`` progress
    hook is accepted (every trainer, via
    :class:`~repro.train.hooks.ListenerHooks`); each event becomes an
    event record, and every ``flush_every`` events a metrics record is
    written alongside — the registry's delta since the recorder was
    created, merged with the registered pull sources. :meth:`close`
    writes a final metrics record and flushes. All entry points are
    thread-safe and swallow nothing: a sink error propagates, a *source*
    error is skipped (a dead stats object must not kill the run).
    """

    def __init__(self, sink: Sink,
                 registry: Optional[MetricsRegistry] = None,
                 flush_every: int = 25) -> None:
        self.sink = sink
        self.registry = registry if registry is not None else get_registry()
        self.flush_every = max(1, int(flush_every))
        self._baseline = self.registry.snapshot()
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}
        self._lock = threading.Lock()
        self._events = 0
        self._closed = False

    def add_source(self, name: str,
                   fn: Callable[[], Dict[str, Any]]) -> None:
        """Register a pull feeder: ``fn()`` returns a (possibly nested)
        dict sampled into every metrics record under ``<name>.`` keys."""
        self._sources[name] = fn

    # ------------------------------------------------------------------
    def listener(self, event: str, payload: Dict[str, Any]) -> None:
        """The trainer hook shape (:mod:`repro.train.hooks`)."""
        self.sink.emit({"ts": time.time(), "type": "event", "event": event,
                        "payload": payload})
        with self._lock:
            self._events += 1
            due = self._events % self.flush_every == 0
        if due:
            self.record_metrics("periodic")

    @property
    def events(self) -> int:
        return self._events

    def _metrics(self) -> Dict[str, Any]:
        # buckets=True: the raw sparse buckets ride along in every JSONL
        # metrics record so per-worker logs can be merged exactly by
        # bucket addition (`repro top <dir of worker logs>`).
        metrics = self.registry.delta(self._baseline, buckets=True)
        for name, fn in list(self._sources.items()):
            try:
                values = fn()
            except Exception:
                continue
            for key, value in _flatten(values).items():
                metrics[f"{name}.{key}"] = value
        return metrics

    def record_metrics(self, label: str = "periodic") -> None:
        """Write one metrics record and flush the sink."""
        self.sink.emit({"ts": time.time(), "type": "metrics",
                        "label": label, "metrics": self._metrics()})
        self.sink.flush()

    def close(self) -> None:
        """Final metrics record + flush; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.record_metrics("final")
        self.sink.close()
