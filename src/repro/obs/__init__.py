"""Unified telemetry: metrics registry, tracing spans, run-log sinks.

Three layers (see ``docs/observability.md`` for the metric catalog):

* :mod:`~repro.obs.registry` — process-wide counters, gauges, and
  bounded log-bucket histograms under hierarchical names;
* :mod:`~repro.obs.trace` — ``span()``/``@traced`` duration tracing
  feeding ``trace.<name>.ms`` histograms plus a bounded recent-span ring;
* :mod:`~repro.obs.sinks` — JSONL/CSV run logs driven by a
  :class:`~repro.obs.sinks.Recorder` attached to the trainer listener
  hook; the default :class:`~repro.obs.sinks.NullSink` keeps telemetry
  opt-in (no records, no files).

Jobs enable it declaratively through the ``telemetry`` spec section
(``{"sink": "jsonl"}``) or ``repro run --telemetry``; ``repro top
<run-dir>`` renders the resulting log.
"""

from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       get_registry, merge_histogram_states,
                       summarize_histogram)
from .sinks import (CsvSink, JsonlSink, NullSink, Recorder, Sink, make_sink,
                    read_jsonl)
from .trace import SpanRecord, clear_spans, recent_spans, span, traced

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "summarize_histogram", "merge_histogram_states",
    "Sink", "NullSink", "JsonlSink", "CsvSink", "Recorder", "make_sink",
    "read_jsonl",
    "span", "traced", "SpanRecord", "recent_spans", "clear_spans",
]
