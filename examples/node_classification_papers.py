#!/usr/bin/env python
"""Node classification with training-node caching (paper Section 5.2).

Trains a 3-layer GraphSage classifier on a Papers100M-style citation graph
(1% labeled nodes, class-correlated features and edges), twice through the
unified job API:

* fully in memory (kind ``nc-mem``), and
* disk-based (kind ``nc-disk``), with node features in a memmap store and
  the Section 5.2 policy — training nodes relabeled into the first
  partitions, pinned in the buffer all epoch, zero intra-epoch swaps.

The two specs differ only in ``kind`` and the ``storage`` section.

Run:  python examples/node_classification_papers.py
"""

import dataclasses
import tempfile

from repro import api
from repro.api import DataSpec, JobSpec, ModelSpec, StorageSpec, TrainSpec

MEM_SPEC = JobSpec(
    kind="nc-mem",
    # feat_dim set explicitly: features stay 32-wide while the GNN's
    # hidden dimension (model.dim) is 64.
    data=DataSpec(nodes=8000, edges=80000, feat_dim=32, classes=16, seed=0),
    model=ModelSpec(dim=64,
                    fanouts=(15, 10, 5)),   # ordered away from the targets
    train=TrainSpec(batch_size=256, epochs=10, eval_every=2, seed=0))


def main() -> None:
    job = api.build_job(MEM_SPEC)
    data = job.dataset
    graph = data.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{data.num_classes} classes")
    print(f"labeled: {len(data.train_nodes):,} training nodes "
          f"({len(data.train_nodes) / graph.num_nodes:.1%} of the graph — "
          "the sparsity the caching policy exploits)\n")

    print("=== in-memory training ===")
    mem = job.run(verbose=True)
    print(f"test accuracy: {mem.final_accuracy:.4f} "
          f"({mem.mean_epoch_seconds:.2f}s/epoch)\n")

    print("=== disk-based training (features on disk, training nodes cached) ===")
    with tempfile.TemporaryDirectory() as tmp:
        disk_spec = dataclasses.replace(
            MEM_SPEC, kind="nc-disk",
            storage=StorageSpec(workdir=tmp, partitions=16, buffer=8))
        result = api.run(disk_spec, verbose=True)
    print(f"test accuracy: {result.final_accuracy:.4f} "
          f"({result.mean_epoch_seconds:.2f}s/epoch)")
    print(f"IO per epoch: {result.epochs[-1].io_bytes >> 20} MiB in "
          f"{result.epochs[-1].partition_loads} partition loads "
          "(one buffer fill — zero swaps mid-epoch)")
    gap = mem.final_accuracy - result.final_accuracy
    print(f"\ndisk-vs-memory accuracy gap: {gap:+.4f} "
          "(paper Table 3: within ~0.6 points)")


if __name__ == "__main__":
    main()
