#!/usr/bin/env python
"""Node classification with training-node caching (paper Section 5.2).

Trains a 3-layer GraphSage classifier on a Papers100M-style citation graph
(1% labeled nodes, class-correlated features and edges), twice:

* fully in memory, and
* disk-based, with node features in a memmap store and the Section 5.2
  policy — training nodes relabeled into the first partitions, pinned in the
  buffer all epoch, zero intra-epoch partition swaps.

Run:  python examples/node_classification_papers.py
"""

import tempfile
from pathlib import Path

from repro.graph import load_papers100m_mini
from repro.train import (DiskNodeClassificationConfig,
                         DiskNodeClassificationTrainer,
                         NodeClassificationConfig, NodeClassificationTrainer)


def main() -> None:
    data = load_papers100m_mini(num_nodes=8000, num_edges=80000, feat_dim=32,
                                num_classes=16, seed=0)
    graph = data.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{data.num_classes} classes")
    print(f"labeled: {len(data.train_nodes):,} training nodes "
          f"({len(data.train_nodes) / graph.num_nodes:.1%} of the graph — "
          "the sparsity the caching policy exploits)\n")

    config = NodeClassificationConfig(
        hidden_dim=64,
        num_layers=3,
        fanouts=(15, 10, 5),   # ordered away from the target nodes
        batch_size=256,
        num_epochs=10,
        eval_every=2,
        seed=0,
    )

    print("=== in-memory training ===")
    mem = NodeClassificationTrainer(data, config).train(verbose=True)
    print(f"test accuracy: {mem.final_accuracy:.4f} "
          f"({mem.mean_epoch_seconds:.2f}s/epoch)\n")

    print("=== disk-based training (features on disk, training nodes cached) ===")
    with tempfile.TemporaryDirectory() as tmp:
        disk = DiskNodeClassificationConfig(workdir=Path(tmp),
                                            num_partitions=16,
                                            buffer_capacity=8)
        trainer = DiskNodeClassificationTrainer(data, config, disk)
        result = trainer.train(verbose=True)
    print(f"test accuracy: {result.final_accuracy:.4f} "
          f"({result.mean_epoch_seconds:.2f}s/epoch)")
    print(f"IO per epoch: {result.epochs[-1].io_bytes >> 20} MiB in "
          f"{result.epochs[-1].partition_loads} partition loads "
          "(one buffer fill — zero swaps mid-epoch)")
    gap = mem.final_accuracy - result.final_accuracy
    print(f"\ndisk-vs-memory accuracy gap: {gap:+.4f} "
          "(paper Table 3: within ~0.6 points)")


if __name__ == "__main__":
    main()
