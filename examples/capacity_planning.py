#!/usr/bin/env python
"""Capacity planning with the auto-tuner and the cost model (Sections 6, 7).

Given a graph's statistics and a machine, answer the questions a practitioner
asks before training: does it fit in memory? If not, what (p, l, c) should
COMET use? What will an epoch cost on each AWS P3 instance, in memory or from
disk? Reproduces the decision procedure behind the paper's Tables 3-4.

Run:  python examples/capacity_planning.py
"""

from repro.graph import PAPER_DATASETS, paper_stats
from repro.policies import autotune_from_dataset
from repro.sim import (MARIUSGNN, P3_2XLARGE, estimate_epoch,
                       link_prediction_disk_io, smallest_instance_fitting)
from repro.sim.tables import _comet_loads, _dense_workload
from repro.sim.workload import gnn_flops


def main() -> None:
    print(f"{'dataset':<16} {'total GB':>8} {'fits 61GB?':>10} "
          f"{'mem instance':>13} {'p':>5} {'l':>4} {'c':>5}")
    for name in ("fb15k-237", "freebase86m", "wikikg90mv2", "papers100m",
                 "hyperlink2012"):
        stats = paper_stats(name)
        fits = stats.total_gb < P3_2XLARGE.cpu_memory_gb
        try:
            instance = smallest_instance_fitting(stats.total_gb).name
        except ValueError:
            instance = "(none)"
        dim = stats.feat_dim or 50
        tune = autotune_from_dataset(stats.num_nodes, stats.num_edges, dim,
                                     P3_2XLARGE.cpu_memory_gb,
                                     max_physical=8192)
        print(f"{name:<16} {stats.total_gb:>8.0f} {str(fits):>10} "
              f"{instance:>13} {tune.num_physical:>5} {tune.num_logical:>4} "
              f"{tune.buffer_capacity:>5}")

    # Detailed cost plan for Freebase86M link prediction.
    print("\nFreebase86M, 1-layer GraphSage + DistMult, 500 negatives:")
    stats = paper_stats("freebase86m")
    dim = 100
    wl = _dense_workload("freebase86m", (20,), 1500)
    flops = gnn_flops(wl, dim, dim, 1) + 2.0 * 1000 * 500 * dim

    mem_instance = smallest_instance_fitting(stats.total_gb)
    mem = estimate_epoch(MARIUSGNN, stats, wl, flops, mem_instance,
                         stats.num_edges, dim, is_link_prediction=True)
    print(f"  in-memory on {mem.instance}: {mem.epoch_minutes:.1f} min/epoch, "
          f"${mem.cost_per_epoch:.2f}/epoch")

    tune = autotune_from_dataset(stats.num_nodes, stats.num_edges, dim,
                                 P3_2XLARGE.cpu_memory_gb, max_physical=256)
    loads = _comet_loads(tune.num_logical, tune.logical_capacity,
                         tune.num_physical)
    disk = estimate_epoch(MARIUSGNN, stats, wl, flops, P3_2XLARGE,
                          stats.num_edges, dim,
                          io_read_bytes=link_prediction_disk_io(
                              stats, dim, loads, tune.num_physical),
                          is_link_prediction=True)
    print(f"  disk-based on {disk.instance} (p={tune.num_physical}, "
          f"l={tune.num_logical}, c={tune.buffer_capacity}): "
          f"{disk.epoch_minutes:.1f} min/epoch, ${disk.cost_per_epoch:.2f}/epoch")
    ratio = mem.cost_per_epoch / disk.cost_per_epoch
    print(f"  -> disk mode is {ratio:.1f}x cheaper per epoch "
          "(the paper's Table 4 economics)")


if __name__ == "__main__":
    main()
