#!/usr/bin/env python
"""The DENSE data structure under the microscope (paper Section 4).

Builds multi-hop samples with DENSE and with the DGL/PyG-style layerwise
algorithm at increasing GNN depth, showing:

* sample reuse — one-hop sampling runs once per node under DENSE,
* the shrinking mini batches (fewer unique nodes / sampled edges),
* the trimmed forward pass (Algorithm 2) keeping every layer's layout equal,
* and the resulting deep-GNN scaling gap.

Run:  python examples/dense_sampling_deep_gnn.py
"""

import time

import numpy as np

from repro.baselines import LayerwiseSampler
from repro.core import DenseSampler, GNNEncoder
from repro.graph import load_papers100m_mini
from repro.nn import Tensor


def main() -> None:
    graph = load_papers100m_mini(num_nodes=40_000, num_edges=500_000,
                                 feat_dim=32, seed=0).graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")
    targets = np.random.default_rng(0).choice(graph.num_nodes, 512,
                                              replace=False)

    print(f"\n{'depth':>5} | {'DENSE nodes':>11} {'edges':>9} {'ms':>7} | "
          f"{'layerwise nodes':>15} {'edges':>9} {'ms':>7}")
    for depth in (1, 2, 3, 4):
        fanouts = [10] * depth
        dense = DenseSampler(graph, fanouts, rng=np.random.default_rng(1))
        layer = LayerwiseSampler(graph, fanouts, rng=np.random.default_rng(1))

        t0 = time.perf_counter()
        d_batch = dense.sample(targets)
        d_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        l_batch = layer.sample(targets)
        l_ms = (time.perf_counter() - t0) * 1e3

        print(f"{depth:>5} | {d_batch.stats.num_unique_nodes:>11,} "
              f"{d_batch.stats.num_sampled_edges:>9,} {d_ms:>7.1f} | "
              f"{l_batch.stats.num_unique_nodes:>15,} "
              f"{l_batch.stats.num_sampled_edges:>9,} {l_ms:>7.1f}")

    # Anatomy of one DENSE batch: the delta encoding.
    sampler = DenseSampler(graph, [10, 10, 10], rng=np.random.default_rng(2))
    batch = sampler.sample(targets)
    batch.validate()
    print("\nDENSE anatomy (3-hop sample):")
    for d in range(batch.num_deltas):
        role = {0: "innermost (base reps only)",
                batch.num_deltas - 1: "targets"}.get(d, "intermediate")
        print(f"  delta {d}: {len(batch.delta(d)):>7,} nodes  [{role}]")
    print(f"  one-hop sampling calls: {batch.stats.one_hop_calls:,} "
          "(== nodes with neighbor runs; each node sampled exactly once)")

    # Forward pass: the same layer implementation at every depth, thanks to
    # Algorithm 2's trimming.
    enc = GNNEncoder("graphsage", [32, 32, 32, 32], rng=np.random.default_rng(3))
    h0 = Tensor(graph.node_features[batch.node_ids], requires_grad=True)
    t0 = time.perf_counter()
    out = enc(h0, batch)
    loss = (out * out).sum()
    loss.backward()
    print(f"\nforward+backward over DENSE: out={out.shape}, "
          f"{(time.perf_counter() - t0) * 1e3:.1f} ms; "
          f"gradients reach all {h0.shape[0]:,} base representations: "
          f"{h0.grad is not None}")


if __name__ == "__main__":
    main()
