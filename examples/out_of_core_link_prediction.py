#!/usr/bin/env python
"""Out-of-core link prediction: COMET vs BETA on a disk-backed graph.

This example exercises the paper's headline scenario (Sections 3, 5, 7.5):
node embeddings and edge buckets live in memmap files on disk, a partition
buffer holds only 1/4 of the partitions in memory, and a replacement policy
schedules which partitions (and which training-example buckets) are processed
while each set is resident. Everything runs through the unified job API —
the in-memory reference is an ``lp-mem`` job, the two disk runs are
``lp-disk`` jobs differing only in ``storage.policy`` — then reports MRR,
IO traffic, and the Edge Permutation Bias of each policy's schedule.

Run:  python examples/out_of_core_link_prediction.py
"""

import dataclasses
import tempfile

import numpy as np

from repro import api
from repro.api import (DataSpec, JobSpec, ModelSpec, StorageSpec, TrainSpec)
from repro.graph import EdgeBuckets, Graph, PartitionScheme
from repro.policies import (BetaPolicy, CometPolicy, edge_permutation_bias,
                            workload_balance)

P, L, C = 16, 8, 4  # physical partitions, logical partitions, buffer capacity

BASE_SPEC = JobSpec(
    kind="lp-mem",
    data=DataSpec(dataset="fb15k237", scale=0.25, seed=1),
    model=ModelSpec(dim=32, encoder="graphsage", fanouts=(10,)),
    train=TrainSpec(batch_size=512, negatives=64, epochs=4, eval_every=0,
                    eval_negatives=100, eval_max_edges=1000, seed=0))


def main() -> None:
    # In-memory reference: the accuracy target disk-based training chases.
    mem_job = api.build_job(BASE_SPEC)
    data = mem_job.dataset
    print(f"graph: {data.graph.num_nodes:,} nodes, {data.graph.num_edges:,} edges")
    print(f"storage: {P} physical partitions, buffer holds {C} (25% resident)\n")
    mem = mem_job.run()
    print(f"in-memory reference MRR: {mem.final_mrr:.4f} "
          f"({mem.mean_epoch_seconds:.1f}s/epoch)\n")

    for policy in ("comet", "beta"):
        with tempfile.TemporaryDirectory() as tmp:
            spec = dataclasses.replace(
                BASE_SPEC, kind="lp-disk",
                storage=StorageSpec(workdir=tmp, partitions=P, logical=L,
                                    buffer=C, policy=policy))
            result = api.run(spec)
            epoch = result.epochs[-1]
            print(f"{policy.upper():6s} disk MRR {result.final_mrr:.4f} "
                  f"({result.final_mrr / mem.final_mrr:.0%} of in-memory) | "
                  f"{epoch.io_bytes >> 20} MiB IO/epoch, "
                  f"{epoch.partition_loads} partition loads, "
                  f"{result.mean_epoch_seconds:.1f}s/epoch")

    print("\n(single-seed MRR comparisons at this scale are noisy; "
          "benchmarks/test_table8_comet_vs_beta.py averages seeds)")

    # Why COMET wins: less correlated training-example order (lower B) and a
    # balanced workload that keeps the prefetch pipeline busy.
    edges = data.split.train
    graph = Graph(num_nodes=data.graph.num_nodes, src=edges[:, 0],
                  dst=edges[:, -1], rel=edges[:, 1],
                  num_relations=data.graph.num_relations)
    buckets = EdgeBuckets(graph, PartitionScheme.uniform(graph.num_nodes, P))
    print("\nschedule diagnostics (mean of 4 epochs):")
    for name, make in (("COMET", lambda: CometPolicy(P, L, C)),
                       ("BETA", lambda: BetaPolicy(P, C))):
        biases, cvs = [], []
        for e in range(4):
            plan = make().plan_epoch(e, np.random.default_rng(e))
            biases.append(edge_permutation_bias(plan, buckets))
            cvs.append(workload_balance(plan, buckets)[0])
        print(f"  {name:6s} edge-permutation bias B = {np.mean(biases):.3f}, "
              f"per-step workload CV = {np.mean(cvs):.2f}")


if __name__ == "__main__":
    main()
