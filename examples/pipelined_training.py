#!/usr/bin/env python
"""Pipelined training: the threaded mini-batch pipeline of paper Figure 2.

MariusGNN's throughput comes from overlap: sampler workers prepare batches
i+1..i+d while the device computes batch i and a background writer applies
base-representation updates. This example runs the same declarative job
spec through the synchronous (``lp-mem``) and the pipelined
(``lp-pipelined``) kinds — only the ``kind`` and the pipeline knobs differ
— and reports the pipeline's health metrics (compute starvation,
write-back backlog) plus model-quality parity under bounded staleness.

Run:  python examples/pipelined_training.py
"""

import dataclasses

from repro import api
from repro.api import DataSpec, JobSpec, ModelSpec, TrainSpec

SYNC_SPEC = JobSpec(
    kind="lp-mem",
    data=DataSpec(dataset="fb15k237", scale=0.2),
    model=ModelSpec(dim=32, encoder="graphsage", fanouts=(10, 5)),
    train=TrainSpec(batch_size=512, negatives=64, epochs=3, eval_every=0,
                    eval_negatives=100, eval_max_edges=800, seed=0))


def main() -> None:
    print("=== synchronous (one batch at a time) ===")
    sync = api.run(SYNC_SPEC, verbose=True)

    print("\n=== pipelined (2 sampler workers, depth-4 queue, async updates) ===")
    piped_spec = dataclasses.replace(
        SYNC_SPEC, kind="lp-pipelined",
        train=dataclasses.replace(SYNC_SPEC.train, workers=2,
                                  pipeline_depth=4))
    job = api.build_job(piped_spec)
    piped = job.run(verbose=True)

    print("\nsummary:")
    print(f"  sync      MRR {sync.final_mrr:.4f}  "
          f"{sync.mean_epoch_seconds:.2f}s/epoch")
    print(f"  pipelined MRR {piped.final_mrr:.4f}  "
          f"{piped.mean_epoch_seconds:.2f}s/epoch")
    stats = job.trainer.pipeline_stats[-1]
    starved = stats.sample_wait_seconds / max(piped.epochs[-1].seconds, 1e-9)
    print(f"  pipeline: compute starved {starved:.0%} of the epoch, "
          f"max write-back backlog {stats.update_backlog_max} batches")
    print("\nBounded staleness (a batch may see embeddings up to "
          "pipeline-depth updates old) trades a little accuracy for overlap; "
          "on CUDA the overlap buys the paper's throughput, under the GIL it "
          "mostly demonstrates the mechanism.")


if __name__ == "__main__":
    main()
