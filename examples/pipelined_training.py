#!/usr/bin/env python
"""Pipelined training: the threaded mini-batch pipeline of paper Figure 2.

MariusGNN's throughput comes from overlap: sampler workers prepare batches
i+1..i+d while the device computes batch i and a background writer applies
base-representation updates. This example runs the same workload through the
synchronous and the pipelined trainer and reports the pipeline's health
metrics (compute starvation, write-back backlog) plus model-quality parity
under bounded staleness.

Run:  python examples/pipelined_training.py
"""

from repro.graph import load_fb15k237
from repro.train import (LinkPredictionConfig, LinkPredictionTrainer,
                         PipelinedLinkPredictionTrainer)


def main() -> None:
    data = load_fb15k237(scale=0.2, seed=0)
    config = LinkPredictionConfig(
        embedding_dim=32, encoder="graphsage", num_layers=2, fanouts=(10, 5),
        batch_size=512, num_negatives=64, num_epochs=3,
        eval_negatives=100, eval_max_edges=800, seed=0)

    print("=== synchronous (one batch at a time) ===")
    sync = LinkPredictionTrainer(data, config).train(verbose=True)

    print("\n=== pipelined (2 sampler workers, depth-4 queue, async updates) ===")
    trainer = PipelinedLinkPredictionTrainer(data, config,
                                             num_sample_workers=2,
                                             pipeline_depth=4)
    piped = trainer.train(verbose=True)

    print("\nsummary:")
    print(f"  sync      MRR {sync.final_mrr:.4f}  "
          f"{sync.mean_epoch_seconds:.2f}s/epoch")
    print(f"  pipelined MRR {piped.final_mrr:.4f}  "
          f"{piped.mean_epoch_seconds:.2f}s/epoch")
    stats = trainer.pipeline_stats[-1]
    starved = stats.sample_wait_seconds / max(piped.epochs[-1].seconds, 1e-9)
    print(f"  pipeline: compute starved {starved:.0%} of the epoch, "
          f"max write-back backlog {stats.update_backlog_max} batches")
    print("\nBounded staleness (a batch may see embeddings up to "
          "pipeline-depth updates old) trades a little accuracy for overlap; "
          "on CUDA the overlap buys the paper's throughput, under the GIL it "
          "mostly demonstrates the mechanism.")


if __name__ == "__main__":
    main()
