#!/usr/bin/env python
"""Serve queries from a trained snapshot, out-of-core.

Trains a small decoder-only link prediction model on disk (the paper's
out-of-core setup) as an ``lp-disk`` job, snapshots it through the job
protocol, then serves three query families through a read-only partition
buffer holding 25% of the partitions — a ``serve`` job over the same
unified API:

* embedding lookups, paged through the buffer (bit-equal to the table),
* edge scoring, bit-identical to offline evaluation scoring,
* top-k link prediction, streaming candidate partitions blockwise,

first directly against the engine, then through the micro-batching
`RequestBatcher` with per-request latency accounting.

Run:  python examples/serving_queries.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import api
from repro.api import (DataSpec, JobSpec, ModelSpec, ServeSpec, StorageSpec,
                       TrainSpec)
from repro.serve import RequestBatcher
from repro.train import score_edges_offline

P, C = 16, 4  # physical partitions; buffer capacity (25% resident)


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-example-"))

    # --- train out-of-core and snapshot -------------------------------
    train_spec = JobSpec(
        kind="lp-disk",
        data=DataSpec(dataset="fb15k237", scale=0.25, seed=1),
        model=ModelSpec(dim=32, encoder="none", decoder="distmult"),
        train=TrainSpec(batch_size=512, negatives=64, epochs=2, eval_every=0,
                        seed=0),
        storage=StorageSpec(workdir=str(tmp / "train"), partitions=P,
                            logical=8, buffer=C))
    train_job = api.build_job(train_spec)
    data = train_job.dataset
    print(f"graph: {data.graph.num_nodes:,} nodes, "
          f"{data.graph.num_edges:,} edges")
    result = train_job.run()
    snapshot = train_job.snapshot()
    print(f"trained: MRR {result.final_mrr:.4f}; snapshot {snapshot.name}\n")

    # --- serve it ------------------------------------------------------
    serve_job = api.build_job(JobSpec(
        kind="serve",
        serve=ServeSpec(snapshot=str(snapshot)),
        storage=StorageSpec(workdir=str(tmp / "serve"), buffer=C)))
    engine = serve_job.engine
    print(f"serving with buffer {C}/{P} partitions "
          f"({C / P:.0%} resident), QueryLRU replacement")

    # 1. Paged embedding lookups equal the full table.
    ids = np.random.default_rng(0).integers(0, data.graph.num_nodes, 1000)
    embs = engine.get_embeddings(ids)
    table = train_job.trainer.node_store.read_all()
    assert np.array_equal(embs, table[ids])
    print(f"lookups: {len(ids)} rows served, "
          f"{engine.stats.swaps} partition swaps, bit-equal to the table")

    # 2. Served scores are bit-identical to offline evaluation scoring.
    held_out = data.split.test[:500]
    served = engine.score_edges(held_out)
    offline = score_edges_offline(train_job.trainer.model, table, held_out)
    assert np.array_equal(served, offline)
    print(f"scoring: {len(held_out)} held-out edges, "
          f"bit-identical to offline evaluation")

    # 3. Top-k link prediction, streamed blockwise through the buffer.
    src, rel = int(held_out[0, 0]), int(held_out[0, 1])
    top_ids, top_scores = engine.topk_targets(src, 5, rel=rel, exclude=[src])
    print(f"top-5 targets for ({src}, rel {rel}): "
          + ", ".join(f"{i} ({s:.3f})" for i, s in zip(top_ids, top_scores)))

    # --- micro-batched serving ----------------------------------------
    print("\nmicro-batched serving (max_batch=128, max_wait_ms=2):")
    queries = np.random.default_rng(1).zipf(1.3, size=2000)
    queries = np.minimum(queries, data.graph.num_nodes) - 1
    with RequestBatcher(engine, max_batch=128, max_wait_ms=2.0) as batcher:
        requests = [batcher.submit("embed", queries[i : i + 1])
                    for i in range(len(queries))]
        for request in requests:
            request.wait()
        summary = batcher.latency_percentiles()
    print(f"  {summary['n']} requests, p50 {summary['p50_ms']:.2f}ms, "
          f"p99 {summary['p99_ms']:.2f}ms, "
          f"mean batch {np.mean(batcher.batch_sizes):.0f}")
    print(f"  engine totals: {engine.stats.lookups} lookups, "
          f"{engine.stats.swaps} swaps "
          f"({engine.stats.swaps_per_1k(engine.stats.lookups):.1f}/1k)")


if __name__ == "__main__":
    main()
