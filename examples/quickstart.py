#!/usr/bin/env python
"""Quickstart: train a GraphSage link prediction model in memory.

Covers the minimal MariusGNN workflow on an FB15k-237-style knowledge graph
through the unified job API: declare a typed ``JobSpec`` (kind ``lp-mem``),
build it, train for a few epochs, and evaluate MRR / Hits@K. The same spec
serialized to JSON runs via ``python -m repro run``
(see examples/specs/quickstart_lp_mem.json and docs/api.md).

Run:  python examples/quickstart.py
"""

from repro import api
from repro.api import DataSpec, JobSpec, ModelSpec, TrainSpec


def main() -> None:
    # FB15k-237 at 20% scale keeps this example under a minute on a laptop.
    spec = JobSpec(
        kind="lp-mem",
        data=DataSpec(dataset="fb15k237", scale=0.2),
        model=ModelSpec(
            dim=50,                # learnable base representations
            encoder="graphsage",   # 1-layer GNN on top (paper Section 7.1)
            fanouts=(20,),         # 20 neighbors sampled per target node
            decoder="distmult"),
        train=TrainSpec(batch_size=1000,
                        negatives=100,  # shared negative pool per batch
                        epochs=5, seed=0))

    # build_job exposes the underlying trainer for anything run() doesn't
    # cover — here, an untrained baseline evaluation before training.
    job = api.build_job(spec)
    data = job.dataset
    graph = data.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{graph.num_relations} relation types")
    print(f"split: {len(data.split.train):,} train / "
          f"{len(data.split.valid):,} valid / {len(data.split.test):,} test edges")

    untrained = job.trainer.evaluate()
    print(f"\nuntrained MRR: {untrained.mrr:.4f} (chance-level baseline)")

    print("\ntraining...")
    result = job.run(verbose=True)

    metrics = result.final_metrics
    print(f"\nfinal test metrics over {metrics.num_examples} edges:")
    print(f"  MRR      {metrics.mrr:.4f}")
    print(f"  Hits@1   {metrics.hits_at_1:.4f}")
    print(f"  Hits@10  {metrics.hits_at_10:.4f}")
    print(f"  mean epoch time {result.mean_epoch_seconds:.2f}s")


if __name__ == "__main__":
    main()
