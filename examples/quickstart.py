#!/usr/bin/env python
"""Quickstart: train a GraphSage link prediction model in memory.

Covers the minimal MariusGNN workflow on an FB15k-237-style knowledge graph:
load a dataset, configure a 1-layer GraphSage encoder with a DistMult
decoder, train for a few epochs, and evaluate MRR / Hits@K.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.graph import load_fb15k237
from repro.train import LinkPredictionConfig, LinkPredictionTrainer


def main() -> None:
    # FB15k-237 at 20% scale keeps this example under a minute on a laptop.
    data = load_fb15k237(scale=0.2, seed=0)
    graph = data.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{graph.num_relations} relation types")
    print(f"split: {len(data.split.train):,} train / "
          f"{len(data.split.valid):,} valid / {len(data.split.test):,} test edges")

    config = LinkPredictionConfig(
        embedding_dim=50,          # learnable base representations
        encoder="graphsage",       # 1-layer GNN on top (paper Section 7.1)
        num_layers=1,
        fanouts=(20,),             # 20 neighbors sampled per target node
        directions="both",         # incoming and outgoing edges
        decoder="distmult",
        batch_size=1000,
        num_negatives=100,         # shared negative pool per batch
        num_epochs=5,
        eval_every=1,
        seed=0,
    )

    trainer = LinkPredictionTrainer(data, config)
    untrained = trainer.evaluate()
    print(f"\nuntrained MRR: {untrained.mrr:.4f} (chance-level baseline)")

    print("\ntraining...")
    result = trainer.train(verbose=True)

    metrics = result.final_metrics
    print(f"\nfinal test metrics over {metrics.num_examples} edges:")
    print(f"  MRR      {metrics.mrr:.4f}")
    print(f"  Hits@1   {metrics.hits_at_1:.4f}")
    print(f"  Hits@10  {metrics.hits_at_10:.4f}")
    print(f"  mean epoch time {result.mean_epoch_seconds:.2f}s")


if __name__ == "__main__":
    main()
