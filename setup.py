"""Legacy setup shim: enables `python setup.py develop` on environments
without the `wheel` package (offline editable install fallback)."""
from setuptools import setup

setup()
