"""Node classification cache policy (Section 5.2) and auto-tuning (Section 6)."""

import numpy as np
import pytest

from repro.graph import PartitionScheme
from repro.policies import (GraphSpec, HardwareSpec, TrainingNodeCachePolicy,
                            autotune, autotune_from_dataset)


class TestTrainingNodeCachePolicy:
    def make(self, p=8, c=4, k=2, num_nodes=800):
        scheme = PartitionScheme.uniform(num_nodes, p)
        train_parts = list(range(k))
        train_nodes = np.concatenate(
            [scheme.partition_nodes(q) for q in train_parts])
        return TrainingNodeCachePolicy(p, c, train_parts, train_nodes,
                                       scheme=scheme), train_nodes

    def test_single_step_when_fits(self):
        policy, train_nodes = self.make()
        plan = policy.plan_epoch(0, np.random.default_rng(0))
        assert len(plan.steps) == 1
        step = plan.steps[0]
        # Training partitions pinned + random fill to capacity.
        assert set([0, 1]).issubset(step.partitions)
        assert len(step.partitions) == 4
        np.testing.assert_array_equal(np.sort(step.train_nodes),
                                      np.sort(train_nodes))

    def test_zero_intra_epoch_io(self):
        policy, _ = self.make()
        plan = policy.plan_epoch(0, np.random.default_rng(0))
        # All IO is the single initial fill.
        assert plan.total_partition_loads == plan.buffer_capacity

    def test_random_fill_varies_by_epoch(self):
        policy, _ = self.make()
        p0 = policy.plan_epoch(0, np.random.default_rng(0)).steps[0].partitions
        p1 = policy.plan_epoch(1, np.random.default_rng(1)).steps[0].partitions
        assert p0 != p1 or True  # different with high probability; check fills
        fills = {tuple(policy.plan_epoch(e, np.random.default_rng(e)).steps[0].partitions)
                 for e in range(6)}
        assert len(fills) > 1

    def test_fallback_when_train_does_not_fit(self):
        policy, train_nodes = self.make(p=8, c=3, k=4)
        assert not policy.fits
        plan = policy.plan_epoch(0, np.random.default_rng(0))
        assert plan.policy.endswith("fallback")
        # Every partition appears at least once.
        seen = set()
        for step in plan.steps:
            seen.update(step.partitions)
        assert seen == set(range(8))
        # Every training node is processed exactly once.
        processed = np.concatenate([s.train_nodes for s in plan.steps])
        np.testing.assert_array_equal(np.sort(processed), np.sort(train_nodes))

    def test_fallback_requires_scheme(self):
        policy = TrainingNodeCachePolicy(8, 3, list(range(4)),
                                         np.arange(10), scheme=None)
        with pytest.raises(ValueError):
            policy.plan_epoch(0)


class TestAutotune:
    def test_freebase86m_on_p3_2xlarge(self):
        """The paper's headline disk setup: Freebase86M does NOT fit in 61GB
        (with optimizer state), so autotuning must produce c < p with the
        COMET constraints satisfied."""
        res = autotune_from_dataset(86_000_000, 338_000_000, 100, 61.0)
        assert res.buffer_capacity < res.num_physical
        assert res.logical_capacity == 2
        assert res.num_physical % res.num_logical == 0
        group = res.num_physical // res.num_logical
        assert res.buffer_capacity == 2 * group

    def test_small_graph_degenerates_to_memory(self):
        res = autotune_from_dataset(10_000, 100_000, 50, 61.0)
        assert res.buffer_capacity == res.num_physical

    def test_p_scales_with_node_overhead(self):
        small = autotune_from_dataset(1_000_000, 400_000_000, 100, 61.0)
        # alpha4 = min(NO/D, sqrt(EO/D)): tiny node table caps p via NO.
        assert small.alpha4 == pytest.approx(
            min(1_000_000 * 100 * 4 * 2 / (128 << 10),
                np.sqrt(400_000_000 * 24 / (128 << 10))))

    def test_memory_constraint_respected(self):
        res = autotune_from_dataset(86_000_000, 338_000_000, 100, 61.0)
        used = (res.buffer_capacity * res.partition_bytes
                + 2 * res.buffer_capacity**2 * res.edge_bucket_bytes)
        assert used < (61.0 - 2.0) * (1 << 30)

    def test_huge_graph_still_tunable_with_enough_partitions(self):
        """Even a hyperlink-scale graph fits a 16GB machine once p is large
        enough for partitions to shrink below the buffer budget."""
        res = autotune_from_dataset(4_000_000_000, 100_000_000_000, 400, 16.0)
        assert 2 <= res.buffer_capacity < res.num_physical

    def test_graph_too_big_for_capped_partitions_raises(self):
        """If p is capped so low that two partitions exceed RAM, tuning fails."""
        with pytest.raises(ValueError):
            autotune_from_dataset(4_000_000_000, 100_000_000_000, 400, 16.0,
                                  max_physical=2)

    def test_fudge_larger_than_memory(self):
        graph = GraphSpec(1000, 1000, 8)
        hw = HardwareSpec(cpu_memory_bytes=1 << 30, fudge_bytes=2 << 30)
        with pytest.raises(ValueError):
            autotune(graph, hw)

    def test_state_factor_doubles_node_overhead(self):
        a = GraphSpec(100, 10, 4, state_factor=1.0).node_overhead
        b = GraphSpec(100, 10, 4, state_factor=2.0).node_overhead
        assert b == 2 * a

    def test_max_physical_cap(self):
        res = autotune_from_dataset(86_000_000, 338_000_000, 100, 61.0,
                                    max_physical=32)
        assert res.num_physical <= 32

    def test_prime_alpha4_does_not_collapse_buffer(self):
        """WikiKG90Mv2's raw rule gives p = 331 (prime); the tuner must trade
        one partition of granularity for a usable buffer instead of
        collapsing to c = 2 (0.6% residency)."""
        res = autotune_from_dataset(91_000_000, 601_000_000, 100, 61.0)
        assert res.buffer_capacity >= 0.3 * res.num_physical
        assert res.num_physical % res.num_logical == 0
        assert res.buffer_capacity * res.partition_bytes < (61 - 2) * (1 << 30)
