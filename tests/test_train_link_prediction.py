"""Link prediction trainer tests: learning signal, disk modes, evaluation."""

import numpy as np
import pytest

from repro.graph import load_fb15k237
from repro.train import (DiskConfig, DiskLinkPredictionTrainer,
                         LinkPredictionConfig, LinkPredictionTrainer,
                         UniformNegativeSampler)


@pytest.fixture(scope="module")
def small_lp_data():
    return load_fb15k237(scale=0.05, seed=0)


def fast_config(**overrides):
    defaults = dict(embedding_dim=16, num_layers=1, fanouts=(8,), batch_size=256,
                    num_negatives=32, num_epochs=2, eval_negatives=64,
                    eval_max_edges=300, seed=0)
    defaults.update(overrides)
    return LinkPredictionConfig(**defaults)


class TestConfig:
    def test_fanout_layer_mismatch(self):
        with pytest.raises(ValueError):
            LinkPredictionConfig(num_layers=2, fanouts=(10,))

    def test_encoder_none_zeroes_layers(self):
        cfg = LinkPredictionConfig(encoder="none", num_layers=3, fanouts=(1, 1, 1))
        assert cfg.num_layers == 0 and cfg.fanouts == ()


class TestInMemoryTraining:
    def test_training_improves_mrr(self, small_lp_data):
        trainer = LinkPredictionTrainer(small_lp_data, fast_config(num_epochs=3))
        before = trainer.evaluate().mrr
        result = trainer.train()
        assert result.final_mrr > before * 1.5
        assert len(result.epochs) == 3
        assert result.epochs[-1].loss < result.epochs[0].loss

    def test_decoder_only_distmult(self, small_lp_data):
        """Marius mode: no GNN encoder, embeddings + DistMult only."""
        trainer = LinkPredictionTrainer(small_lp_data,
                                        fast_config(encoder="none", num_epochs=3))
        before = trainer.evaluate().mrr
        result = trainer.train()
        assert result.final_mrr > before

    def test_gat_encoder_trains(self, small_lp_data):
        trainer = LinkPredictionTrainer(
            small_lp_data, fast_config(encoder="gat", fanouts=(6,),
                                       directions="in", num_epochs=1))
        result = trainer.train()
        assert np.isfinite(result.final_mrr)

    def test_epoch_records_stage_times(self, small_lp_data):
        trainer = LinkPredictionTrainer(small_lp_data, fast_config(num_epochs=1))
        result = trainer.train()
        rec = result.epochs[0]
        assert rec.sample_seconds > 0 and rec.compute_seconds > 0
        assert rec.num_batches > 0

    def test_eval_every(self, small_lp_data):
        trainer = LinkPredictionTrainer(small_lp_data,
                                        fast_config(num_epochs=2, eval_every=1))
        result = trainer.train()
        assert all(e.metric > 0 for e in result.epochs)


class TestDiskTraining:
    @pytest.mark.parametrize("policy", ["comet", "beta"])
    def test_disk_training_learns(self, small_lp_data, tmp_path, policy):
        disk = DiskConfig(workdir=tmp_path / policy, num_partitions=8,
                          num_logical=4, buffer_capacity=4, policy=policy)
        trainer = DiskLinkPredictionTrainer(small_lp_data,
                                            fast_config(num_epochs=2), disk)
        before = trainer.evaluate().mrr
        result = trainer.train()
        assert result.final_mrr > before
        assert result.epochs[0].io_bytes > 0
        assert result.epochs[0].partition_loads >= disk.buffer_capacity

    def test_unknown_policy(self, small_lp_data, tmp_path):
        disk = DiskConfig(workdir=tmp_path, policy="lru")
        with pytest.raises(ValueError):
            DiskLinkPredictionTrainer(small_lp_data, fast_config(), disk)

    def test_both_policies_reach_reasonable_mrr(self, small_lp_data, tmp_path):
        """Both policies must learn; the COMET > BETA accuracy comparison is
        statistically meaningful only at Table 8's scale and lives in
        benchmarks/test_table8_comet_vs_beta.py (the bias-metric ordering is
        asserted deterministically in test_policies.py)."""
        for policy in ("comet", "beta"):
            disk = DiskConfig(workdir=tmp_path / policy, num_partitions=8,
                              num_logical=4, buffer_capacity=4, policy=policy)
            trainer = DiskLinkPredictionTrainer(
                small_lp_data, fast_config(num_epochs=3), disk)
            assert trainer.train().final_mrr > 0.15

    def test_disk_io_accounted_every_epoch(self, small_lp_data, tmp_path):
        disk = DiskConfig(workdir=tmp_path, num_partitions=8, num_logical=4,
                          buffer_capacity=4)
        trainer = DiskLinkPredictionTrainer(small_lp_data,
                                            fast_config(num_epochs=2), disk)
        result = trainer.train()
        assert all(e.io_bytes > 0 for e in result.epochs)


class TestNegativeSampler:
    def test_uniform_range(self):
        sampler = UniformNegativeSampler(100, 50, rng=np.random.default_rng(0))
        batch = sampler.sample()
        assert len(batch.nodes) == 50
        assert batch.nodes.min() >= 0 and batch.nodes.max() < 100

    def test_allowed_subset(self):
        allowed = np.array([7, 8, 9])
        sampler = UniformNegativeSampler(100, 20, allowed=allowed,
                                         rng=np.random.default_rng(0))
        assert set(sampler.sample().nodes.tolist()).issubset({7, 8, 9})

    def test_set_allowed_swaps_pool(self):
        sampler = UniformNegativeSampler(100, 20, rng=np.random.default_rng(0))
        sampler.set_allowed(np.array([3]))
        assert (sampler.sample().nodes == 3).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformNegativeSampler(10, 5, allowed=np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            UniformNegativeSampler(10, 0)
