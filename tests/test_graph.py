"""Graph container, splits, generators, and dataset registry tests."""

import numpy as np
import pytest

from repro.graph import (Graph, PAPER_DATASETS, chain_graph, citation_graph,
                         erdos_renyi_graph, load_fb15k237, load_papers100m_mini,
                         paper_stats, power_law_graph, split_edges, star_graph)


class TestGraph:
    def test_validates_endpoints(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=2, src=np.array([0]), dst=np.array([5]))

    def test_validates_negative(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=2, src=np.array([-1]), dst=np.array([0]))

    def test_rel_alignment(self):
        with pytest.raises(ValueError):
            Graph(num_nodes=3, src=np.array([0, 1]), dst=np.array([1, 2]),
                  rel=np.array([0]))

    def test_num_relations_inferred(self):
        g = Graph(num_nodes=3, src=np.array([0, 1]), dst=np.array([1, 2]),
                  rel=np.array([0, 4]))
        assert g.num_relations == 5

    def test_edges_matrix_with_relations(self):
        g = Graph(num_nodes=3, src=np.array([0]), dst=np.array([2]),
                  rel=np.array([1]))
        np.testing.assert_array_equal(g.edges(), [[0, 1, 2]])

    def test_degrees(self):
        g = star_graph(4)
        np.testing.assert_array_equal(g.degree_in(), [4, 0, 0, 0, 0])
        np.testing.assert_array_equal(g.degree_out(), [0, 1, 1, 1, 1])

    def test_subgraph_edges_keeps_ids(self):
        g = chain_graph(5)
        mask = np.array([True, True, True, False, False])
        sub = g.subgraph_edges(mask)
        assert sub.num_nodes == 5
        assert sub.num_edges == 2  # 0->1, 1->2

    def test_with_reversed_edges(self):
        g = chain_graph(3)
        sym = g.with_reversed_edges()
        assert sym.num_edges == 2 * g.num_edges
        assert (sym.degree_in() == sym.degree_out()).all()

    def test_memory_accounting(self):
        g = chain_graph(10)
        mem = g.memory_bytes(feat_dim=4)
        assert mem["edges"] == 9 * 16
        assert mem["features"] == 10 * 16
        assert mem["total"] == mem["edges"] + mem["features"]


class TestSplits:
    def test_split_partitions_edges(self):
        g = power_law_graph(200, 2000, seed=0)
        split = split_edges(g, valid_fraction=0.1, test_fraction=0.1,
                            rng=np.random.default_rng(0))
        total = len(split.train) + len(split.valid) + len(split.test)
        assert total == g.num_edges
        assert len(split.valid) == 200 and len(split.test) == 200

    def test_split_no_overlap(self):
        g = power_law_graph(100, 500, seed=1)
        split = split_edges(g, rng=np.random.default_rng(1))
        def keys(arr):
            return {tuple(row) for row in arr}
        # Multigraph duplicates make exact disjointness impossible to require,
        # but the index partition guarantees the counts are disjoint.
        assert len(split.train) + len(split.valid) + len(split.test) == g.num_edges


class TestGenerators:
    def test_power_law_heavy_tail(self):
        g = power_law_graph(2000, 30000, exponent=2.1, seed=0)
        deg = g.degree_in() + g.degree_out()
        # Top 1% of nodes should hold a disproportionate share of edges.
        top = np.sort(deg)[-20:].sum()
        assert top / deg.sum() > 0.1

    def test_no_self_loops(self):
        g = power_law_graph(100, 1000, seed=2)
        assert (g.src != g.dst).all()

    def test_relations_zipfian(self):
        g = power_law_graph(500, 5000, num_relations=10, seed=3)
        counts = np.bincount(g.rel, minlength=10)
        assert counts[0] > counts[-1]

    def test_citation_graph_structure(self):
        graph, train, valid, test = citation_graph(500, 4000, feat_dim=8,
                                                   num_classes=4,
                                                   train_fraction=0.1, seed=0)
        assert graph.node_features.shape == (500, 8)
        assert graph.node_labels.max() < 4
        assert len(train) == 50
        assert len(np.intersect1d(train, valid)) == 0
        assert len(np.intersect1d(train, test)) == 0

    def test_citation_homophily(self):
        graph, *_ = citation_graph(800, 8000, num_classes=4, homophily=0.8, seed=1)
        labels = graph.node_labels
        same = (labels[graph.src] == labels[graph.dst]).mean()
        assert same > 0.5  # far above the 0.25 chance level

    def test_erdos_renyi(self):
        g = erdos_renyi_graph(50, 200, seed=0)
        assert g.num_edges == 200 and (g.src != g.dst).all()


class TestDatasets:
    def test_paper_stats_registry(self):
        assert paper_stats("papers100m").num_nodes == 111_000_000
        assert paper_stats("FB15K-237").num_relations == 237
        with pytest.raises(KeyError):
            paper_stats("cora")
        assert len(PAPER_DATASETS) == 8

    def test_fb15k237_full_scale(self):
        data = load_fb15k237(scale=1.0, seed=0)
        assert data.graph.num_nodes == 14_541
        assert data.graph.num_edges == 272_115
        assert data.stats.task == "lp"

    def test_fb15k237_scaled(self):
        data = load_fb15k237(scale=0.05, seed=0)
        assert data.graph.num_nodes < 1000

    def test_papers_mini_train_fraction(self):
        data = load_papers100m_mini(num_nodes=5000, num_edges=30000)
        frac = len(data.train_nodes) / data.graph.num_nodes
        assert 0.005 < frac < 0.03  # ~1.1% like the real Papers100M
        assert data.num_classes > 1

    def test_total_gb(self):
        stats = paper_stats("freebase86m")
        assert stats.total_gb == pytest.approx(73.0)
