"""DENSE structure tests: Algorithms 1 and 2, the paper's core data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DenseBatch, DenseSampler, build_dense, compute_next_delta
from repro.graph import AdjacencyIndex, Graph, power_law_graph


class TestBuildDense:
    def test_paper_figure3_example(self, tiny_graph):
        """Two-hop sample for targets {A, B} on the Figure 1 graph."""
        idx = AdjacencyIndex(tiny_graph, directions="in")
        batch = build_dense(np.array([0, 1]), [10, 10], idx,
                            rng=np.random.default_rng(0))
        batch.validate()
        assert batch.num_deltas == 3
        np.testing.assert_array_equal(batch.target_nodes(), [0, 1])
        # Delta 1 holds the new nodes among the targets' one-hop in-neighbors
        # (C, D, E, F in the fixture); targets never reappear in a delta.
        delta1 = set(batch.delta(1).tolist())
        assert delta1.issubset({2, 3, 4, 5})
        assert not delta1 & {0, 1}

    def test_deltas_disjoint_and_unique(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, directions="both")
        batch = build_dense(np.arange(50), [5, 5, 5], idx,
                            rng=np.random.default_rng(0))
        batch.validate()
        seen = set()
        for d in range(batch.num_deltas):
            nodes = set(batch.delta(d).tolist())
            assert not (nodes & seen)
            seen |= nodes
        assert len(seen) == batch.num_nodes

    def test_sample_reuse_no_node_sampled_twice(self, medium_kg):
        """The delta encoding means one-hop sampling runs once per node:
        one_hop_calls equals the nodes with neighbor runs in DENSE."""
        idx = AdjacencyIndex(medium_kg, directions="both")
        batch = build_dense(np.arange(100), [8, 8], idx,
                            rng=np.random.default_rng(1))
        nodes_with_nbrs = batch.num_nodes - len(batch.delta(0))
        assert batch.stats.one_hop_calls == nodes_with_nbrs
        assert len(batch.nbr_offsets) == nodes_with_nbrs

    def test_zero_layers(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(10), [], idx)
        assert batch.num_layers == 0
        assert batch.num_nodes == 10
        assert len(batch.nbrs) == 0

    def test_duplicate_targets_uniqued(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.array([3, 3, 5, 5]), [4], idx)
        np.testing.assert_array_equal(batch.target_nodes(), [3, 5])

    def test_repr_map_points_at_rows(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(30), [6, 6], idx,
                            rng=np.random.default_rng(2))
        batch.compute_repr_map()
        np.testing.assert_array_equal(batch.node_ids[batch.repr_map], batch.nbrs)

    def test_fanout_respected(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(40), [7], idx, rng=np.random.default_rng(3))
        counts = np.diff(np.concatenate([batch.nbr_offsets, [len(batch.nbrs)]]))
        assert counts.max() <= 7

    def test_compute_next_delta(self):
        nbrs = np.array([5, 3, 5, 9, 1])
        node_ids = np.array([1, 2, 3])
        np.testing.assert_array_equal(compute_next_delta(nbrs, node_ids), [5, 9])


class TestAdvance:
    def test_advance_preserves_invariants(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(60), [6, 6, 6], idx,
                            rng=np.random.default_rng(4))
        batch.compute_repr_map()
        batch.validate()
        one = batch.advance()
        one.validate()
        two = one.advance()
        two.validate()
        # Final structure's node set is exactly the original minus Δ0, Δ1.
        removed = set(batch.delta(0).tolist()) | set(batch.delta(1).tolist())
        assert set(two.node_ids.tolist()) == set(batch.node_ids.tolist()) - removed
        np.testing.assert_array_equal(two.target_nodes(), batch.target_nodes())

    def test_advance_single_delta_raises(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(5), [], idx)
        with pytest.raises(ValueError):
            batch.advance()

    def test_advance_drops_consumed_neighbors(self, medium_kg):
        idx = AdjacencyIndex(medium_kg, "both")
        batch = build_dense(np.arange(60), [6, 6], idx,
                            rng=np.random.default_rng(5))
        batch.compute_repr_map()
        after = batch.advance()
        delta1_size = len(batch.delta(1))
        dropped = int(batch.nbr_offsets[delta1_size]) if delta1_size < len(batch.nbr_offsets) else len(batch.nbrs)
        assert len(after.nbrs) == len(batch.nbrs) - dropped


class TestDenseSampler:
    def test_sampler_wraps_build(self, medium_kg):
        sampler = DenseSampler(medium_kg, [5, 5], rng=np.random.default_rng(0))
        batch = sampler.sample(np.arange(20))
        batch.validate()
        assert batch.repr_map is not None

    def test_rejects_non_integer_fanouts(self, medium_kg):
        with pytest.raises(TypeError):
            DenseSampler(medium_kg, [5.5])

    def test_set_graph_rebuilds(self, medium_kg):
        sampler = DenseSampler(medium_kg, [5])
        before = sampler.index_builds
        sampler.set_graph(medium_kg)
        assert sampler.index_builds == before + 1

    def test_dense_samples_fewer_than_layerwise(self, medium_kg):
        """The headline property (Table 6): DENSE materializes fewer nodes and
        edges than per-layer resampling at equal fanouts."""
        from repro.baselines import LayerwiseSampler
        rng = np.random.default_rng(0)
        dense = DenseSampler(medium_kg, [10, 10, 10], rng=rng)
        layer = LayerwiseSampler(medium_kg, [10, 10, 10],
                                 rng=np.random.default_rng(0))
        targets = np.arange(100)
        db = dense.sample(targets)
        lb = layer.sample(targets)
        assert db.stats.num_sampled_edges < lb.stats.num_sampled_edges
        assert db.stats.num_unique_nodes < lb.stats.num_unique_nodes


@settings(max_examples=20, deadline=None)
@given(num_targets=st.integers(1, 40), fanout=st.integers(1, 8),
       layers=st.integers(1, 4), seed=st.integers(0, 30))
def test_property_dense_invariants(num_targets, fanout, layers, seed):
    """Algorithm 1 output always satisfies the DENSE layout invariants and
    neighbor counts never exceed the fanout."""
    g = power_law_graph(150, 1200, seed=seed)
    idx = AdjacencyIndex(g, "both")
    rng = np.random.default_rng(seed)
    targets = rng.choice(150, size=num_targets, replace=False)
    batch = build_dense(targets, [fanout] * layers, idx, rng=rng)
    batch.compute_repr_map()
    batch.validate()
    counts = np.diff(np.concatenate([batch.nbr_offsets, [len(batch.nbrs)]]))
    assert (counts <= fanout).all()
    # Walk Algorithm 2 to the end; every step must stay valid.
    current = batch
    for _ in range(layers - 1):
        current = current.advance()
        current.validate()
    np.testing.assert_array_equal(np.sort(current.target_nodes()), np.sort(targets))
