"""Autograd engine tests: every op checked against numerical gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concat, no_grad
from tests.conftest import numeric_gradient


def check_grad(build_fn, *shapes, seed=0, atol=1e-2, rtol=1e-2):
    """Compare autograd gradient with central differences for each input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(0, 1, size=s).astype(np.float32) for s in shapes]
    for which in range(len(arrays)):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = build_fn(*tensors)
        out.backward()
        analytic = tensors[which].grad

        def scalar_fn(x, _which=which):
            local = [a.copy() for a in arrays]
            local[_which] = x
            with no_grad():
                return float(build_fn(*[Tensor(a) for a in local]).data)

        numeric = numeric_gradient(scalar_fn, arrays[which].copy())
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


class TestElementwise:
    def test_add_grad(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast_grad(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_sub_grad(self):
        check_grad(lambda a, b: (a - b).sum(), (2, 5), (2, 5))

    def test_mul_grad(self):
        check_grad(lambda a, b: (a * b).sum(), (3, 3), (3, 3))

    def test_div_grad(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, (3, 3)).astype(np.float32)
        b = (rng.random((3, 3)) + 1.0).astype(np.float32)
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b, rtol=1e-5)
        np.testing.assert_allclose(tb.grad, -a / b**2, rtol=1e-4)

    def test_neg_pow(self):
        check_grad(lambda a: ((-a) ** 2.0).sum(), (4,))

    def test_scalar_ops(self):
        t = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        out = (2.0 * t + 1.0 - 0.5).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_rsub_rdiv(self):
        t = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (1.0 - t).backward()
        np.testing.assert_allclose(t.grad, [-1.0])
        t2 = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (4.0 / t2).backward()
        np.testing.assert_allclose(t2.grad, [-1.0])


class TestMatmulAndShape:
    def test_matmul_grad(self):
        check_grad(lambda a, b: a.matmul(b).sum(), (3, 4), (4, 2))

    def test_matmul_transpose(self):
        check_grad(lambda a, b: a.matmul(b.T).sum(), (3, 4), (2, 4))

    def test_reshape_grad(self):
        check_grad(lambda a: a.reshape(6).sum(), (2, 3))

    def test_transpose_data(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.T.shape == (3, 2)


class TestReductions:
    def test_sum_axis_grad(self):
        check_grad(lambda a: (a.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_mean_grad(self):
        check_grad(lambda a: a.mean(), (5, 2))

    def test_max_grad_distributes_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestIndexing:
    def test_index_select_scatter_add(self):
        t = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        idx = np.array([0, 1, 1, 2, 2, 2])
        t.index_select(idx).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=1), [3.0, 6.0, 9.0])

    def test_narrow_grad(self):
        check_grad(lambda a: (a.narrow(1, 2) ** 2.0).sum(), (4, 3))

    def test_getitem_slice(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        t[1:3].sum().backward()
        assert t.grad[0].sum() == 0 and t.grad[1].sum() == 3

    def test_getitem_array(self):
        t = Tensor(np.arange(4, dtype=np.float32).reshape(4, 1), requires_grad=True)
        out = t[np.array([3, 0])]
        np.testing.assert_allclose(out.data.ravel(), [3.0, 0.0])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "sigmoid", "tanh", "exp"])
    def test_pointwise_grads(self, op):
        check_grad(lambda a: getattr(a, op)().sum(), (3, 4), seed=2)

    def test_log_grad(self):
        t = Tensor(np.array([1.0, 2.0, 4.0], dtype=np.float32), requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.5, 0.25])

    def test_leaky_relu(self):
        t = Tensor(np.array([-2.0, 3.0], dtype=np.float32), requires_grad=True)
        t.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(t.grad, [0.1, 1.0])

    def test_clamp_min(self):
        t = Tensor(np.array([-1.0, 2.0], dtype=np.float32), requires_grad=True)
        t.clamp_min(0.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])


class TestGraphMechanics:
    def test_concat_routes_gradients(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = concat([a, b], axis=0)
        (out * Tensor(np.arange(10, dtype=np.float32).reshape(5, 2))).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (3, 2)
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])

    def test_reused_tensor_accumulates(self):
        t = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (t * t).backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = t * 2.0
        b = t + 1.0
        (a * b).backward()  # d/dt (2t * (t+1)) = 4t + 2
        np.testing.assert_allclose(t.grad, [14.0])

    def test_no_grad_context(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach_breaks_tape(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        out = (t.detach() * 3.0).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(1, 6), cols=st.integers(1, 5), seed=st.integers(0, 100))
def test_property_matmul_chain_gradcheck(rows, cols, seed):
    """Random matmul+relu chains have correct gradients (property-based)."""
    from hypothesis import assume
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (rows, cols)).astype(np.float32)
    w = rng.normal(0, 1, (cols, 3)).astype(np.float32)
    # Central differences are invalid across the ReLU kink; skip draws whose
    # pre-activations sit within the finite-difference step of zero.
    assume(np.abs(a @ w).min() > 5e-3)
    ta = Tensor(a.copy(), requires_grad=True)
    tw = Tensor(w.copy(), requires_grad=True)
    out = ta.matmul(tw).relu().sum()
    out.backward()

    def f(x):
        with no_grad():
            return float(Tensor(x).matmul(Tensor(w)).relu().sum().data)

    numeric = numeric_gradient(f, a.copy())
    np.testing.assert_allclose(ta.grad, numeric, atol=2e-2, rtol=2e-2)
