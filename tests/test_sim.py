"""Performance-model tests: profiles, analytic workloads, table shapes."""

import numpy as np
import pytest

from repro.graph import paper_stats, power_law_graph
from repro.sim import (DGL, MARIUSGNN, P3_2XLARGE, P3_8XLARGE, PYG,
                       estimate_epoch, gnn_flops, link_prediction_disk_io,
                       mariusgnn_gpu_sampling_seconds, measure_dense_workload,
                       measure_layerwise_workload,
                       nextdoor_gpu_sampling_seconds,
                       node_classification_disk_io, smallest_instance_fitting,
                       table3_rows, table4_rows, table5_rows)
from repro.sim.workload import (analytic_dense_workload,
                                analytic_layerwise_workload, gat_flops,
                                measure_effective_fanout)


class TestProfiles:
    def test_instance_fit_rule(self):
        assert smallest_instance_fitting(50).name == "p3.2xlarge"
        assert smallest_instance_fitting(80).name == "p3.8xlarge"
        assert smallest_instance_fitting(400).name == "p3.16xlarge"
        with pytest.raises(ValueError):
            smallest_instance_fitting(1000)

    def test_speedup_interpolation(self):
        assert DGL.speedup(4) == 1.4
        assert DGL.speedup(8) == 2.2
        assert DGL.speedup(6) == 1.4  # floor to largest known <= n
        assert MARIUSGNN.speedup(1) == 1.0

    def test_mariusgnn_samples_faster(self):
        """Calibration sanity: per-edge sampling throughput ordering."""
        s_m = MARIUSGNN.sampling_seconds(1e6, 1e5, cores=32)
        s_d = DGL.sampling_seconds(1e6, 1e5, cores=32)
        s_p = PYG.sampling_seconds(1e6, 1e5, cores=32)
        assert s_m < s_d < s_p

    def test_fewer_cores_slower(self):
        fast = MARIUSGNN.sampling_seconds(1e6, 0, cores=32)
        slow = MARIUSGNN.sampling_seconds(1e6, 0, cores=8)
        assert 1.5 < slow / fast < 3.0  # sqrt scaling => 2x


class TestWorkloads:
    def test_effective_fanout_bounded(self):
        g = power_law_graph(2000, 20000, seed=0)
        eff = measure_effective_fanout(g, 10, "both")
        assert 0 < eff <= 10

    def test_analytic_dense_saturates(self):
        """Unique nodes never exceed the graph; growth slows with depth."""
        wl = analytic_dense_workload(10_000, [10] * 6, [9.0] * 6, 1000)
        assert wl.nodes_per_batch <= 10_000

    def test_analytic_layerwise_exceeds_dense(self):
        n = 111_000_000
        dense = analytic_dense_workload(n, [10] * 3, [9.0] * 3, 1000)
        layer = analytic_layerwise_workload(n, [10] * 3, [12.0] * 3, 1000)
        assert layer.edges_per_batch > dense.edges_per_batch
        assert layer.nodes_per_batch > dense.nodes_per_batch

    def test_analytic_matches_paper_table6_within_3x(self):
        """Validation anchor: paper Table 6 counts for Papers100M."""
        g = power_law_graph(12000, 120000, exponent=2.2, seed=0)
        eff = measure_effective_fanout(g, 10, "both")
        paper_nodes = {1: 12e3, 2: 136e3, 3: 1e6, 4: 6e6}
        for k, expected in paper_nodes.items():
            wl = analytic_dense_workload(111_000_000, [10] * k, [eff] * k, 1000)
            assert expected / 3 < wl.nodes_per_batch < expected * 3, k

    def test_measured_workloads_run(self):
        g = power_law_graph(1000, 8000, seed=0)
        d = measure_dense_workload(g, [5, 5], 100, num_batches=2)
        l = measure_layerwise_workload(g, [5, 5], 100, num_batches=2)
        assert d.edges_per_batch > 0 and l.edges_per_batch >= d.edges_per_batch

    def test_flops_per_layer_less_than_naive(self):
        wl = analytic_dense_workload(1_000_000, [10, 10, 10], [9.0] * 3, 1000)
        refined = gnn_flops(wl, 128, 128, 3)
        naive = gnn_flops(
            type(wl)(wl.nodes_per_batch, wl.edges_per_batch,
                     wl.dedup_nodes_per_batch, wl.batch_size), 128, 128, 3)
        assert refined < naive

    def test_gat_flops_exceed_gs(self):
        wl = analytic_dense_workload(1_000_000, [10], [9.0], 1000)
        assert gat_flops(wl, 100, 100, 1) > gnn_flops(wl, 100, 100, 1)


class TestEstimates:
    def test_disk_io_models_positive(self):
        stats = paper_stats("freebase86m")
        lp = link_prediction_disk_io(stats, 100, partition_loads=300,
                                     num_partitions=200)
        nc = node_classification_disk_io(paper_stats("papers100m"), 128, 8, 64)
        assert lp > 0 and nc > 0

    def test_epoch_estimate_fields(self):
        stats = paper_stats("freebase86m")
        wl = analytic_dense_workload(stats.num_nodes, [20], [13.0], 1000)
        est = estimate_epoch(MARIUSGNN, stats, wl, 1e9, P3_8XLARGE,
                             num_examples=stats.num_edges, embedding_dim=100)
        assert est.epoch_seconds > 0 and est.cost_per_epoch > 0
        assert est.num_batches == int(np.ceil(stats.num_edges / 1000))
        assert "epoch" in est.row()

    def test_io_balanced_beats_frontloaded(self):
        stats = paper_stats("freebase86m")
        wl = analytic_dense_workload(stats.num_nodes, [20], [13.0], 1000)
        common = dict(num_examples=stats.num_edges, embedding_dim=100,
                      io_read_bytes=5e11)
        balanced = estimate_epoch(MARIUSGNN, stats, wl, 1e9, P3_2XLARGE,
                                  io_balanced=True, **common)
        exposed = estimate_epoch(MARIUSGNN, stats, wl, 1e9, P3_2XLARGE,
                                 io_balanced=False, **common)
        assert balanced.epoch_seconds < exposed.epoch_seconds


class TestTableShapes:
    """The paper's qualitative claims, asserted on the model's output."""

    @pytest.fixture(scope="class")
    def t3(self):
        return {(r.system, r.dataset): r for r in table3_rows()}

    @pytest.fixture(scope="class")
    def t4(self):
        return {(r.system, r.dataset): r for r in table4_rows()}

    def test_c1_node_classification_cheaper(self, t3):
        """Claim C1: M-GNN trains NC faster and much cheaper than baselines."""
        for ds in ("papers100m", "mag240m-cites"):
            mem = t3[("M-GNN_Mem", ds)]
            disk = t3[("M-GNN_Disk", ds)]
            dgl = t3[("DGL", ds)]
            pyg = t3[("PyG", ds)]
            assert disk.cost_per_epoch < dgl.cost_per_epoch / 4
            assert disk.cost_per_epoch < pyg.cost_per_epoch / 4
            assert mem.epoch_minutes < pyg.epoch_minutes

    def test_c2_link_prediction_faster_and_cheaper(self, t4):
        """Claim C2: 6x faster, 13-18x cheaper for LP."""
        for ds in ("freebase86m", "wikikg90mv2"):
            mem = t4[("M-GNN_Mem", ds)]
            disk = t4[("M-GNN_Disk", ds)]
            dgl = t4[("DGL", ds)]
            assert dgl.epoch_minutes / mem.epoch_minutes > 4
            assert dgl.cost_per_epoch / disk.cost_per_epoch > 8

    def test_disk_lp_slower_than_memory(self, t4):
        """Paper: disk LP pays IO + smaller CPU (1-2x slower than memory)."""
        assert (t4[("M-GNN_Disk", "freebase86m")].epoch_minutes
                >= t4[("M-GNN_Mem", "freebase86m")].epoch_minutes * 0.9)

    def test_table5_baselines_model_insensitive(self):
        """Table 5: DGL/PyG times barely change GS -> GAT (sampler-bound)."""
        rows = {r.system: r for r in table5_rows()}
        for sysname in ("DGL", "PyG"):
            gs = rows[f"{sysname}/GS"].epoch_minutes
            gat = rows[f"{sysname}/GAT"].epoch_minutes
            assert abs(gs - gat) / gs < 0.15
        # M-GNN GAT is meaningfully slower than its GS (compute-bound).
        assert rows["M-GNN_Mem/GAT"].epoch_minutes > rows["M-GNN_Mem/GS"].epoch_minutes


class TestGpuSamplingModels:
    def test_nextdoor_wins_shallow_dense_wins_deep(self):
        """Table 7's crossover on LiveJournal (4.8M nodes, fanout 20 out):
        NextDoor's fused kernels win at 1-2 layers; DENSE's sample reuse wins
        by 4-5 layers as layerwise edge counts compound."""
        from repro.sim.workload import analytic_hop_draws
        n = 4_800_000
        eff = 8.0  # E[min(out-degree, 20)] for LiveJournal's degree skew

        nd1 = nextdoor_gpu_sampling_seconds(analytic_hop_draws(n, 1, eff, 1000, dense=False))
        mg1 = mariusgnn_gpu_sampling_seconds(analytic_hop_draws(n, 1, eff, 1000, dense=True))
        assert nd1 < mg1
        nd5 = nextdoor_gpu_sampling_seconds(analytic_hop_draws(n, 5, eff, 1000, dense=False))
        mg5 = mariusgnn_gpu_sampling_seconds(analytic_hop_draws(n, 5, eff, 1000, dense=True))
        assert mg5 < nd5
