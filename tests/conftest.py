"""Shared fixtures: small deterministic graphs and datasets for fast tests."""

import numpy as np
import pytest

from repro.graph import (Graph, PartitionScheme, chain_graph, citation_graph,
                         power_law_graph, star_graph)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_graph():
    """The paper's Figure 1/3 example graph: A..F with the edges shown."""
    # A=0 B=1 C=2 D=3 E=4 F=5; incoming-edge aggregation.
    src = np.array([2, 3, 2, 4, 3, 2, 4, 0, 1, 5])
    dst = np.array([0, 0, 1, 1, 1, 3, 2, 2, 0, 1])
    return Graph(num_nodes=6, src=src, dst=dst)


@pytest.fixture
def small_kg():
    """Small power-law knowledge graph for sampler/trainer tests."""
    return power_law_graph(300, 3000, num_relations=7, seed=3)


@pytest.fixture
def medium_kg():
    return power_law_graph(2000, 24000, num_relations=11, seed=5)


@pytest.fixture
def nc_dataset():
    graph, train, valid, test = citation_graph(
        1500, 12000, feat_dim=16, num_classes=5, train_fraction=0.1, seed=7)
    return graph, train, valid, test


@pytest.fixture
def scheme8(medium_kg):
    return PartitionScheme.uniform(medium_kg.num_nodes, 8)


def numeric_gradient(fn, x, eps=1e-3):
    """Central-difference gradient of scalar fn at array x (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn(x.astype(np.float32))
        x[idx] = orig - eps
        f_minus = fn(x.astype(np.float32))
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad
